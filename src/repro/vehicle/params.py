"""ACC controller and plant parameters (paper §6.1).

Paper values: headway time ``τ_h = 3 s``, minimum stopping distance
``d_0 = 5 m``, system gain ``K_L = 1.0``, lower-loop time constant
``T_L = 1.008 s`` (Li et al. [6]), set speed 67 mph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError
from repro.units import mph_to_mps

__all__ = ["ACCParameters"]


@dataclass(frozen=True)
class ACCParameters:
    """Parameters of the hierarchical ACC controller and its plant.

    Attributes
    ----------
    headway_time:
        CTH headway time ``τ_h``, seconds.
    standstill_distance:
        Minimum stopping distance ``d_0``, meters (Eqn 12 offset).
    system_gain:
        Lower-loop DC gain ``K_L`` (Eqn 14).
    time_constant:
        Lower-loop time constant ``T_L``, seconds (Eqn 14).
    set_speed:
        Driver-selected cruise speed ``v_set``, m/s.
    sample_period:
        Discrete controller period ``T``, seconds (paper: 1 s steps).
    speed_gain:
        Proportional gain of the speed-control mode, 1/s.
    relative_velocity_weight:
        Weight ``λ_v`` of the relative-speed error in the CTH law
        (Eqn 13 reconstruction; see DESIGN.md §2).
    spacing_activation_margin:
        The controller enters spacing mode when the measured gap falls
        below ``d_des * (1 + margin)``; hysteresis against mode chatter.
    max_acceleration, min_acceleration:
        Actuation limits on the desired acceleration, m/s².
    brake_gain:
        Maps deceleration demand to brake pressure (bar per m/s²) in the
        lower-level actuator split.
    coast_deceleration:
        Deceleration obtained with neither pedal nor brake (rolling and
        aero drag), m/s²; negative number.
    """

    headway_time: float = 3.0
    standstill_distance: float = 5.0
    system_gain: float = 1.0
    time_constant: float = 1.008
    set_speed: float = mph_to_mps(67.0)
    sample_period: float = 1.0
    speed_gain: float = 0.30
    relative_velocity_weight: float = 2.0
    spacing_activation_margin: float = 0.10
    max_acceleration: float = 2.5
    min_acceleration: float = -5.0
    brake_gain: float = 25.0
    coast_deceleration: float = -0.3

    def __post_init__(self) -> None:
        if self.headway_time <= 0.0:
            raise ConfigurationError(f"headway_time must be positive, got {self.headway_time}")
        if self.standstill_distance < 0.0:
            raise ConfigurationError(
                f"standstill_distance must be >= 0, got {self.standstill_distance}"
            )
        if self.system_gain <= 0.0:
            raise ConfigurationError(f"system_gain must be positive, got {self.system_gain}")
        if self.time_constant <= 0.0:
            raise ConfigurationError(f"time_constant must be positive, got {self.time_constant}")
        if self.set_speed < 0.0:
            raise ConfigurationError(f"set_speed must be >= 0, got {self.set_speed}")
        if self.sample_period <= 0.0:
            raise ConfigurationError(f"sample_period must be positive, got {self.sample_period}")
        if self.max_acceleration <= 0.0 or self.min_acceleration >= 0.0:
            raise ConfigurationError(
                "acceleration limits must bracket zero: "
                f"[{self.min_acceleration}, {self.max_acceleration}]"
            )
        if self.coast_deceleration > 0.0:
            raise ConfigurationError(
                f"coast_deceleration must be <= 0, got {self.coast_deceleration}"
            )
        if self.speed_gain <= 0.0 or self.relative_velocity_weight < 0.0:
            raise ConfigurationError("controller gains must be positive")

    def desired_distance(self, follower_speed: float) -> float:
        """Eqn 12: ``d_des = d_0 + τ_h · v_F``."""
        return self.standstill_distance + self.headway_time * max(0.0, follower_speed)

    def with_overrides(self, **kwargs) -> "ACCParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
