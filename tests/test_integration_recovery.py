"""End-to-end recovery behaviour: attacks that end mid-run.

Algorithm 2 lines 13-15: a clean challenge response after the attack
stops clears the alarm and hands control back to the live sensor.
These tests run finite attack windows through the full closed loop.
"""

import numpy as np
import pytest

from repro import (
    AttackWindow,
    DelayInjectionAttack,
    DoSJammingAttack,
    fig2_scenario,
    run,
)


def finite_attack_scenario(kind="dos", start=112.0, end=150.0):
    base = fig2_scenario(kind)
    if kind == "dos":
        attack = DoSJammingAttack(AttackWindow(start, end))
    else:
        attack = DelayInjectionAttack(AttackWindow(start, end), distance_offset=6.0)
    return base.with_overrides(name=f"finite-{kind}", attack=attack)


class TestFiniteAttackRecovery:
    @pytest.mark.parametrize("kind", ["dos", "delay"])
    def test_alarm_raised_then_cleared(self, kind):
        scenario = finite_attack_scenario(kind)
        result = run(scenario, defended=True)
        events = result.detection_events
        raised = [e.time for e in events if e.attack_detected]
        # Attack [112, 150]: challenges at 112 and 137 fire; the next
        # challenge after 150 (159) is clean and clears the alarm.
        assert raised
        assert min(raised) == 112.0
        assert max(raised) <= 150.0
        cleared = [e.time for e in events if not e.attack_detected and e.time > 150.0]
        assert cleared
        assert min(cleared) == 159.0

    @pytest.mark.parametrize("kind", ["dos", "delay"])
    def test_sensor_retrusted_after_recovery(self, kind):
        scenario = finite_attack_scenario(kind)
        result = run(scenario, defended=True)
        estimated = result.array("estimated_flag")
        times = result.times
        # During the attack everything is estimated...
        during = estimated[(times >= 113.0) & (times <= 150.0)]
        assert np.all(during == 1.0)
        # ...after the clearing challenge, non-challenge samples pass
        # through again.
        schedule = scenario.schedule()
        after = [
            estimated[int(t)]
            for t in range(165, 300)
            if not schedule.is_challenge(float(t))
        ]
        assert not any(after)

    @pytest.mark.parametrize("kind", ["dos", "delay"])
    def test_finite_attack_defended_run_is_safe(self, kind):
        result = run(finite_attack_scenario(kind), defended=True)
        assert not result.collided
        assert result.min_gap() > 0.0

    def test_defended_tracks_baseline_after_recovery(self):
        scenario = finite_attack_scenario("dos")
        defended = run(scenario, defended=True)
        baseline = run(scenario, attack_enabled=False, defended=False)
        gap_defended = defended.array("true_distance")
        gap_baseline = baseline.array("true_distance")
        times = defended.times
        # Well after recovery the closed loop reconverges to the
        # baseline trajectory.
        late = (times >= 250.0) & (times <= 300.0)
        assert np.max(np.abs(gap_defended[late] - gap_baseline[late])) < 10.0

    def test_two_attacks_in_one_run(self):
        """A second attack after recovery is detected again."""
        from repro.attacks.scheduler import AttackSchedule

        class Composite:
            def __init__(self, schedule, label_attack):
                self._schedule = schedule
                self.window = AttackWindow(
                    start=schedule.earliest_onset(),
                    end=max(a.window.end for a in schedule.attacks),
                )
                self.label = label_attack.label

            def effect_at(self, time, true_distance, true_relative_velocity=0.0):
                return self._schedule.effect_at(
                    time, true_distance, true_relative_velocity
                )

            def is_active(self, time):
                return self._schedule.is_active(time)

        first = DoSJammingAttack(AttackWindow(112.0, 130.0))
        second = DoSJammingAttack(AttackWindow(220.0, 260.0))
        schedule = AttackSchedule([first, second])
        scenario = fig2_scenario("dos").with_overrides(
            name="double-attack", attack=Composite(schedule, first)
        )
        result = run(scenario, defended=True)
        assert result.detection_times == [112.0, 222.0]
        assert not result.collided
