"""Baseline estimators and detectors (repro.core.baselines)."""

import numpy as np
import pytest

from repro.core import (
    ChiSquareDetector,
    HoldLastValuePredictor,
    KalmanChannelPredictor,
    LMSPredictor,
)
from repro.core.regressors import ARBasis
from repro.exceptions import EstimatorNotTrainedError


class TestHoldLastValue:
    def test_untrained_raises(self):
        with pytest.raises(EstimatorNotTrainedError):
            HoldLastValuePredictor().forecast(0.0)

    def test_holds(self):
        p = HoldLastValuePredictor()
        p.observe(0.0, 5.0)
        p.observe(1.0, 7.0)
        assert p.forecast(100.0) == 7.0
        assert p.trained


class TestLMSPredictor:
    def test_learns_linear_trend(self):
        p = LMSPredictor(step_size=0.5)
        for k in range(300):
            p.observe(float(k), 10.0 + 0.05 * k)
        assert p.forecast(320.0) == pytest.approx(10.0 + 0.05 * 320.0, abs=1.0)

    def test_slower_than_rls(self):
        # After few samples LMS lags a steep trend; this is the
        # convergence contrast the ablation bench shows.
        from repro.core import ChannelPredictor

        lms = LMSPredictor(step_size=0.5)
        rls = ChannelPredictor(forgetting=1.0, delta=1e6)
        for k in range(15):
            value = 100.0 - 2.0 * k
            lms.observe(float(k), value)
            rls.observe(float(k), value)
        truth = 100.0 - 2.0 * 20.0
        assert abs(rls.forecast(20.0) - truth) < abs(lms.forecast(20.0) - truth)

    def test_untrained_raises(self):
        p = LMSPredictor(min_training_samples=5)
        p.observe(0.0, 1.0)
        with pytest.raises(EstimatorNotTrainedError):
            p.forecast(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LMSPredictor(step_size=0.0)
        with pytest.raises(ValueError):
            LMSPredictor(basis=ARBasis(order=2))


class TestKalmanChannelPredictor:
    def test_tracks_constant_value(self):
        kf = KalmanChannelPredictor()
        for k in range(30):
            kf.observe(float(k), 42.0)
        assert kf.forecast(35.0) == pytest.approx(42.0, abs=0.5)

    def test_tracks_ramp_and_extrapolates(self):
        kf = KalmanChannelPredictor(process_noise=0.01, measurement_noise=0.01)
        for k in range(60):
            kf.observe(float(k), 100.0 - 0.5 * k)
        assert kf.forecast(80.0) == pytest.approx(100.0 - 0.5 * 80.0, abs=1.0)

    def test_untrained_raises(self):
        kf = KalmanChannelPredictor()
        with pytest.raises(EstimatorNotTrainedError):
            kf.forecast(0.0)

    def test_innovation_statistic_small_on_clean_data(self):
        rng = np.random.default_rng(0)
        kf = KalmanChannelPredictor(measurement_noise=0.25)
        for k in range(50):
            kf.observe(float(k), 10.0 + rng.normal(0, 0.5))
        stat = kf.innovation_statistic(50.0, 10.0)
        assert stat < 6.63

    def test_innovation_statistic_large_on_jump(self):
        kf = KalmanChannelPredictor(measurement_noise=0.25)
        for k in range(50):
            kf.observe(float(k), 10.0)
        assert kf.innovation_statistic(50.0, 200.0) > 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            KalmanChannelPredictor(process_noise=0.0)


class TestChiSquareDetector:
    def run_stream(self, detector, attack_start=None, offset=50.0, n=120, noise=0.3, seed=0):
        rng = np.random.default_rng(seed)
        alarms = []
        for k in range(n):
            value = 100.0 - 0.2 * k + rng.normal(0, noise)
            if attack_start is not None and k >= attack_start:
                value += offset
            if detector.process(float(k), value):
                alarms.append(k)
        return alarms

    def test_detects_large_jump(self):
        detector = ChiSquareDetector()
        alarms = self.run_stream(detector, attack_start=60)
        assert alarms
        assert alarms[0] >= 60
        assert alarms[0] <= 65

    def test_clean_stream_mostly_silent(self):
        detector = ChiSquareDetector(threshold=6.63, persistence=2)
        alarms = self.run_stream(detector, attack_start=None)
        assert len(alarms) <= 1  # residual detectors have a noise floor

    def test_misses_stealthy_offset(self):
        # A spoof comparable to the noise floor slips through — the
        # contrast with CRA's zero-FN guarantee.
        detector = ChiSquareDetector(threshold=6.63, persistence=2)
        alarms = self.run_stream(detector, attack_start=60, offset=0.2, noise=0.3)
        assert alarms == [] or alarms[0] > 70

    def test_statistics_recorded(self):
        detector = ChiSquareDetector()
        self.run_stream(detector, n=30)
        assert len(detector.statistics) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChiSquareDetector(threshold=0.0)
        with pytest.raises(ValueError):
            ChiSquareDetector(persistence=0)
