"""Incremental secure-reconstruction solver (repro.defense.reconstruction).

PR 10's contract: the batched subset kernels and the geometry-caching
:class:`IncrementalWindowSolver` are **bit-identical** to a from-scratch
:class:`SecureStateReconstruct` on every window — same candidates, same
arrays, ``==`` not ``allclose`` — across uniform windows, the
non-uniform windows challenge-instant holes leave, sensor counts
2/4/6, cache-eviction boundaries and the append/extend path.  Plus the
bounded caches themselves (:class:`TransitionCache` quantization/LRU,
geometry LRU) and the estimator-level ``solver_mode`` equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.defense import (
    SecureReconstructionEstimator,
    SecureStateReconstruct,
    SSProblem,
)
from repro.defense.reconstruction import (
    IncrementalWindowSolver,
    TransitionCache,
)
from repro.exceptions import ConfigurationError
from repro.types import RadarMeasurement


def continuous_double_integrator(dt):
    """Exact discretization of the 1-D double integrator over ``dt``."""
    A = np.array([[1.0, dt], [0.0, 1.0]])
    B = np.array([[0.5 * dt * dt], [dt]])
    return A, B


def sensor_matrix(p):
    """``p`` redundant sensors over the 2-state double integrator."""
    rng = np.random.default_rng(900 + p)
    C = rng.standard_normal((p, 2))
    C[:, 0] += 1.0  # every sensor sees position: all subsets observable
    return C


def measurement_stream(p, steps, seed=7):
    """A noisy trajectory sampled by ``p`` sensors, with inputs."""
    rng = np.random.default_rng(seed)
    C = sensor_matrix(p)
    A, B = continuous_double_integrator(1.0)
    x = np.array([30.0, -1.5])
    us = 0.2 * rng.standard_normal((steps - 1, 1))
    ys = [C @ x + 0.01 * rng.standard_normal(p)]
    for k in range(steps - 1):
        x = A @ x + B @ us[k]
        ys.append(C @ x + 0.01 * rng.standard_normal(p))
    return np.array(ys), us, C, A, B


def results_equal(a, b):
    """Bitwise equality of two ReconstructionResults — no tolerance."""
    if a is None or b is None:
        return a is b
    if (
        a.guaranteed != b.guaranteed
        or a.subsets_searched != b.subsets_searched
        or a.subsets_pruned != b.subsets_pruned
        or a.unobservable_subsets != b.unobservable_subsets
        or len(a.candidates) != len(b.candidates)
    ):
        return False
    for ca, cb in zip(a.candidates, b.candidates):
        if (
            ca.sensors != cb.sensors
            or ca.attacked != cb.attacked
            or ca.residual != cb.residual
            or ca.observable != cb.observable
            or not np.array_equal(ca.x0, cb.x0)
            or not np.array_equal(ca.x_end, cb.x_end)
        ):
            return False
        if (ca.x_end_covariance is None) != (cb.x_end_covariance is None):
            return False
        if ca.x_end_covariance is not None and not np.array_equal(
            ca.x_end_covariance, cb.x_end_covariance
        ):
            return False
    return True


class TestBatchedMatchesNaive:
    """The batched kernel agrees with the historical per-subset loop."""

    @pytest.mark.parametrize("p,s", [(2, 1), (4, 1), (4, 2), (6, 2)])
    def test_same_classification_and_states(self, p, s):
        ys, us, C, A, B = measurement_stream(p, 8)
        solver = SecureStateReconstruct(
            SSProblem(A, B, C, ys, us=us, s=s), residual_threshold=0.5
        )
        batched, naive = solver.solve(), solver.solve_naive()
        assert batched.subsets_searched == naive.subsets_searched
        assert batched.subsets_pruned == naive.subsets_pruned
        for cb, cn in zip(batched.candidates, naive.candidates):
            assert cb.sensors == cn.sensors
            assert cb.observable == cn.observable
            assert cb.residual == pytest.approx(cn.residual, abs=1e-9)
            np.testing.assert_allclose(cb.x0, cn.x0, atol=1e-8)
            np.testing.assert_allclose(cb.x_end, cn.x_end, atol=1e-8)

    def test_search_accounting_fields(self):
        # subsets_searched counts every C(p, p-s) hypothesis; pruned is
        # the complement of the consistent set.
        ys, us, C, A, B = measurement_stream(4, 8)
        ys[:, 2] += 30.0  # one attacked sensor
        result = SecureStateReconstruct(
            SSProblem(A, B, C, ys, us=us, s=1), residual_threshold=0.5
        ).solve()
        assert result.subsets_searched == 4
        assert (
            result.subsets_searched - result.subsets_pruned
            == len(result.consistent)
        )
        assert result.subsets_pruned >= 1  # the poisoned subsets fail


class TestIncrementalBitIdentity:
    """Incremental solve == from-scratch solve, bit for bit."""

    @pytest.mark.parametrize("p", [2, 4, 6])
    @pytest.mark.parametrize("uniform", [True, False], ids=["uniform", "holes"])
    def test_sliding_stream_matches_from_scratch(self, p, uniform):
        T = 6
        steps = 14
        ys, us, C, A, B = measurement_stream(p, steps + T)
        s = 1 if p < 6 else 2
        # Challenge-instant holes: a long interval moves through the
        # window, so consecutive dt-tuples differ (cache misses).
        base = np.ones(steps + T - 1)
        if not uniform:
            base[::5] = 2.0
        solver = IncrementalWindowSolver(
            A,
            B,
            C,
            residual_threshold=0.5,
            transition=continuous_double_integrator,
        )
        for k in range(steps):
            dts = None if uniform else base[k : k + T - 1]
            incremental = solver.solve(
                ys[k : k + T], us[k : k + T - 1], dts, s
            )
            scratch = SecureStateReconstruct(
                SSProblem(A, B, C, ys[k : k + T], us=us[k : k + T - 1], s=s, dts=dts),
                residual_threshold=0.5,
                transition=continuous_double_integrator,
            ).solve()
            assert results_equal(incremental, scratch), (p, uniform, k)
        if uniform:
            assert solver.geometry_hits == steps - 1

    def test_growing_window_uses_extension_path(self):
        # Appending one sample to a cached geometry extends it instead
        # of rebuilding — and stays bit-identical to a fresh build.
        ys, us, C, A, B = measurement_stream(3, 10)
        solver = IncrementalWindowSolver(A, B, C, residual_threshold=0.5)
        for T in range(2, 10):
            grown = solver.solve(ys[:T], us[: T - 1], None, 1)
            scratch = SecureStateReconstruct(
                SSProblem(A, B, C, ys[:T], us=us[: T - 1], s=1),
                residual_threshold=0.5,
            ).solve()
            assert results_equal(grown, scratch), T
        assert solver.geometry_extensions == 7  # every T after the first
        assert solver.geometry_misses == 1

    def test_eviction_boundary_stays_correct(self):
        # A solver whose geometry LRU holds a single entry thrashes on
        # alternating dt-tuples; results must not change.
        ys, us, C, A, B = measurement_stream(2, 20)
        tight = IncrementalWindowSolver(
            A,
            B,
            C,
            residual_threshold=0.5,
            transition=continuous_double_integrator,
            max_geometries=1,
        )
        roomy = IncrementalWindowSolver(
            A,
            B,
            C,
            residual_threshold=0.5,
            transition=continuous_double_integrator,
        )
        dts_a = np.ones(5)
        dts_b = np.array([1.0, 2.0, 1.0, 1.0, 1.0])
        for k, dts in zip(range(8), [dts_a, dts_b] * 4):
            a = tight.solve(ys[k : k + 6], us[k : k + 5], dts, 1)
            b = roomy.solve(ys[k : k + 6], us[k : k + 5], dts, 1)
            assert results_equal(a, b), k
        assert tight.cached_geometries == 1
        assert tight.geometry_hits == 0  # every step evicted the other key
        assert roomy.geometry_hits == 6

    def test_validation(self):
        ys, us, C, A, B = measurement_stream(2, 6)
        with pytest.raises(ConfigurationError, match="max_geometries"):
            IncrementalWindowSolver(A, B, C, max_geometries=0)
        with pytest.raises(ConfigurationError, match="residual_threshold"):
            IncrementalWindowSolver(A, B, C, residual_threshold=0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        p=st.integers(2, 4),
        repeats=st.integers(1, 3),
    )
    def test_property_cache_hits_never_change_results(self, seed, p, repeats):
        # Solving the same window again (a guaranteed geometry-cache
        # hit) returns bitwise the same result as the first, cold solve.
        ys, us, C, A, B = measurement_stream(p, 8, seed=seed)
        solver = IncrementalWindowSolver(A, B, C, residual_threshold=0.5)
        cold = solver.solve(ys, us, None, 1)
        misses = solver.geometry_misses
        for _ in range(repeats):
            warm = solver.solve(ys, us, None, 1)
            assert results_equal(cold, warm)
        assert solver.geometry_misses == misses  # all hits
        assert solver.geometry_hits >= repeats


class TestTransitionCache:
    @staticmethod
    def _builder_calls():
        calls = []

        def builder(dt):
            calls.append(dt)
            return continuous_double_integrator(dt)

        return calls, builder

    def test_quantized_keys_absorb_float_jitter(self):
        calls, builder = self._builder_calls()
        cache = TransitionCache(builder, maxsize=4)
        a = cache(1.0)
        b = cache(1.0 + 2e-10)  # below the 1e-9 quantization step
        assert b is a
        assert (cache.hits, cache.misses, len(cache)) == (1, 1, 1)
        # The builder saw the quantized value, so equal keys always map
        # to identical matrices.
        assert calls == [1.0]

    def test_lru_bound_and_eviction_counter(self):
        _calls, builder = self._builder_calls()
        cache = TransitionCache(builder, maxsize=3)
        for dt in (1.0, 2.0, 3.0, 4.0):
            cache(dt)
        assert len(cache) == 3
        assert cache.evictions == 1
        cache(1.0)  # evicted: rebuilt, evicting the next-oldest (2.0)
        assert cache.misses == 5
        cache(3.0)  # still resident
        assert cache.hits == 1

    def test_recency_refresh_on_hit(self):
        _calls, builder = self._builder_calls()
        cache = TransitionCache(builder, maxsize=2)
        cache(1.0)
        cache(2.0)
        cache(1.0)  # refresh 1.0's recency
        cache(3.0)  # evicts 2.0, not 1.0
        assert cache.misses == 3
        cache(1.0)
        assert cache.hits == 2

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ConfigurationError, match="maxsize"):
            TransitionCache(continuous_double_integrator, maxsize=0)


class TestEstimatorSolverModes:
    """solver_mode='incremental' and 'from_scratch' are interchangeable."""

    @staticmethod
    def _feed(estimator, steps, hole_every=None):
        v_f = 20.0
        k = 0
        fed = 0
        while fed < steps:
            k += 1
            if hole_every and k % hole_every == 0:
                continue  # challenge instant: no trusted sample
            t = float(k)
            gap = 80.0 - 0.8 * t + 0.05 * np.sin(1.3 * k)
            rel_v = -0.8 + 0.02 * np.cos(2.1 * k)
            estimator.observe(
                RadarMeasurement(
                    time=t, distance=gap, relative_velocity=rel_v
                ),
                v_f + 0.01 * np.sin(0.7 * k),
            )
            fed += 1
        return estimator

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="solver_mode"):
            SecureReconstructionEstimator(solver_mode="cached")

    @pytest.mark.parametrize("hole_every", [None, 6], ids=["uniform", "holes"])
    def test_modes_bit_identical(self, hole_every):
        incremental = SecureReconstructionEstimator(solver_mode="incremental")
        scratch = SecureReconstructionEstimator(solver_mode="from_scratch")
        for estimator in (incremental, scratch):
            self._feed(estimator, 40, hole_every=hole_every)
        assert results_equal(incremental.last_result, scratch.last_result)
        assert incremental._state[0] == scratch._state[0]
        assert np.array_equal(incremental._state[1], scratch._state[1])
        # The shared subset accounting agrees mode-to-mode...
        for key in ("windows_solved", "subsets_searched", "subsets_pruned"):
            assert (
                incremental.search_stats()[key] == scratch.search_stats()[key]
            )
        # ...and only the incremental mode exercises the geometry cache.
        assert incremental.search_stats()["geometry_hits"] > 0
        assert scratch.search_stats()["geometry_hits"] == 0

    def test_transition_cache_bounded_under_jittered_sampling(self):
        # Per-step float jitter must not grow the dt-memo without bound.
        estimator = SecureReconstructionEstimator(transition_cache_size=8)
        v_f = 20.0
        t = 0.0
        for k in range(50):
            t += 1.0 + 1e-13 * k  # below quantization: one logical dt
            estimator.observe(
                RadarMeasurement(
                    time=t, distance=60.0 - 0.5 * t, relative_velocity=-0.5
                ),
                v_f,
            )
        assert len(estimator._transition_cache) <= 8
        assert estimator._transition_cache.evictions == 0
        assert estimator._transition_cache.hits > 0

    def test_search_stats_keys(self):
        estimator = self._feed(
            SecureReconstructionEstimator(), 12, hole_every=5
        )
        stats = estimator.search_stats()
        assert stats["windows_solved"] == 11
        # Each window solves s=0 (1 subset) and s=1 (2 subsets).
        assert stats["subsets_searched"] == 33
        assert stats["subsets_searched"] >= stats["subsets_pruned"] >= 0
        for key in (
            "geometry_hits",
            "geometry_extensions",
            "geometry_misses",
            "transition_hits",
            "transition_misses",
            "transition_evictions",
        ):
            assert stats[key] >= 0
