"""Extension bench — CRA+RLS vs redundancy-based fusion.

The paper's positioning (§2): redundancy-based methods also secure
sensing but "increase cost of the system".  This bench quantifies both
sides of that trade on the paper's scenarios:

* a *targeted* delay spoof on one of three radars is out-voted by
  median fusion — redundancy works, at 3x the sensor cost;
* *broadcast* DoS jamming hits every co-located radar at once, the
  median is corrupted, and redundancy collapses — while single-sensor
  CRA+RLS survives both attacks.
"""

from conftest import emit
from repro import fig2_scenario, run
from repro.analysis import render_table
from repro.core.fusion import run_redundant_defense


def bench_redundancy_comparison(benchmark):
    def build():
        rows = []
        for kind, broadcast in (("delay", False), ("dos", True)):
            scenario = fig2_scenario(kind)
            cra = run(scenario, defended=True)
            n_attacked = 3 if broadcast else 1
            fused, fusion = run_redundant_defense(
                scenario, n_sensors=3, n_attacked=n_attacked
            )
            suspected = [t for t in fusion.suspected_times if t >= 179.0]
            rows.append(
                {
                    "attack": f"{kind} ({'broadcast' if broadcast else 'targeted'})",
                    "cra_sensors": 1,
                    "cra_min_gap_m": round(cra.min_gap(), 1),
                    "cra_collided": cra.collided,
                    "fusion_sensors": 3,
                    "fusion_min_gap_m": round(fused.min_gap(), 1),
                    "fusion_collided": fused.collided,
                    "fusion_first_flag_s": suspected[0] if suspected else None,
                }
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    by_attack = {row["attack"]: row for row in rows}
    # Shape claims: CRA+RLS survives both; fusion survives the targeted
    # spoof (at 3x cost) but collapses under broadcast jamming.
    assert all(not row["cra_collided"] for row in rows)
    assert not by_attack["delay (targeted)"]["fusion_collided"]
    assert by_attack["dos (broadcast)"]["fusion_collided"]

    emit(
        "redundancy_comparison",
        render_table(
            rows,
            title=(
                "CRA+RLS (1 radar) vs median fusion (3 radars) on the "
                "paper's attacks"
            ),
        ),
    )
