"""Job management for the simulation service: queueing, single-flight
coalescing, and pool execution off the event loop.

The manager sits between the HTTP handlers and the execution engine:

* :meth:`JobManager.submit` fingerprints an incoming run request
  (:func:`repro.store.fingerprint.run_fingerprint`), serves store hits
  immediately, and otherwise returns a :class:`Job` — creating one, or
  **coalescing** onto the identical run already in flight;
* each job executes through a bounded ``asyncio.Semaphore`` (at most
  ``workers`` simulations at once) on a ``ProcessPoolExecutor``, so
  the event loop keeps serving requests while simulations run in
  worker processes;
* completed results are written back to the
  :class:`~repro.store.RunStore`, making every finished job a future
  cache hit.

Single-flight is the load-shedding contract of the service: any number
of concurrent identical requests cause exactly **one** engine
execution.  The table is keyed on the run fingerprint and only ever
touched from the event loop (``submit`` contains no ``await`` between
lookup and registration), so there is no window in which two identical
requests can both miss.  A failed in-flight run fails every coalesced
waiter with it; the fingerprint is then retired from the table, so the
*next* request retries fresh instead of inheriting the failure.

Pool degradation mirrors :mod:`repro.simulation.batch`: if the process
pool cannot be created or breaks on a pool-infrastructure error, the
manager warns once, records the cause, and falls back to running
simulations on a thread (still off the event loop) — results are
identical, only isolation and parallelism degrade.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import time
import warnings
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional

from repro import telemetry as _telemetry
from repro.exceptions import ConfigurationError
from repro.simulation.batch import (
    RunRecord,
    RunSpec,
    _POOL_INFRA_ERRORS,
    execute_batch,
)
from repro.simulation.knobs import resolve_backend, validate_workers
from repro.simulation.results import SimulationResult
from repro.simulation.spec import scenario_from_dict, scenario_to_dict
from repro.store.cache import CACHE_MODES
from repro.store.fingerprint import run_fingerprint
from repro.store.runstore import RunStore

__all__ = ["Job", "JobManager", "Submission", "compute_record"]

#: Lifecycle states a job moves through (in order; ``failed`` replaces
#: ``done`` when the run raised).
JOB_STATUSES = ("queued", "running", "done", "failed")

#: Default number of completed jobs kept for ``GET /v1/jobs/{id}``
#: polling before the oldest are evicted (in-flight jobs are never
#: evicted).  Override per manager with ``max_retained_jobs=``.
MAX_RETAINED_JOBS = 4096

#: An async runner substituted for the default pool execution —
#: injection point for tests (counting stubs, fault injection).
Runner = Callable[["Job"], Awaitable[RunRecord]]


def compute_record(
    spec_dict: dict, attack_enabled: bool, defended: bool, backend: str
) -> RunRecord:
    """Execute one run described by a spec dict.

    Module-level so it pickles into pool workers.  Delegates to
    :func:`repro.simulation.batch.execute_batch` (workers=1, cache
    off), so error capture, ``backend_used`` provenance and elapsed
    accounting match every other execution path in the library.
    """
    scenario = scenario_from_dict(spec_dict)
    batch = execute_batch(
        [
            RunSpec(
                scenario,
                attack_enabled=attack_enabled,
                defended=defended,
                tag=scenario.name,
            )
        ],
        workers=1,
        backend=backend,
    )
    return batch.records[0]


@dataclass
class Job:
    """One queued-or-executing run and its observable lifecycle."""

    job_id: str
    fingerprint: str
    spec_dict: dict
    attack_enabled: bool
    defended: bool
    backend: str
    cache_mode: str
    status: str = "queued"
    #: Late identical requests folded onto this execution.
    coalesced: int = 0
    error: Optional[str] = None
    backend_used: Optional[str] = None
    degraded_reason: Optional[str] = None
    elapsed: Optional[float] = None
    summary: Optional[dict] = None
    created_at: float = field(default_factory=time.time)
    done: "asyncio.Event" = field(default_factory=asyncio.Event)

    def as_dict(self) -> dict:
        """The job rendered for ``GET /v1/jobs/{id}``."""
        payload = {
            "job_id": self.job_id,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "coalesced": self.coalesced,
            "backend": self.backend,
            "backend_used": self.backend_used,
            "degraded_reason": self.degraded_reason,
            "elapsed": self.elapsed,
            "error": self.error,
        }
        if self.summary is not None:
            payload["result"] = self.summary
        return payload


@dataclass(frozen=True)
class Submission:
    """Outcome of :meth:`JobManager.submit`.

    Exactly one of the three shapes:

    * cache hit — ``result`` is the replayed
      :class:`~repro.simulation.results.SimulationResult`, ``job`` is
      ``None``;
    * new job — ``job`` is set, ``coalesced`` is ``False``;
    * coalesced — ``job`` is the already-in-flight job, ``coalesced``
      is ``True``.
    """

    fingerprint: str
    job: Optional[Job] = None
    result: Optional[SimulationResult] = None
    coalesced: bool = False

    @property
    def cache_hit(self) -> bool:
        return self.result is not None


class JobManager:
    """Single-flight execution of run requests over a bounded pool.

    Create (and use) the manager from inside a running event loop —
    the asyncio primitives it owns bind to that loop.  ``executor``
    picks where simulations run: ``"process"`` (default; worker
    processes via :class:`ProcessPoolExecutor`) or ``"thread"``
    (in-process threads — no isolation, but no pool startup cost;
    what tests and benches use).  ``runner`` overrides execution
    entirely with an async callable ``(job) -> RunRecord``.
    """

    def __init__(
        self,
        store: RunStore,
        *,
        workers: int = 2,
        backend: Optional[str] = None,
        executor: str = "process",
        runner: Optional[Runner] = None,
        max_retained_jobs: int = MAX_RETAINED_JOBS,
    ) -> None:
        if executor not in ("process", "thread"):
            raise ConfigurationError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        if not isinstance(max_retained_jobs, int) or max_retained_jobs < 1:
            raise ConfigurationError(
                f"max_retained_jobs must be a positive int, got "
                f"{max_retained_jobs!r}"
            )
        self.store = store
        self.max_retained_jobs = max_retained_jobs
        self.workers = validate_workers(workers)
        self.backend = resolve_backend(backend)
        self._executor_kind = executor
        self._runner = runner
        self._pool: Optional[Executor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: Dict[str, Job] = {}
        self._tasks: set = set()
        self._ids = itertools.count(1)
        #: Engine executions actually dispatched (the number single-
        #: flight and caching exist to minimize).
        self.executed_runs = 0
        #: Completed job records dropped by bounded retention.
        self.evicted_jobs = 0
        #: Why process-pool execution degraded to threads (``None``
        #: while the pool is healthy or ``executor="thread"``).
        self.degraded_reason: Optional[str] = None

    # -- submission (event-loop side, no awaits) -----------------------

    def submit(
        self,
        spec_dict: dict,
        *,
        attack_enabled: bool = True,
        defended: bool = True,
        backend: Optional[str] = None,
        cache: str = "readwrite",
    ) -> Submission:
        """Route one run request: store hit, coalesce, or enqueue.

        Runs synchronously on the event loop — the store lookup and
        the single-flight registration happen with no ``await`` in
        between, which is what makes the table race-free.  ``cache``
        accepts the library-wide modes: ``"readwrite"`` (default —
        serve hits, store results), ``"readonly"`` (serve hits, don't
        store), ``"off"`` (always execute, bypass the single-flight
        table too, never store).  Raises
        :class:`~repro.exceptions.ConfigurationError` for an invalid
        spec or knob.
        """
        if cache not in CACHE_MODES:
            raise ConfigurationError(
                f"cache must be one of {', '.join(CACHE_MODES)}; got {cache!r}"
            )
        scenario = scenario_from_dict(spec_dict)
        spec = RunSpec(
            scenario,
            attack_enabled=bool(attack_enabled),
            defended=bool(defended),
            tag=scenario.name,
        )
        fingerprint = run_fingerprint(spec)
        assert fingerprint is not None  # declarative specs always fingerprint
        resolved_backend = resolve_backend(
            backend if backend is not None else self.backend
        )

        if cache != "off":
            hit = self.store.get(fingerprint)
            if hit is not None:
                _telemetry.incr("service.cache_hit")
                return Submission(fingerprint=fingerprint, result=hit)
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                inflight.coalesced += 1
                _telemetry.incr("service.coalesced")
                return Submission(
                    fingerprint=fingerprint, job=inflight, coalesced=True
                )

        job = Job(
            job_id=f"job-{next(self._ids):06d}",
            fingerprint=fingerprint,
            # Store the normalized round-tripped dict, not the caller's
            # raw body, so what lands in the run store is canonical.
            spec_dict=scenario_to_dict(scenario),
            attack_enabled=bool(attack_enabled),
            defended=bool(defended),
            backend=resolved_backend,
            cache_mode=cache,
        )
        self._jobs[job.job_id] = job
        if cache != "off":
            self._inflight[fingerprint] = job
        self._trim_history()
        task = asyncio.ensure_future(self._run_job(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return Submission(fingerprint=fingerprint, job=job)

    def get_job(self, job_id: str) -> Optional[Job]:
        """Look a job up by id (``None`` when unknown or evicted)."""
        return self._jobs.get(job_id)

    def job_counts(self) -> Dict[str, int]:
        """Retained jobs per lifecycle state (for ``/healthz``)."""
        counts = {status: 0 for status in JOB_STATUSES}
        for job in self._jobs.values():
            counts[job.status] += 1
        return counts

    def _trim_history(self) -> None:
        while len(self._jobs) > self.max_retained_jobs:
            for job_id, job in self._jobs.items():
                if job.done.is_set():
                    del self._jobs[job_id]
                    self.evicted_jobs += 1
                    _telemetry.incr("service.evicted")
                    break
            else:  # everything is in flight; never evict live jobs
                break

    # -- execution (worker side) ---------------------------------------

    async def _run_job(self, job: Job) -> None:
        try:
            if self._semaphore is None:
                self._semaphore = asyncio.Semaphore(self.workers)
            async with self._semaphore:
                job.status = "running"
                self.executed_runs += 1
                _telemetry.incr("service.executed")
                with _telemetry.span(
                    "service.execute",
                    fingerprint=job.fingerprint[:12],
                    backend=job.backend,
                ):
                    record = await self._execute(job)
            job.elapsed = record.elapsed
            job.backend_used = record.backend_used
            if record.error is not None:
                job.status = "failed"
                job.error = record.error
                _telemetry.incr("service.failed")
            else:
                result = record.payload
                if job.cache_mode == "readwrite" and isinstance(
                    result, SimulationResult
                ):
                    self.store.put(
                        job.fingerprint,
                        result,
                        spec_dict=job.spec_dict,
                        attack_enabled=job.attack_enabled,
                        defended=job.defended,
                        sensor_seed=job.spec_dict.get("sensor_seed"),
                        horizon=job.spec_dict.get("horizon"),
                    )
                job.summary = result.summary().as_dict()
                job.status = "done"
        except asyncio.CancelledError:
            job.status = "failed"
            job.error = "CancelledError: service shut down before the run finished"
            raise
        except Exception as exc:  # surfaced to pollers, never crashes the loop
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            _telemetry.incr("service.failed")
        finally:
            if self._inflight.get(job.fingerprint) is job:
                del self._inflight[job.fingerprint]
            job.done.set()

    async def _execute(self, job: Job) -> RunRecord:
        if self._runner is not None:
            return await self._runner(job)
        loop = asyncio.get_running_loop()
        call = functools.partial(
            compute_record,
            job.spec_dict,
            job.attack_enabled,
            job.defended,
            job.backend,
        )
        pool = self._ensure_pool()
        if pool is not None:
            try:
                return await loop.run_in_executor(pool, call)
            except _POOL_INFRA_ERRORS as exc:
                self._degrade(exc)
        job.degraded_reason = self.degraded_reason
        # Thread mode (chosen or degraded-to): the default executor
        # still keeps the simulation off the event loop.
        return await loop.run_in_executor(None, call)

    def _ensure_pool(self) -> Optional[Executor]:
        if self._executor_kind != "process" or self.degraded_reason is not None:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except _POOL_INFRA_ERRORS as exc:
                self._degrade(exc)
                return None
        return self._pool

    def _degrade(self, exc: BaseException) -> None:
        """Record a broken pool and warn once; later jobs use threads."""
        self.degraded_reason = f"{type(exc).__name__}: {exc}"
        _telemetry.incr("service.degraded")
        warnings.warn(
            f"service process pool unavailable or broken "
            f"({self.degraded_reason}); executing runs on threads instead",
            RuntimeWarning,
            stacklevel=2,
        )
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- lifecycle -----------------------------------------------------

    async def close(self) -> None:
        """Cancel outstanding jobs and release the pool."""
        tasks = [task for task in self._tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
