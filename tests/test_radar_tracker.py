"""Alpha-beta tracker with coasting (repro.radar.tracker)."""

import pytest

from repro.radar.tracker import AlphaBetaTracker


class TestTrackLifecycle:
    def test_starts_empty(self):
        tracker = AlphaBetaTracker()
        assert tracker.state.status == "empty"
        assert not tracker.has_track

    def test_initiation_needs_confirm_hits(self):
        tracker = AlphaBetaTracker(confirm_hits=2)
        assert tracker.update((100.0, -1.0)) is None
        assert tracker.state.status == "tentative"
        assert tracker.update((99.0, -1.0)) is not None
        assert tracker.state.status == "confirmed"

    def test_tentative_track_dies_on_miss(self):
        tracker = AlphaBetaTracker(confirm_hits=2)
        tracker.update((100.0, -1.0))
        assert tracker.update(None) is None
        assert tracker.state.status == "empty"

    def test_confirmed_track_coasts(self):
        tracker = AlphaBetaTracker(confirm_hits=1, max_coast=3)
        tracker.update((100.0, -2.0))
        coasted = tracker.update(None)
        assert coasted is not None
        # Coasting extrapolates the rate: 100 - 2*1 = 98.
        assert coasted[0] == pytest.approx(98.0)
        assert tracker.state.status == "coasting"

    def test_track_drops_after_max_coast(self):
        tracker = AlphaBetaTracker(confirm_hits=1, max_coast=2)
        tracker.update((100.0, 0.0))
        assert tracker.update(None) is not None
        assert tracker.update(None) is not None
        assert tracker.update(None) is None
        assert tracker.state.status == "empty"

    def test_redetection_resets_miss_count(self):
        tracker = AlphaBetaTracker(confirm_hits=1, max_coast=2)
        tracker.update((100.0, -1.0))
        tracker.update(None)
        tracker.update((98.0, -1.0))
        assert tracker.state.consecutive_misses == 0

    def test_reset(self):
        tracker = AlphaBetaTracker(confirm_hits=1)
        tracker.update((100.0, 0.0))
        tracker.reset()
        assert tracker.state.status == "empty"


class TestFiltering:
    def test_converges_on_constant_rate_target(self):
        tracker = AlphaBetaTracker(confirm_hits=1)
        d = 100.0
        for _ in range(30):
            out = tracker.update((d, -2.0))
            d -= 2.0
        assert out[0] == pytest.approx(d + 2.0, abs=0.5)
        assert out[1] == pytest.approx(-2.0, abs=0.2)

    def test_smooths_noise(self):
        import numpy as np

        rng = np.random.default_rng(0)
        tracker = AlphaBetaTracker(confirm_hits=1)
        errors_raw, errors_tracked = [], []
        d = 100.0
        for _ in range(100):
            z = d + rng.normal(0, 1.0)
            out = tracker.update((z, 0.0))
            errors_raw.append(abs(z - d))
            errors_tracked.append(abs(out[0] - d))
        assert np.mean(errors_tracked[20:]) < np.mean(errors_raw[20:])

    def test_challenge_gap_bridged_transparently(self):
        """The paper's CRA challenge looks like one missed detection."""
        tracker = AlphaBetaTracker(confirm_hits=2, max_coast=5)
        d = 100.0
        for k in range(20):
            if k == 10:  # challenge instant: empty return
                out = tracker.update(None)
            else:
                out = tracker.update((d, -1.0))
            if k >= 1:
                assert out is not None
            d -= 1.0


class TestValidation:
    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            AlphaBetaTracker(alpha=0.0)
        with pytest.raises(ValueError):
            AlphaBetaTracker(beta=-0.1)
        with pytest.raises(ValueError):
            AlphaBetaTracker(sample_period=0.0)
        with pytest.raises(ValueError):
            AlphaBetaTracker(confirm_hits=0)
        with pytest.raises(ValueError):
            AlphaBetaTracker(max_coast=-1)
