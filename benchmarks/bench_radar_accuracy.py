"""Substrate validation — radar chain accuracy vs distance.

Validates the signal-fidelity substrate (DESIGN.md §3 substitution for
the MATLAB Phased Array toolbox): beat-signal synthesis at link-budget
SNR + root-MUSIC extraction + Eqns 7-8 inversion, measured as RMS
range/velocity error over Monte-Carlo draws per distance.  The paper's
radar must resolve targets across its whole 2-200 m envelope; the SNR
(and hence the error) degrades as d⁻⁴ toward max range.
"""

import numpy as np

from conftest import emit
from repro import FMCWParameters, FMCWRadarSensor
from repro.analysis import render_table
from repro.radar.link_budget import beat_snr

PARAMS = FMCWParameters()
N_TRIALS = 25


def _evaluate(distance: float):
    sensor = FMCWRadarSensor(fidelity="signal", seed=1234)
    range_errors, velocity_errors = [], []
    for trial in range(N_TRIALS):
        velocity = -2.0 + 0.1 * trial
        m = sensor.measure(float(trial), distance, velocity)
        range_errors.append(m.distance - distance)
        velocity_errors.append(m.relative_velocity - velocity)
    return {
        "distance_m": distance,
        "snr_dB": round(10.0 * np.log10(beat_snr(PARAMS, distance)), 1),
        "range_rmse_m": round(float(np.sqrt(np.mean(np.square(range_errors)))), 4),
        "velocity_rmse_mps": round(
            float(np.sqrt(np.mean(np.square(velocity_errors)))), 4
        ),
    }


def bench_radar_accuracy(benchmark):
    def sweep():
        return [_evaluate(d) for d in (5.0, 20.0, 50.0, 100.0, 150.0, 195.0)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape claims: sub-meter ranging and sub-0.5 m/s velocity across
    # the whole envelope; SNR monotonically decreasing with distance.
    assert all(row["range_rmse_m"] < 1.0 for row in rows)
    assert all(row["velocity_rmse_mps"] < 0.5 for row in rows)
    snrs = [row["snr_dB"] for row in rows]
    assert all(a > b for a, b in zip(snrs, snrs[1:]))

    emit(
        "radar_accuracy",
        render_table(
            rows,
            title=(
                "Signal-chain accuracy vs distance "
                f"({N_TRIALS} Monte-Carlo draws per row; synthesis + "
                "root-MUSIC + Eqns 7-8)"
            ),
        ),
    )
