"""Secure state reconstruction (repro.defense).

Covers the solver's core contract — exact recovery of the state from
``p - s`` honest sensors when the 2s-sparse observability guarantee
holds, and honest reporting when it does not — plus the pipeline-facing
sliding-window estimator built on it.
"""

import numpy as np
import pytest

from repro.defense import (
    SecureReconstructionEstimator,
    SecureStateReconstruct,
    SSProblem,
    follower_relative_system,
)
from repro.exceptions import ConfigurationError, EstimatorNotTrainedError
from repro.lti.observability import is_sparse_observable
from repro.types import RadarMeasurement

# A double integrator observed by three redundant position sensors plus
# one velocity sensor: removing ANY two sensors leaves an observable
# pair, so (A, C4) is 2-sparse observable and the s=1 reconstruction
# guarantee holds.
A2 = np.array([[1.0, 1.0], [0.0, 1.0]])
B2 = np.array([[0.5], [1.0]])
C4 = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])


def simulate(A, B, C, x0, us, steps):
    """Roll the model and return the clean measurement window."""
    x = np.asarray(x0, float)
    ys = [C @ x]
    for k in range(steps - 1):
        u = us[k] if us is not None else np.zeros(B.shape[1])
        x = A @ x + B @ u
        ys.append(C @ x)
    return np.array(ys), x


class TestSSProblemValidation:
    def test_rejects_nonsquare_A(self):
        with pytest.raises(ConfigurationError, match="square"):
            SSProblem(np.ones((2, 3)), None, C4, np.ones((3, 4)))

    def test_rejects_mismatched_C(self):
        with pytest.raises(ConfigurationError, match="columns"):
            SSProblem(A2, None, np.ones((2, 3)), np.ones((3, 2)))

    def test_rejects_mismatched_ys(self):
        with pytest.raises(ConfigurationError, match="one column per sensor"):
            SSProblem(A2, None, C4, np.ones((3, 2)))

    def test_rejects_short_window(self):
        with pytest.raises(ConfigurationError, match="at least 2"):
            SSProblem(A2, None, C4, np.ones((1, 4)))

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ConfigurationError, match="s must be >= 0"):
            SSProblem(A2, None, C4, np.ones((3, 4)), s=-1)
        with pytest.raises(ConfigurationError, match="honest sensor"):
            SSProblem(A2, None, C4, np.ones((3, 4)), s=4)

    def test_rejects_input_shape_mismatch(self):
        with pytest.raises(ConfigurationError, match="one input per transition"):
            SSProblem(A2, B2, C4, np.ones((3, 4)), us=np.ones((3, 1)))

    def test_rejects_us_without_B(self):
        with pytest.raises(ConfigurationError, match="without a B"):
            SSProblem(A2, None, C4, np.ones((3, 4)), us=np.ones((2, 1)))

    def test_rejects_bad_dts(self):
        with pytest.raises(ConfigurationError, match="one duration"):
            SSProblem(A2, None, C4, np.ones((3, 4)), dts=[1.0])
        with pytest.raises(ConfigurationError, match="positive"):
            SSProblem(A2, None, C4, np.ones((3, 4)), dts=[1.0, -1.0])

    def test_dimensions(self):
        problem = SSProblem(A2, B2, C4, np.ones((5, 4)), us=np.ones((4, 1)))
        assert (problem.n, problem.p, problem.io_length) == (2, 4, 5)


class TestExactRecovery:
    """The headline guarantee: <= s attacked + 2s-sparse observable
    => the true state is recovered exactly (noiseless window)."""

    def test_guarantee_condition_holds(self):
        assert is_sparse_observable(A2, C4, 2)

    @pytest.mark.parametrize("attacked_sensor", [0, 1, 2, 3])
    def test_recovers_state_under_single_sensor_attack(self, attacked_sensor):
        x0 = np.array([12.0, -3.0])
        us = 0.3 * np.ones((5, 1))
        ys, x_true = simulate(A2, B2, C4, x0, us, 6)
        ys[:, attacked_sensor] += 40.0  # bias injection on one sensor

        result = SecureStateReconstruct(
            SSProblem(A2, B2, C4, ys, us=us, s=1),
            residual_threshold=1e-6,
        ).solve()

        assert result.guaranteed
        best = result.best
        assert best is not None
        assert attacked_sensor in best.attacked
        np.testing.assert_allclose(best.x0, x0, atol=1e-8)
        np.testing.assert_allclose(best.x_end, x_true, atol=1e-8)

    def test_every_consistent_candidate_agrees(self):
        # Uniqueness half of the guarantee: no consistent candidate
        # disagrees with the true state.
        x0 = np.array([5.0, 1.0])
        ys, _ = simulate(A2, B2, C4, x0, None, 6)
        ys[:, 2] -= 25.0
        result = SecureStateReconstruct(
            SSProblem(A2, None, C4, ys, s=1)
        ).solve()
        for candidate in result.consistent:
            np.testing.assert_allclose(candidate.x0, x0, atol=1e-8)

    def test_clean_window_all_subsets_consistent(self):
        ys, _ = simulate(A2, B2, C4, np.array([7.0, 0.5]), None, 6)
        result = SecureStateReconstruct(
            SSProblem(A2, None, C4, ys, s=1)
        ).solve()
        assert len(result.consistent) == len(result.candidates) == 4

    def test_covariance_reported_for_observable_subsets(self):
        ys, _ = simulate(A2, B2, C4, np.array([7.0, 0.5]), None, 6)
        result = SecureStateReconstruct(
            SSProblem(A2, None, C4, ys, s=1)
        ).solve()
        cov = result.best.x_end_covariance
        assert cov is not None and cov.shape == (2, 2)
        assert np.all(np.linalg.eigvalsh(cov) > 0.0)


class TestGuaranteeFailureReporting:
    """When 2s-sparse observability fails the solver must say so."""

    def test_radar_plant_is_not_2sparse_observable(self):
        # The car-following radar has p=2 channels; the velocity-only
        # subset cannot observe the gap, so s=1 recovery is never
        # structurally guaranteed for this plant.
        A, _B, C = follower_relative_system(1.0)
        assert not is_sparse_observable(A, C, 2)

    def test_solver_reports_unobservable_subsets(self):
        A, B, C = follower_relative_system(1.0)
        ys, _ = simulate(A, B, C, np.array([50.0, -1.0, -0.1]), None, 6)
        result = SecureStateReconstruct(
            SSProblem(A, B, C, ys, s=1)
        ).solve()
        assert not result.guaranteed
        # The velocity-only subset (sensor index 1) is the ambiguous one.
        assert (1,) in result.unobservable_subsets

    def test_unobservable_candidates_never_consistent(self):
        A, B, C = follower_relative_system(1.0)
        ys, _ = simulate(A, B, C, np.array([50.0, -1.0, -0.1]), None, 6)
        result = SecureStateReconstruct(
            SSProblem(A, B, C, ys, s=1)
        ).solve()
        for candidate in result.consistent:
            assert candidate.observable


class TestNonUniformWindows:
    """dts + a transition callable discretize each interval exactly."""

    def test_exact_recovery_with_holes(self):
        # Continuous double integrator sampled at irregular instants —
        # the trusted-sample stream with challenge holes.
        def transition(dt):
            A = np.array([[1.0, dt], [0.0, 1.0]])
            B = np.array([[0.5 * dt * dt], [dt]])
            return A, B

        times = np.array([0.0, 1.0, 2.0, 4.0, 5.0, 7.0])
        x0 = np.array([20.0, -2.0])
        accel = -0.5
        # Closed form: pos = p0 + v0 t + a t^2 / 2.
        ys = np.column_stack(
            [
                x0[0] + x0[1] * times + 0.5 * accel * times**2,
                np.repeat(x0[1] + accel * times, 1),
            ]
        )
        dts = np.diff(times)
        us = accel * np.ones((len(dts), 1))
        A, B = transition(1.0)
        C = np.eye(2)

        solver = SecureStateReconstruct(
            SSProblem(A, B, C, ys, us=us, s=0, dts=dts),
            transition=transition,
        )
        best = solver.solve().best
        assert best is not None
        np.testing.assert_allclose(best.x0, x0, atol=1e-8)

        # Without the per-interval transition the uniform-spacing model
        # cannot explain the same window.
        uniform = SecureStateReconstruct(
            SSProblem(A, B, C, ys, us=us, s=0)
        ).solve()
        assert uniform.best is None


class TestSecureReconstructionEstimator:
    def measurement(self, time, gap, rel_v):
        return RadarMeasurement(
            time=time, distance=gap, relative_velocity=rel_v
        )

    def feed_constant_decel(self, estimator, steps, gap0=60.0, a_L=-0.2):
        """Constant-deceleration leader, constant-speed follower."""
        v_f = 20.0
        for k in range(steps):
            t = float(k)
            rel_v = a_L * t
            gap = gap0 + 0.5 * a_L * t * t
            estimator.observe(self.measurement(t, gap, rel_v), v_f)
        return v_f

    def test_untrained_raises(self):
        estimator = SecureReconstructionEstimator()
        assert not estimator.trained
        with pytest.raises(EstimatorNotTrainedError):
            estimator.forecast(1.0, 20.0)

    def test_requires_follower_speed(self):
        estimator = SecureReconstructionEstimator()
        with pytest.raises(ValueError, match="follower speed"):
            estimator.observe(self.measurement(0.0, 50.0, 0.0))
        self.feed_constant_decel(estimator, 4)
        with pytest.raises(ValueError, match="follower speed"):
            estimator.forecast(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SecureReconstructionEstimator(window=1)
        with pytest.raises(ConfigurationError):
            SecureReconstructionEstimator(sparsity=2)
        with pytest.raises(ConfigurationError):
            SecureReconstructionEstimator(residual_threshold=0.0)
        with pytest.raises(ConfigurationError):
            SecureReconstructionEstimator(margin_gain=-1.0)

    def test_forecast_extrapolates_braking_leader(self):
        # The 3-state model's point: a constantly braking leader keeps
        # braking in the forecast, not coasting.  Margin off so the
        # comparison is against the raw model rollout.
        estimator = SecureReconstructionEstimator(margin_gain=0.0)
        v_f = self.feed_constant_decel(estimator, 8, gap0=80.0, a_L=-0.3)
        horizon = 10.0
        t_end = 7.0 + horizon
        gap, rel_v = estimator.forecast(t_end, v_f)
        true_gap = 80.0 + 0.5 * -0.3 * t_end * t_end
        true_rel = -0.3 * t_end
        assert gap == pytest.approx(true_gap, abs=1e-6)
        assert rel_v == pytest.approx(true_rel, abs=1e-6)

    def test_margin_makes_forecasts_conservative(self):
        noisy = SecureReconstructionEstimator(margin_gain=2.0)
        exact = SecureReconstructionEstimator(margin_gain=0.0)
        for estimator in (noisy, exact):
            v_f = self.feed_constant_decel(estimator, 8)
        assert noisy.margin() > 0.0
        gap_margin, _ = noisy.forecast(20.0, v_f)
        gap_raw, _ = exact.forecast(20.0, v_f)
        assert gap_margin < gap_raw
        # The margin grows with the forecast horizon (uncertainty in the
        # fitted Delta-v / a_L integrates into gap error).
        margin_now = noisy.margin()
        noisy.forecast(40.0, v_f)
        assert noisy.margin() > margin_now

    def test_guarantee_reported_honestly(self):
        estimator = SecureReconstructionEstimator()
        assert estimator.guarantee_holds is None
        self.feed_constant_decel(estimator, 4)
        assert estimator.guarantee_holds is False

    def test_window_is_bounded(self):
        estimator = SecureReconstructionEstimator(window=4)
        self.feed_constant_decel(estimator, 10)
        assert len(estimator._samples) == 4

    def test_snapshot_restore_roundtrip(self):
        estimator = SecureReconstructionEstimator()
        v_f = self.feed_constant_decel(estimator, 6)
        snapshot = estimator.snapshot()
        gap_before, rel_before = estimator.forecast(12.0, v_f)
        # Corrupt with a wild observation, then roll back.
        estimator.observe(self.measurement(13.0, 500.0, 30.0), v_f)
        estimator.restore(snapshot)
        assert estimator.forecast(12.0, v_f) == (gap_before, rel_before)
