"""SQLite-backed persistent store of simulation runs.

One row per content-addressed run (see
:mod:`repro.store.fingerprint`): spec dict, headline summary, and the
full trace payload as a zlib-compressed binary block (JSON metadata
header + packed ``float64`` arrays).  The stdlib
``sqlite3`` is the whole persistence stack — no external services, one
file on disk, safe for concurrent access:

* the database runs in WAL mode with an explicit ``busy_timeout``
  (:data:`BUSY_TIMEOUT_MS`), so readers never block the (single)
  writer and multiple processes can share one store file; writes that
  still lose the lock race retry a bounded number of times
  (:data:`WRITE_RETRIES`) with exponential backoff before surfacing a
  :class:`StoreContentionError` that names the store and the attempt
  count — callers never see a raw ``sqlite3.OperationalError:
  database is locked``;
* connections are opened lazily and re-opened after a ``fork`` (the
  owning pid is tracked), so a store object that leaks into a
  ``ProcessPoolExecutor`` worker does not share a connection with the
  parent — though the cache-aware batch path in
  :mod:`repro.simulation.batch` deliberately touches the store from the
  parent process only;
* payload floats round-trip exactly (``float64`` in, ``float64``
  out), so a cache hit is bit-identical to recomputing the run.

The default store location is ``$REPRO_CACHE_DIR/runstore.sqlite`` when
that variable is set, else ``$XDG_CACHE_HOME/repro/runstore.sqlite``,
else ``~/.cache/repro/runstore.sqlite``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import ReproError
from repro.simulation.io import result_to_dict
from repro.simulation.results import SimulationResult
from repro.types import DetectionEvent, TimeSeries

__all__ = [
    "RunStore",
    "StoreStats",
    "ShardStats",
    "StoreContentionError",
    "default_store_path",
    "BUSY_TIMEOUT_MS",
    "WRITE_RETRIES",
]

#: Column order of the ``runs`` table — the raw-row contract shared by
#: :meth:`RunStore.iter_rows` / :meth:`RunStore.put_row` and the
#: shard ``merge`` / ``export`` machinery in :mod:`repro.store.sharded`.
ROW_COLUMNS = (
    "fingerprint",
    "schema_version",
    "name",
    "attack_enabled",
    "defended",
    "sensor_seed",
    "horizon",
    "spec_json",
    "summary_json",
    "payload",
    "payload_codec",
    "payload_bytes",
    "created_at",
)

PathLike = Union[str, Path]

#: SQLite busy handler timeout applied to every connection.  A writer
#: holding the WAL lock makes competing writers *wait* this long
#: before failing with ``database is locked`` instead of failing
#: immediately.
BUSY_TIMEOUT_MS = 30_000

#: Bounded retry attempts for a write that still loses the lock race
#: after the busy timeout (e.g. many processes hammering one shard).
WRITE_RETRIES = 5

#: Base of the exponential backoff between write retries (seconds);
#: attempt ``k`` sleeps ``WRITE_RETRY_BACKOFF_S * 2**k``.
WRITE_RETRY_BACKOFF_S = 0.05


class StoreContentionError(ReproError):
    """A store write kept losing the SQLite lock race.

    Raised only after :data:`WRITE_RETRIES` bounded retries on top of
    the :data:`BUSY_TIMEOUT_MS` busy handler — seeing this means the
    store is genuinely oversubscribed (consider sharding it; see
    :mod:`repro.store.sharded`), not that a writer got unlucky once.
    """


def _is_lock_error(exc: sqlite3.OperationalError) -> bool:
    """Whether an ``OperationalError`` is the lock/busy race (retryable)."""
    message = str(exc).lower()
    return "locked" in message or "busy" in message

#: Identifier of the payload encoding; stored per row so the codec can
#: evolve without invalidating old databases.  ``v1``: a little-endian
#: ``uint32`` header length, a JSON header (run metadata + trace
#: layout), then the packed ``float64`` trace arrays — all wrapped in
#: zlib.  Binary doubles round-trip bit-exactly and decode an order of
#: magnitude faster than JSON float parsing, which is what makes warm
#: cache replays sub-millisecond per run.
_PAYLOAD_CODEC = "zlib-f64-v1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    fingerprint     TEXT PRIMARY KEY,
    schema_version  INTEGER NOT NULL,
    name            TEXT NOT NULL,
    attack_enabled  INTEGER NOT NULL,
    defended        INTEGER NOT NULL,
    sensor_seed     INTEGER,
    horizon         REAL,
    spec_json       TEXT NOT NULL,
    summary_json    TEXT NOT NULL,
    payload         BLOB NOT NULL,
    payload_codec   TEXT NOT NULL,
    payload_bytes   INTEGER NOT NULL,
    created_at      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_name ON runs (name);
"""


def default_store_path() -> Path:
    """Resolve the default on-disk location of the run store."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser() / "runstore.sqlite"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "runstore.sqlite"


def _encode_payload(result: SimulationResult) -> bytes:
    meta = result_to_dict(result)
    traces = meta.pop("traces")
    layout = []
    arrays = []
    for name, data in traces.items():
        layout.append({"name": name, "n": len(data["times"])})
        arrays.append(np.asarray(data["times"], dtype="<f8").tobytes())
        arrays.append(np.asarray(data["values"], dtype="<f8").tobytes())
    header = json.dumps(
        {"meta": meta, "layout": layout}, separators=(",", ":")
    ).encode("utf-8")
    blob = b"".join([struct.pack("<I", len(header)), header, *arrays])
    return zlib.compress(blob, 6)


def _decode_payload(blob: bytes, codec: str) -> SimulationResult:
    if codec != _PAYLOAD_CODEC:
        raise ValueError(f"unknown run-store payload codec {codec!r}")
    raw = zlib.decompress(blob)
    (header_len,) = struct.unpack_from("<I", raw, 0)
    header = json.loads(raw[4 : 4 + header_len].decode("utf-8"))
    meta = header["meta"]
    offset = 4 + header_len
    traces = {}
    for entry in header["layout"]:
        name, n = entry["name"], entry["n"]
        times = np.frombuffer(raw, dtype="<f8", count=n, offset=offset)
        offset += 8 * n
        values = np.frombuffer(raw, dtype="<f8", count=n, offset=offset)
        offset += 8 * n
        traces[name] = TimeSeries(name, times=times.tolist(), values=values.tolist())
    return SimulationResult(
        name=meta["name"],
        traces=traces,
        detection_events=[
            DetectionEvent(
                time=float(e["time"]),
                attack_detected=bool(e["attack_detected"]),
                receiver_output=float(e["receiver_output"]),
            )
            for e in meta["detection_events"]
        ],
        collision_time=meta["collision_time"],
        attack_name=meta["attack_name"],
        defended=meta["defended"],
        defense_stats=meta.get("defense_stats"),
    )


@dataclass(frozen=True)
class ShardStats:
    """Per-shard slice of a :class:`StoreStats` snapshot."""

    shard: str
    entries: int
    payload_bytes: int
    db_bytes: int

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "entries": self.entries,
            "payload_bytes": self.payload_bytes,
            "db_bytes": self.db_bytes,
        }


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of a store's contents (``repro cache stats``).

    ``shards`` is empty for a single-file :class:`RunStore` and holds
    one :class:`ShardStats` per shard for a
    :class:`~repro.store.sharded.ShardedRunStore` — every consumer of
    :meth:`as_dict` (the CLI's ``cache stats --json``, the service's
    ``GET /v1/store/stats``) gets the per-shard breakdown through this
    one shared path.
    """

    path: str
    entries: int
    payload_bytes: int
    db_bytes: int
    by_scenario: Tuple[Tuple[str, int], ...]
    shards: Tuple[ShardStats, ...] = ()

    @property
    def shard_count(self) -> int:
        """Number of physical database files (1 for a plain store)."""
        return len(self.shards) or 1

    def as_dict(self) -> dict:
        """JSON-compatible form of the snapshot.

        The single serialization shared by ``repro cache stats --json``
        and the service's ``GET /v1/store/stats`` endpoint — one code
        path, so the two surfaces can never drift apart.
        """
        payload = {
            "path": self.path,
            "entries": self.entries,
            "payload_bytes": self.payload_bytes,
            "db_bytes": self.db_bytes,
            "by_scenario": {name: count for name, count in self.by_scenario},
            "shard_count": self.shard_count,
        }
        if self.shards:
            payload["shards"] = [shard.as_dict() for shard in self.shards]
        return payload

    def as_rows(self) -> List[dict]:
        """Rows for :func:`repro.analysis.tables.render_table`."""
        rows = [
            {
                "scope": "total",
                "runs": self.entries,
                "payload_kb": round(self.payload_bytes / 1024.0, 1),
                "db_kb": round(self.db_bytes / 1024.0, 1),
            }
        ]
        for shard in self.shards:
            rows.append(
                {
                    "scope": shard.shard,
                    "runs": shard.entries,
                    "payload_kb": round(shard.payload_bytes / 1024.0, 1),
                    "db_kb": round(shard.db_bytes / 1024.0, 1),
                }
            )
        for name, count in self.by_scenario:
            rows.append(
                {"scope": name, "runs": count, "payload_kb": None, "db_kb": None}
            )
        return rows


class RunStore:
    """Content-addressed persistent cache of simulation runs.

    Keys are the SHA-256 fingerprints of
    :func:`repro.store.fingerprint.run_fingerprint`; values are full
    :class:`~repro.simulation.results.SimulationResult` payloads plus
    queryable metadata (scenario name, seed, horizon, headline summary).

    The store is a context manager; ``close()`` is otherwise optional
    (connections are also released when the object is collected).
    """

    #: Whether cache-aware batch execution may let pool workers write
    #: to this store directly.  A single WAL file serializes its
    #: writers, so batch keeps all writes in the parent process; the
    #: sharded store (:mod:`repro.store.sharded`) overrides this.
    concurrent_writers = False

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self._path = Path(path) if path is not None else default_store_path()
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None

    # -- connection management -----------------------------------------

    @property
    def path(self) -> Path:
        """Location of the database file."""
        return self._path

    def _connect(self) -> sqlite3.Connection:
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        if self._conn is not None:
            # Inherited across a fork: drop the parent's handle without
            # closing it (closing would roll back the parent's journal).
            self._conn = None
        self._path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self._path), timeout=BUSY_TIMEOUT_MS / 1000.0)
        conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        conn.commit()
        self._conn = conn
        self._pid = os.getpid()
        return conn

    def close(self) -> None:
        """Release the database connection (if any)."""
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = None

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- core API ------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        result: SimulationResult,
        *,
        spec_dict: Optional[dict] = None,
        attack_enabled: bool = True,
        defended: bool = True,
        sensor_seed: Optional[int] = None,
        horizon: Optional[float] = None,
    ) -> bool:
        """Insert one run under its fingerprint.

        Content-addressing makes the row immutable: a fingerprint that
        is already present is left untouched (``ON CONFLICT DO
        NOTHING``), so a ``readwrite`` cache hit causes zero WAL churn
        and the entry keeps its original ``created_at``.  Returns
        whether a new row was written.
        """
        from repro.store.fingerprint import STORE_SCHEMA_VERSION

        payload = _encode_payload(result)
        summary = json.dumps(result.summary().as_dict())
        written = self._insert_row(
            (
                fingerprint,
                STORE_SCHEMA_VERSION,
                result.name,
                int(bool(attack_enabled)),
                int(bool(defended)),
                sensor_seed,
                horizon,
                json.dumps(spec_dict) if spec_dict is not None else "{}",
                summary,
                payload,
                _PAYLOAD_CODEC,
                len(payload),
                time.time(),
            )
        )
        tele = _telemetry.current()
        if tele is not None:
            if written:
                tele.incr("store.writes")
                tele.incr("store.write_bytes", len(payload))
            else:
                tele.incr("store.write_skips")
        return written

    def _insert_row(self, values: Tuple) -> bool:
        """Insert one raw row with bounded lock-race retries.

        The busy handler (:data:`BUSY_TIMEOUT_MS`) absorbs ordinary
        contention; the bounded retry loop on top covers the pathologic
        case where the handler itself times out under many concurrent
        writers.  After :data:`WRITE_RETRIES` failed attempts the
        write surfaces as :class:`StoreContentionError` rather than a
        raw ``sqlite3.OperationalError``.
        """
        sql = (
            f"INSERT INTO runs ({', '.join(ROW_COLUMNS)}) "
            f"VALUES ({', '.join('?' for _ in ROW_COLUMNS)}) "
            "ON CONFLICT(fingerprint) DO NOTHING"
        )
        for attempt in range(WRITE_RETRIES):
            try:
                conn = self._connect()
                with conn:
                    cursor = conn.execute(sql, values)
                return cursor.rowcount > 0
            except sqlite3.OperationalError as exc:
                if not _is_lock_error(exc):
                    raise
                _telemetry.incr("store.write_retries")
                if attempt == WRITE_RETRIES - 1:
                    raise StoreContentionError(
                        f"store {self._path} stayed locked through "
                        f"{WRITE_RETRIES} write attempts "
                        f"(busy_timeout {BUSY_TIMEOUT_MS} ms each): {exc}"
                    ) from exc
                time.sleep(WRITE_RETRY_BACKOFF_S * (2 ** attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        """Fetch the run stored under ``fingerprint`` (``None`` on miss).

        A store file that does not exist yet is an unconditional miss
        and is *not* created by reads.
        """
        tele = _telemetry.current()
        if not self._path.exists():
            if tele is not None:
                tele.incr("store.misses")
            return None
        row = self._connect().execute(
            "SELECT payload, payload_codec FROM runs WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            if tele is not None:
                tele.incr("store.misses")
            return None
        if tele is not None:
            tele.incr("store.hits")
            tele.incr("store.hit_bytes", len(row[0]))
        return _decode_payload(row[0], row[1])

    def __contains__(self, fingerprint: str) -> bool:
        if not self._path.exists():
            return False
        row = self._connect().execute(
            "SELECT 1 FROM runs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        if not self._path.exists():
            return 0
        (count,) = self._connect().execute(
            "SELECT COUNT(*) FROM runs"
        ).fetchone()
        return int(count)

    def fingerprints(self) -> List[str]:
        """All stored fingerprints (insertion-order agnostic)."""
        if not self._path.exists():
            return []
        rows = self._connect().execute(
            "SELECT fingerprint FROM runs ORDER BY fingerprint"
        ).fetchall()
        return [row[0] for row in rows]

    # -- raw-row transfer (the merge/export substrate) -----------------

    def iter_rows(self) -> Iterable[Dict[str, Any]]:
        """Yield every stored row as a :data:`ROW_COLUMNS` dict.

        The payload blob travels opaque and untouched — no decode /
        re-encode round-trip — which is what makes ``merge`` between
        stores bit-preserving by construction.  Rows come out in
        fingerprint order.
        """
        if not self._path.exists():
            return
        cursor = self._connect().execute(
            f"SELECT {', '.join(ROW_COLUMNS)} FROM runs ORDER BY fingerprint"
        )
        for row in cursor:
            yield dict(zip(ROW_COLUMNS, row))

    def put_row(self, row: Dict[str, Any]) -> bool:
        """Insert one raw row (immutable semantics, like :meth:`put`).

        ``row`` is a :meth:`iter_rows`-shaped dict; the original
        ``created_at`` / codec / payload bytes are preserved verbatim.
        Returns whether a new row was written (an existing fingerprint
        is left untouched).
        """
        return self._insert_row(tuple(row[column] for column in ROW_COLUMNS))

    # -- maintenance ---------------------------------------------------

    def stats(self) -> StoreStats:
        """Entry/byte counts, without creating a missing store file."""
        if not self._path.exists():
            return StoreStats(
                path=str(self._path),
                entries=0,
                payload_bytes=0,
                db_bytes=0,
                by_scenario=(),
            )
        conn = self._connect()
        entries, payload_bytes = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(payload_bytes), 0) FROM runs"
        ).fetchone()
        by_name = conn.execute(
            "SELECT name, COUNT(*) FROM runs GROUP BY name ORDER BY name"
        ).fetchall()
        return StoreStats(
            path=str(self._path),
            entries=int(entries),
            payload_bytes=int(payload_bytes),
            db_bytes=self._path.stat().st_size,
            by_scenario=tuple((str(n), int(c)) for n, c in by_name),
        )

    def evict(
        self,
        fingerprints: Optional[Iterable[str]] = None,
        *,
        before: Optional[float] = None,
    ) -> int:
        """Delete selected entries; returns the number removed.

        ``fingerprints`` limits eviction to those keys; ``before``
        (a UNIX timestamp) evicts entries created earlier than it.
        With neither filter, everything is evicted.
        """
        if not self._path.exists():
            return 0
        clauses: List[str] = []
        params: List[object] = []
        if fingerprints is not None:
            keys = list(fingerprints)
            if not keys:
                return 0
            clauses.append(
                f"fingerprint IN ({','.join('?' for _ in keys)})"
            )
            params.extend(keys)
        if before is not None:
            clauses.append("created_at < ?")
            params.append(float(before))
        sql = "DELETE FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        conn = self._connect()
        with conn:
            removed = conn.execute(sql, params).rowcount
        return int(removed)

    def clear(self) -> int:
        """Evict every entry and compact the database file."""
        removed = self.evict()
        if self._path.exists():
            self._connect().execute("VACUUM")
        return removed

    def export(self, path: PathLike) -> Path:
        """Write the store's metadata + summaries (no payloads) as JSON.

        The export is a portable inventory — enough to audit what a
        cache contains and to re-run any entry from its spec dict.
        """
        entries = []
        if self._path.exists():
            rows = self._connect().execute(
                "SELECT fingerprint, schema_version, name, attack_enabled, "
                "defended, sensor_seed, horizon, spec_json, summary_json, "
                "payload_bytes, created_at FROM runs ORDER BY fingerprint"
            ).fetchall()
            for row in rows:
                entries.append(
                    {
                        "fingerprint": row[0],
                        "schema_version": row[1],
                        "name": row[2],
                        "attack_enabled": bool(row[3]),
                        "defended": bool(row[4]),
                        "sensor_seed": row[5],
                        "horizon": row[6],
                        "spec": json.loads(row[7]),
                        "summary": json.loads(row[8]),
                        "payload_bytes": row[9],
                        "created_at": row[10],
                    }
                )
        out = Path(path)
        out.write_text(
            json.dumps(
                {"store": str(self._path), "entries": entries}, indent=2
            )
        )
        return out

    def scenario_counts(self) -> Dict[str, int]:
        """Stored-run count per scenario name."""
        return dict(self.stats().by_scenario)
