"""Cell-averaging CFAR detection over the beat spectrum.

The baseline receiver decides signal presence with a fixed energy
threshold against the known thermal floor.  Real automotive radars use
constant-false-alarm-rate (CFAR) processing instead: each spectral cell
is compared against a noise estimate formed from its neighbours, so the
false-alarm rate stays fixed even when the interference level drifts —
e.g. under partial-band jamming that raises the floor without fully
swamping the echo.

This module provides the classic cell-averaging CFAR (CA-CFAR) over the
FFT magnitude-squared of a dechirped segment, plus a
:class:`SpectralPresenceDetector` the :class:`~repro.radar.receiver.
RadarReceiver` can use in place of the fixed energy threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["ca_cfar", "CFARDetection", "SpectralPresenceDetector"]


def ca_cfar(
    power_spectrum: np.ndarray,
    guard_cells: int = 2,
    training_cells: int = 8,
    probability_false_alarm: float = 1e-4,
) -> np.ndarray:
    """Cell-averaging CFAR over a power spectrum.

    For each cell under test the noise level is estimated as the mean of
    ``training_cells`` cells on each side (skipping ``guard_cells``
    around the test cell to avoid self-masking); the threshold factor

        alpha = N (Pfa^{-1/N} - 1),   N = 2 * training_cells

    gives the requested false-alarm probability for exponentially
    distributed noise power (complex AWGN).  The spectrum is treated as
    circular (FFT bins wrap).

    Returns
    -------
    numpy.ndarray
        Boolean array, True where a cell exceeds its CFAR threshold.
    """
    spectrum = np.asarray(power_spectrum, dtype=float).ravel()
    if guard_cells < 0 or training_cells < 1:
        raise ValueError("guard_cells must be >= 0 and training_cells >= 1")
    if not 0.0 < probability_false_alarm < 1.0:
        raise ValueError(
            f"probability_false_alarm must be in (0, 1), got {probability_false_alarm}"
        )
    n_cells = spectrum.size
    window = guard_cells + training_cells
    if n_cells < 2 * window + 1:
        raise ValueError(
            f"spectrum of {n_cells} cells is too short for guard={guard_cells}, "
            f"training={training_cells}"
        )
    n_train = 2 * training_cells
    alpha = n_train * (probability_false_alarm ** (-1.0 / n_train) - 1.0)

    # Circular training-sum via cumulative sums over a tripled spectrum.
    tripled = np.concatenate([spectrum, spectrum, spectrum])
    cumulative = np.concatenate([[0.0], np.cumsum(tripled)])

    def window_sum(center: np.ndarray, lo_offset: int, hi_offset: int) -> np.ndarray:
        lo = center + n_cells + lo_offset
        hi = center + n_cells + hi_offset + 1
        return cumulative[hi] - cumulative[lo]

    centers = np.arange(n_cells)
    leading = window_sum(centers, -window, -(guard_cells + 1))
    trailing = window_sum(centers, guard_cells + 1, window)
    noise_estimate = (leading + trailing) / n_train
    return spectrum > alpha * noise_estimate


@dataclass(frozen=True)
class CFARDetection:
    """Outcome of one CFAR pass over a segment."""

    present: bool
    n_detections: int
    peak_bin: int
    peak_power: float


class SpectralPresenceDetector:
    """CFAR-based presence decision for dechirped segments.

    Declares a segment "present" when at least ``min_detections``
    spectral cells clear their CA-CFAR threshold.  Drop-in alternative
    to the receiver's fixed energy threshold.

    Parameters
    ----------
    guard_cells, training_cells, probability_false_alarm:
        Forwarded to :func:`ca_cfar`.
    min_detections:
        Cells that must fire for the segment to count as present; 1 for
        maximum sensitivity, larger to reject isolated noise spikes.
    fft_size:
        Zero-padded FFT length; None uses the segment length.
    """

    def __init__(
        self,
        guard_cells: int = 2,
        training_cells: int = 8,
        probability_false_alarm: float = 1e-4,
        min_detections: int = 1,
        fft_size: "int | None" = None,
    ):
        if min_detections < 1:
            raise ValueError(f"min_detections must be >= 1, got {min_detections}")
        self.guard_cells = guard_cells
        self.training_cells = training_cells
        self.probability_false_alarm = probability_false_alarm
        self.min_detections = min_detections
        self.fft_size = fft_size

    def detect(self, segment: np.ndarray) -> CFARDetection:
        """Run CA-CFAR over one complex segment."""
        samples = np.asarray(segment, dtype=complex).ravel()
        n_fft = self.fft_size if self.fft_size is not None else samples.size
        spectrum = np.abs(np.fft.fft(samples, n_fft)) ** 2 / samples.size
        hits = ca_cfar(
            spectrum,
            guard_cells=self.guard_cells,
            training_cells=self.training_cells,
            probability_false_alarm=self.probability_false_alarm,
        )
        peak = int(np.argmax(spectrum))
        return CFARDetection(
            present=int(np.count_nonzero(hits)) >= self.min_detections,
            n_detections=int(np.count_nonzero(hits)),
            peak_bin=peak,
            peak_power=float(spectrum[peak]),
        )
