"""Composition of multiple attacks over a simulation horizon.

A scenario may stage several attacks (e.g. a jamming burst followed by a
spoofing campaign).  :class:`AttackSchedule` aggregates them and resolves
which injection reaches the radar at each instant.  Overlapping attacks
compose: jamming powers add, and the strongest spoof wins (a receiver
captured by the highest-power counterfeit).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.attacks.base import Attack
from repro.radar.sensor import AttackEffect
from repro.types import AttackLabel

__all__ = ["AttackSchedule"]


class AttackSchedule:
    """An ordered collection of attacks treated as one composite attack."""

    def __init__(self, attacks: Optional[Iterable[Attack]] = None):
        self._attacks: List[Attack] = list(attacks) if attacks is not None else []

    def add(self, attack: Attack) -> "AttackSchedule":
        """Append an attack; returns self for chaining."""
        self._attacks.append(attack)
        return self

    @property
    def attacks(self) -> Sequence[Attack]:
        """The registered attacks, in insertion order."""
        return tuple(self._attacks)

    def is_active(self, time: float) -> bool:
        """True when any registered attack is active at ``time``."""
        return any(a.is_active(time) for a in self._attacks)

    def active_labels(self, time: float) -> List[AttackLabel]:
        """Ground-truth labels of all attacks active at ``time``."""
        return [a.label for a in self._attacks if a.is_active(time)]

    def effect_at(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float = 0.0,
    ) -> Optional[AttackEffect]:
        """Resolve the composite injection at ``time`` (None when dormant)."""
        effects = [
            e
            for a in self._attacks
            if (e := a.effect_at(time, true_distance, true_relative_velocity))
            is not None
        ]
        if not effects:
            return None
        if len(effects) == 1:
            return effects[0]
        total_jam = sum(e.jammer_noise_power for e in effects)
        spoofs = [e for e in effects if e.is_spoofing]
        if spoofs:
            strongest = max(spoofs, key=lambda e: e.counterfeit_power_gain)
            return AttackEffect(
                spoof_distance_offset=strongest.spoof_distance_offset,
                spoof_velocity_offset=strongest.spoof_velocity_offset,
                replace_echo=any(e.replace_echo for e in spoofs),
                jammer_noise_power=total_jam,
                counterfeit_power_gain=strongest.counterfeit_power_gain,
            )
        return AttackEffect(jammer_noise_power=total_jam)

    def earliest_onset(self) -> Optional[float]:
        """Start time of the first attack, or None when empty."""
        if not self._attacks:
            return None
        return min(a.window.start for a in self._attacks)
