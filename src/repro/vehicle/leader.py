"""Leader-vehicle acceleration profiles (paper §6.2 scenarios).

The paper's two scenarios are (i) constant deceleration at
``-0.1082 m/s²`` and (ii) deceleration at ``-0.1082 m/s²`` followed by
acceleration at ``+0.012 m/s²``.  The profiles here generate the leader
acceleration as a function of time; the kinematics layer clamps the
leader at standstill (no reversing).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

__all__ = [
    "LeaderProfile",
    "ConstantAccelerationProfile",
    "PiecewiseAccelerationProfile",
    "StopAndGoProfile",
]


class LeaderProfile(ABC):
    """Maps time to the leader's commanded acceleration."""

    @abstractmethod
    def acceleration(self, time: float) -> float:
        """Leader acceleration at ``time``, m/s²."""


class ConstantAccelerationProfile(LeaderProfile):
    """Constant acceleration from ``start_time`` on (zero before).

    The paper's scenario (i): ``ConstantAccelerationProfile(-0.1082)``.
    """

    def __init__(self, acceleration: float, start_time: float = 0.0):
        if start_time < 0.0:
            raise ValueError(f"start_time must be >= 0, got {start_time}")
        self._acceleration = float(acceleration)
        self.start_time = float(start_time)

    def acceleration(self, time: float) -> float:
        return self._acceleration if time >= self.start_time else 0.0


class PiecewiseAccelerationProfile(LeaderProfile):
    """Piecewise-constant acceleration defined by breakpoints.

    ``segments`` is a sequence of ``(start_time, acceleration)`` pairs
    sorted by start time; the acceleration is zero before the first
    breakpoint.  The paper's scenario (ii) is::

        PiecewiseAccelerationProfile([(0.0, -0.1082), (150.0, 0.012)])
    """

    def __init__(self, segments: Sequence[Tuple[float, float]]):
        if not segments:
            raise ValueError("at least one segment is required")
        ordered: List[Tuple[float, float]] = [
            (float(t), float(a)) for t, a in segments
        ]
        for earlier, later in zip(ordered, ordered[1:]):
            if later[0] <= earlier[0]:
                raise ValueError(
                    f"segment start times must increase: {later[0]} after {earlier[0]}"
                )
        if ordered[0][0] < 0.0:
            raise ValueError("segment start times must be >= 0")
        self.segments = ordered

    def acceleration(self, time: float) -> float:
        current = 0.0
        for start, accel in self.segments:
            if time >= start:
                current = accel
            else:
                break
        return current


class StopAndGoProfile(LeaderProfile):
    """Periodic braking/accelerating leader (urban stop-and-go traffic).

    Alternates ``brake_time`` seconds at ``-deceleration`` with
    ``go_time`` seconds at ``+acceleration`` — a harsher workload than
    the paper's, used by the extension examples and stress tests.
    """

    def __init__(
        self,
        deceleration: float = 1.0,
        acceleration: float = 0.8,
        brake_time: float = 20.0,
        go_time: float = 25.0,
        start_time: float = 0.0,
    ):
        if deceleration <= 0.0 or acceleration <= 0.0:
            raise ValueError("deceleration and acceleration must be positive")
        if brake_time <= 0.0 or go_time <= 0.0:
            raise ValueError("brake_time and go_time must be positive")
        self.deceleration = float(deceleration)
        self.acceleration_value = float(acceleration)
        self.brake_time = float(brake_time)
        self.go_time = float(go_time)
        self.start_time = float(start_time)

    def acceleration(self, time: float) -> float:
        if time < self.start_time:
            return 0.0
        phase = (time - self.start_time) % (self.brake_time + self.go_time)
        if phase < self.brake_time:
            return -self.deceleration
        return self.acceleration_value
