"""Monte-Carlo evaluation over sensor-noise seeds.

The paper's evaluation is single-run; robustness statements about a
stochastic defense need distributions.  This module runs a scenario
configuration over many seeds and aggregates the safety and detection
metrics — the utility behind the seed-robustness claims in
EXPERIMENTS.md.

Runs are independent, so the sweep fans out through
:mod:`repro.simulation.batch`: ``run_monte_carlo(..., workers=4)``
distributes the seeds over a process pool and returns results
bit-identical to the serial path (each run is fully determined by its
seeded scenario, not by scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import detection_latency
from repro.simulation.batch import RunSpec, run_many
from repro.simulation.results import SimulationResult
from repro.simulation.scenario import Scenario

__all__ = ["SeedOutcome", "MonteCarloSummary", "run_monte_carlo"]


@dataclass(frozen=True)
class SeedOutcome:
    """Metrics of one seeded run."""

    seed: int
    min_gap: float
    collided: bool
    detection_time: Optional[float]
    detection_latency: Optional[float]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Aggregate over all seeded runs.

    ``detection_rate`` counts runs whose attack (if any) was detected;
    it is ``None`` for attack-free configurations (``attacked=False``),
    where "fraction of attacks detected" is undefined.
    """

    outcomes: Sequence[SeedOutcome]
    attacked: bool = True

    @property
    def n_runs(self) -> int:
        return len(self.outcomes)

    @property
    def collision_count(self) -> int:
        return sum(outcome.collided for outcome in self.outcomes)

    @property
    def worst_min_gap(self) -> float:
        return min(outcome.min_gap for outcome in self.outcomes)

    @property
    def mean_min_gap(self) -> float:
        return float(np.mean([outcome.min_gap for outcome in self.outcomes]))

    @property
    def detection_rate(self) -> Optional[float]:
        if not self.attacked:
            return None
        detected = [o.detection_time is not None for o in self.outcomes]
        if not detected:
            return None
        return sum(detected) / len(detected)

    @property
    def detection_times(self) -> List[float]:
        return [
            o.detection_time for o in self.outcomes if o.detection_time is not None
        ]

    @property
    def median_detection_time(self) -> Optional[float]:
        """Median detection instant over detected runs (None when none)."""
        times = self.detection_times
        return float(np.median(times)) if times else None

    def as_dict(self) -> dict:
        """Lossless JSON-compatible serialization of the aggregate.

        Every value is exactly the corresponding property — no rounding,
        so report JSON, ``sweep run --json`` and the service stats agree
        bit-for-bit with in-process values.  Rounding, when wanted, is
        the renderer's job (:func:`repro.analysis.tables.render_table`
        and the report's markdown table format floats at display time).
        """
        return {
            "runs": self.n_runs,
            "attacked": self.attacked,
            "collisions": self.collision_count,
            "worst_min_gap_m": self.worst_min_gap,
            "mean_min_gap_m": self.mean_min_gap,
            "detection_rate": self.detection_rate,
            "median_detection_time_s": self.median_detection_time,
        }

    def as_row(self, label: str) -> dict:
        """Flat dict for :func:`repro.analysis.tables.render_table`.

        Attack-free configurations carry ``detection_rate=None``, which
        the table renderer prints as ``-``.  Values are full precision
        (the renderers format floats); keys keep their historical names.
        """
        return {
            "configuration": label,
            "runs": self.n_runs,
            "collisions": self.collision_count,
            "worst_min_gap_m": self.worst_min_gap,
            "mean_min_gap_m": self.mean_min_gap,
            "detection_rate": self.detection_rate,
            "detection_time_s": self.median_detection_time,
        }


def _seed_outcome(spec: RunSpec, result: SimulationResult) -> SeedOutcome:
    """Reduce a full simulation result to its seed outcome.

    Runs worker-side (see :mod:`repro.simulation.batch`), so only the
    small outcome record crosses the process boundary, not the traces.
    """
    scenario = spec.scenario
    attack = scenario.attack if spec.attack_enabled else None
    detections = result.detection_times
    latency = (
        detection_latency(result, attack)
        if attack is not None and detections
        else None
    )
    return SeedOutcome(
        seed=scenario.sensor_seed,
        min_gap=result.min_gap(),
        collided=result.collided,
        detection_time=detections[0] if detections else None,
        detection_latency=latency,
    )


def run_monte_carlo(
    scenario: Scenario,
    seeds: Sequence[int],
    attack_enabled: bool = True,
    defended: bool = True,
    workers: int = 1,
    cache: Any = None,
    backend: Optional[str] = None,
) -> MonteCarloSummary:
    """Run ``scenario`` once per seed and aggregate the outcomes.

    Only the sensor seed varies between runs; everything else (attack
    timing, challenge schedule, defense configuration) is held fixed.
    ``workers`` fans the independent runs out over a process pool
    (serial when 1); the aggregated outcomes are identical either way.
    ``cache`` selects the run-store policy (see
    :func:`repro.simulation.batch.execute_batch`) — previously stored
    seeds replay from the store instead of simulating, yielding the
    same :class:`SeedOutcome` values bit-for-bit.  ``backend`` selects
    the engine; a seed sweep is exactly the homogeneous batch the
    vectorized engine advances in lock-step, so ``"auto"`` and
    ``"vectorized"`` run the whole sweep in one numpy pass per step
    with bit-identical outcomes.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("at least one seed is required")
    specs = [
        RunSpec(
            scenario=scenario.with_overrides(sensor_seed=int(seed)),
            attack_enabled=attack_enabled,
            defended=defended,
            tag=str(int(seed)),
        )
        for seed in seeds
    ]
    outcomes = run_many(
        specs,
        workers=workers,
        postprocess=_seed_outcome,
        cache=cache,
        backend=backend,
    )
    return MonteCarloSummary(
        outcomes=tuple(outcomes),
        attacked=attack_enabled and scenario.attack is not None,
    )
