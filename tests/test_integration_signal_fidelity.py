"""Closed-loop runs through the full signal-level radar chain.

The figure benches use the fast equation-fidelity sensor; these tests
run shorter closed-loop scenarios through the complete synthesis +
root-MUSIC chain to confirm both fidelities agree on the claims.
"""

import numpy as np
import pytest

from repro import fig2_scenario, run
from repro.simulation.scenario import DefenseConfig


@pytest.fixture(scope="module")
def signal_scenario():
    return fig2_scenario("delay", fidelity="signal")


class TestSignalFidelityClosedLoop:
    def test_clean_tracking(self, signal_scenario):
        result = run(signal_scenario, attack_enabled=False, defended=False)
        measured = result.array("measured_distance")
        true = result.array("true_distance")
        times = result.times
        mask = np.array(
            [not signal_scenario.schedule().is_challenge(t) for t in times]
        )
        errors = np.abs(measured[mask] - true[mask])
        # Root-MUSIC through the full chain stays sub-meter accurate.
        assert np.median(errors) < 1.0
        assert not result.collided

    def test_challenge_zeros_through_receiver(self, signal_scenario):
        result = run(signal_scenario, attack_enabled=False, defended=False)
        measured = result.series("measured_distance")
        for t in (15.0, 50.0, 175.0):
            assert measured.value_at(t) == 0.0

    def test_delay_attack_detected_and_survived(self, signal_scenario):
        result = run(signal_scenario, defended=True)
        assert result.detection_times == [182.0]
        assert not result.collided

    def test_dos_attack_detected_and_survived(self):
        scenario = fig2_scenario("dos", fidelity="signal")
        result = run(scenario, defended=True)
        assert result.detection_times == [182.0]
        assert not result.collided

    def test_fidelities_agree_on_clean_geometry(self):
        eq = run(
            fig2_scenario("dos", fidelity="equation"),
            attack_enabled=False,
            defended=False,
        )
        sig = run(
            fig2_scenario("dos", fidelity="signal"),
            attack_enabled=False,
            defended=False,
        )
        # The closed-loop trajectories match closely across fidelities.
        gap_eq = eq.array("true_distance")
        gap_sig = sig.array("true_distance")
        assert np.max(np.abs(gap_eq - gap_sig)) < 5.0
