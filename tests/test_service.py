"""The async simulation service (repro.service).

Covers the subsystem's load-bearing contracts:

* single-flight coalescing — N concurrent identical submissions cause
  exactly one engine execution (asserted via an injected counting
  runner *and* the telemetry counters);
* failure races — late arrivals coalesced onto a failing in-flight run
  see the failure, and the next request retries fresh;
* cache hits replay bit-identically through the HTTP surface;
* the endpoint contract (statuses, payload shapes, 4xx behavior);
* `repro cache stats --json` and `GET /v1/store/stats` share one
  serialization.
"""

import asyncio
import io
import json

import pytest

import repro
from repro import telemetry
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.service import ServiceApp, fetch_json
from repro.service.jobs import JobManager
from repro.simulation.batch import RunRecord
from repro.simulation.io import result_to_dict
from repro.simulation.spec import scenario_from_dict, scenario_to_dict
from repro.store import RunStore

#: Short horizon keeps the attack window empty — fast, clean runs.
FAST = repro.fig2_scenario("dos", horizon=20.0)
SPEC = scenario_to_dict(FAST)

#: Generous bound on every await in this file; tests finish in
#: milliseconds unless something deadlocks.
TIMEOUT = 30.0


def run_async(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT * 2))


class StubRunner:
    """Injected runner: counts executions, optionally blocks or fails.

    ``gate`` (when set) holds every execution until the test releases
    it, so a burst of submissions provably overlaps one in-flight run.
    """

    def __init__(self, *, gated: bool = False, fail: bool = False):
        self.calls = 0
        self.fail = fail
        self.gated = gated
        self.gate: "asyncio.Event" = None

    async def __call__(self, job) -> RunRecord:
        self.calls += 1
        if self.gated:
            if self.gate is None:
                self.gate = asyncio.Event()
            await asyncio.wait_for(self.gate.wait(), TIMEOUT)
        if self.fail:
            raise RuntimeError("injected engine failure")
        scenario = scenario_from_dict(job.spec_dict)
        result = repro.run(
            scenario,
            attack_enabled=job.attack_enabled,
            defended=job.defended,
        )
        return RunRecord(
            index=0,
            tag=job.spec_dict.get("name", ""),
            payload=result,
            elapsed=0.0,
            worker_pid=0,
            backend_used="scalar",
        )

    def release(self):
        if self.gate is None:
            self.gate = asyncio.Event()
        self.gate.set()


async def start_app(tmp_path, **kwargs) -> ServiceApp:
    kwargs.setdefault("executor", "thread")
    store = RunStore(tmp_path / "service.sqlite")
    app = ServiceApp(store, **kwargs)
    await app.start("127.0.0.1", 0)
    return app


async def stop_app(app: ServiceApp):
    await app.close()
    app.store.close()


async def poll_job(port, job_id, *, until=("done", "failed")):
    deadline = asyncio.get_running_loop().time() + TIMEOUT
    while True:
        status, payload = await fetch_json(
            "127.0.0.1", port, "GET", f"/v1/jobs/{job_id}"
        )
        assert status == 200
        if payload["status"] in until:
            return payload
        assert asyncio.get_running_loop().time() < deadline, payload
        await asyncio.sleep(0.01)


class TestEndToEnd:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        async def scenario():
            app = await start_app(tmp_path)
            try:
                port = app.port
                status, health = await fetch_json(
                    "127.0.0.1", port, "GET", "/healthz"
                )
                assert status == 200 and health["status"] == "ok"

                # Cold POST: 202 + a job that completes.
                status, queued = await fetch_json(
                    "127.0.0.1", port, "POST", "/v1/runs", SPEC
                )
                assert status == 202
                assert queued["cache_hit"] is False
                assert queued["coalesced"] is False
                job = await poll_job(port, queued["job_id"])
                assert job["status"] == "done"
                assert job["backend_used"] == "scalar"
                assert job["result"]["collided"] is False

                # Warm POST: immediate 200 with the summary.
                status, hit = await fetch_json(
                    "127.0.0.1", port, "POST", "/v1/runs", SPEC
                )
                assert status == 200
                assert hit["cache_hit"] is True
                assert hit["fingerprint"] == queued["fingerprint"]
                assert hit["result"] == job["result"]

                # The stored run is fetchable by fingerprint.
                status, stored = await fetch_json(
                    "127.0.0.1", port, "GET", f"/v1/runs/{hit['fingerprint']}"
                )
                assert status == 200
                assert stored["summary"] == job["result"]
                return app.jobs.executed_runs
            finally:
                await stop_app(app)

        with telemetry.session() as tele:
            executed = run_async(scenario())
        assert executed == 1
        assert tele.counters["service.cache_hit"] == 1
        assert tele.counters["service.executed"] == 1
        assert tele.counters.get("service.coalesced", 0) == 0
        assert tele.counters["service.requests"] >= 4

    def test_wait_flag_blocks_until_done(self, tmp_path):
        async def scenario():
            app = await start_app(tmp_path)
            try:
                status, payload = await fetch_json(
                    "127.0.0.1", app.port, "POST", "/v1/runs?wait=1", SPEC
                )
                assert status == 200
                assert payload["status"] == "done"
                assert payload["cache_hit"] is False
                assert payload["result"]["duration_s"] == 20.0
            finally:
                await stop_app(app)

        run_async(scenario())

    def test_cache_hit_replays_bit_identically(self, tmp_path):
        async def scenario():
            app = await start_app(tmp_path)
            try:
                port = app.port
                _, first = await fetch_json(
                    "127.0.0.1", port, "POST", "/v1/runs", {**SPEC, "wait": True}
                )
                status, stored = await fetch_json(
                    "127.0.0.1",
                    port,
                    "GET",
                    f"/v1/runs/{first['fingerprint']}?trace=1",
                )
                assert status == 200
                return stored["payload"]
            finally:
                await stop_app(app)

        replayed = run_async(scenario())
        direct = result_to_dict(repro.run(FAST))
        # Equality on the full dict (JSON floats round-trip exactly) is
        # the bit-identical contract through the HTTP surface.
        assert replayed == direct


class TestSingleFlight:
    N = 8

    def test_concurrent_identical_posts_execute_once(self, tmp_path):
        runner = StubRunner(gated=True)

        async def scenario():
            app = await start_app(tmp_path, runner=runner)
            try:
                port = app.port
                posts = [
                    fetch_json("127.0.0.1", port, "POST", "/v1/runs", SPEC)
                    for _ in range(self.N)
                ]
                replies = await asyncio.gather(*posts)
                # All coalesced onto one job while the run is gated.
                job_ids = {payload["job_id"] for _, payload in replies}
                assert len(job_ids) == 1
                statuses = sorted(status for status, _ in replies)
                assert statuses == [202] * self.N
                coalesced = [
                    payload for _, payload in replies if payload["coalesced"]
                ]
                assert len(coalesced) == self.N - 1
                runner.release()
                job = await poll_job(port, job_ids.pop())
                assert job["status"] == "done"
                assert job["coalesced"] == self.N - 1
                return app.jobs.executed_runs
            finally:
                await stop_app(app)

        with telemetry.session() as tele:
            executed = run_async(scenario())
        assert runner.calls == 1
        assert executed == 1
        assert tele.counters["service.executed"] == 1
        assert tele.counters["service.coalesced"] == self.N - 1
        assert tele.counters.get("service.cache_hit", 0) == 0

    def test_distinct_specs_do_not_coalesce(self, tmp_path):
        runner = StubRunner()

        async def scenario():
            app = await start_app(tmp_path, runner=runner)
            try:
                port = app.port
                posts = [
                    fetch_json(
                        "127.0.0.1",
                        port,
                        "POST",
                        "/v1/runs",
                        {**SPEC, "sensor_seed": seed, "wait": True},
                    )
                    for seed in range(3)
                ]
                replies = await asyncio.gather(*posts)
                assert {p["fingerprint"] for _, p in replies} == {
                    p["fingerprint"] for _, p in replies
                }
                assert len({p["job_id"] for _, p in replies}) == 3
            finally:
                await stop_app(app)

        run_async(scenario())
        assert runner.calls == 3

    def test_failing_run_fails_waiters_then_retries_fresh(self, tmp_path):
        runner = StubRunner(gated=True, fail=True)

        async def scenario():
            app = await start_app(tmp_path, runner=runner)
            try:
                port = app.port
                # A burst coalesces onto the (doomed) in-flight run;
                # waiters see the failure.
                posts = [
                    fetch_json(
                        "127.0.0.1", port, "POST", "/v1/runs?wait=1", SPEC
                    )
                    for _ in range(4)
                ]
                gathered = asyncio.gather(*posts)
                while runner.calls == 0:  # the first POST reached the runner
                    await asyncio.sleep(0.01)
                runner.release()
                replies = await gathered
                for status, payload in replies:
                    assert status == 500
                    assert payload["status"] == "failed"
                    assert "injected engine failure" in payload["error"]
                assert runner.calls == 1
                first_job = {p["job_id"] for _, p in replies}

                # The fingerprint left the single-flight table with the
                # failure: the next request executes fresh.
                runner.fail = False
                status, retried = await fetch_json(
                    "127.0.0.1", port, "POST", "/v1/runs?wait=1", SPEC
                )
                assert status == 200
                assert retried["status"] == "done"
                assert retried["job_id"] not in first_job
                assert runner.calls == 2
            finally:
                await stop_app(app)

        run_async(scenario())

    def test_cache_off_bypasses_store_and_single_flight(self, tmp_path):
        runner = StubRunner()

        async def scenario():
            app = await start_app(tmp_path, runner=runner)
            try:
                port = app.port
                body = {**SPEC, "cache": "off", "wait": True}
                _, first = await fetch_json(
                    "127.0.0.1", port, "POST", "/v1/runs", body
                )
                _, second = await fetch_json(
                    "127.0.0.1", port, "POST", "/v1/runs", body
                )
                assert first["status"] == second["status"] == "done"
                assert first["job_id"] != second["job_id"]
                # Nothing stored: the fingerprint is not fetchable.
                status, _ = await fetch_json(
                    "127.0.0.1", port, "GET", f"/v1/runs/{first['fingerprint']}"
                )
                assert status == 404
            finally:
                await stop_app(app)

        run_async(scenario())
        assert runner.calls == 2


class TestEndpointContract:
    def test_bad_json_and_bad_spec_are_400(self, tmp_path):
        async def scenario():
            app = await start_app(tmp_path)
            try:
                port = app.port
                status, payload = await fetch_json(
                    "127.0.0.1", port, "POST", "/v1/runs", {"wait": True}
                )
                assert status == 400 and "scenario spec" in payload["error"]
                status, payload = await fetch_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/runs",
                    {**SPEC, "spec_version": 99},
                )
                assert status == 400 and "spec_version" in payload["error"]
                status, payload = await fetch_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/runs",
                    {**SPEC, "cache": "sometimes"},
                )
                assert status == 400 and "cache" in payload["error"]
            finally:
                await stop_app(app)

        run_async(scenario())

    def test_unknown_resources_are_404(self, tmp_path):
        async def scenario():
            app = await start_app(tmp_path)
            try:
                port = app.port
                for path in (
                    "/v1/jobs/job-999999",
                    "/v1/runs/" + "0" * 64,
                    "/nope",
                ):
                    status, payload = await fetch_json(
                        "127.0.0.1", port, "GET", path
                    )
                    assert status == 404 and "error" in payload
            finally:
                await stop_app(app)

        run_async(scenario())

    def test_wrong_method_is_405(self, tmp_path):
        async def scenario():
            app = await start_app(tmp_path)
            try:
                status, _ = await fetch_json(
                    "127.0.0.1", app.port, "GET", "/v1/runs"
                )
                assert status == 405
                status, _ = await fetch_json(
                    "127.0.0.1", app.port, "POST", "/healthz", {}
                )
                assert status == 405
            finally:
                await stop_app(app)

        run_async(scenario())

    def test_wrapped_scenario_body(self, tmp_path):
        async def scenario():
            app = await start_app(tmp_path)
            try:
                status, payload = await fetch_json(
                    "127.0.0.1",
                    app.port,
                    "POST",
                    "/v1/runs",
                    {"scenario": SPEC, "wait": True, "backend": "scalar"},
                )
                assert status == 200 and payload["status"] == "done"
            finally:
                await stop_app(app)

        run_async(scenario())


class TestStoreStatsSerialization:
    def test_service_stats_match_cli_json(self, tmp_path):
        store_path = tmp_path / "service.sqlite"

        async def scenario():
            store = RunStore(store_path)
            app = ServiceApp(store, executor="thread")
            await app.start("127.0.0.1", 0)
            try:
                await fetch_json(
                    "127.0.0.1", app.port, "POST", "/v1/runs?wait=1", SPEC
                )
                status, stats = await fetch_json(
                    "127.0.0.1", app.port, "GET", "/v1/store/stats"
                )
                assert status == 200
                return stats
            finally:
                await app.close()
                store.close()

        service_stats = run_async(scenario())
        out = io.StringIO()
        assert (
            main(["cache", "stats", "--json", "--store", str(store_path)], out=out)
            == 0
        )
        cli_stats = json.loads(out.getvalue())
        # db_bytes legitimately differs: the service reads while the
        # WAL is open, the CLI after checkpoint-on-close. Everything
        # else must match field-for-field (shared as_dict() path).
        assert cli_stats.keys() == service_stats.keys()
        cli_stats.pop("db_bytes"), service_stats.pop("db_bytes")
        assert cli_stats == service_stats
        assert service_stats["entries"] == 1
        assert service_stats["by_scenario"] == {"fig2-dos/dos/defended": 1}

    def test_cli_json_on_missing_store(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["cache", "stats", "--json", "--store", str(tmp_path / "none.sqlite")],
            out=out,
        )
        assert code == 0
        stats = json.loads(out.getvalue())
        assert stats["entries"] == 0
        assert stats["by_scenario"] == {}


class TestJobManager:
    def test_rejects_bad_executor(self, tmp_path):
        with pytest.raises(ConfigurationError, match="executor"):
            JobManager(RunStore(tmp_path / "s.sqlite"), executor="fibers")

    def test_rejects_bad_cache_mode(self, tmp_path):
        async def scenario():
            manager = JobManager(
                RunStore(tmp_path / "s.sqlite"), executor="thread"
            )
            with pytest.raises(ConfigurationError, match="cache"):
                manager.submit(SPEC, cache="sometimes")
            await manager.close()

        run_async(scenario())

    def test_serve_parser_accepts_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "3", "--backend", "auto"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.workers == 3
        assert args.backend == "auto"
        assert args.max_jobs is None  # default: library MAX_RETAINED_JOBS


class TestBoundedRetention:
    """Regression: the jobs table grew without bound per process (the
    module cap existed but was not configurable and eviction was
    silent).  Retention is now a constructor/CLI knob with telemetry."""

    def distinct_spec(self, horizon):
        scenario = repro.fig2_scenario("dos", horizon=float(horizon))
        return scenario_to_dict(scenario)

    def test_rejects_bad_limit(self, tmp_path):
        store = RunStore(tmp_path / "s.sqlite")
        try:
            for bad in (0, -1, "many"):
                with pytest.raises(ConfigurationError, match="max_retained"):
                    JobManager(store, max_retained_jobs=bad)
        finally:
            store.close()

    def test_completed_jobs_evicted_beyond_limit(self, tmp_path):
        runner = StubRunner()

        async def scenario():
            app = await start_app(
                tmp_path, runner=runner, max_retained_jobs=2
            )
            try:
                submitted = []
                for horizon in (11, 12, 13, 14):
                    submission = app.jobs.submit(self.distinct_spec(horizon))
                    job = submission.job
                    assert job is not None
                    await asyncio.wait_for(job.done.wait(), TIMEOUT)
                    submitted.append(job.job_id)
                # One more submission triggers the trim of the oldest
                # completed records down to the limit.
                last = app.jobs.submit(self.distinct_spec(15)).job
                await asyncio.wait_for(last.done.wait(), TIMEOUT)
                evicted = [
                    job_id
                    for job_id in submitted
                    if app.jobs.get_job(job_id) is None
                ]
                return app.jobs, evicted, last.job_id
            finally:
                await stop_app(app)

        with telemetry.session() as tele:
            jobs, evicted, last_id = run_async(scenario())
        assert len(jobs._jobs) == 2
        assert jobs.get_job(last_id) is not None  # newest survives
        # 5 submissions through a 2-slot table: the 3 oldest completed
        # records are gone, and the counter/telemetry agree.
        assert len(evicted) == 3
        assert jobs.evicted_jobs == 3
        assert tele.counters["service.evicted"] == 3

    def test_inflight_jobs_never_evicted(self, tmp_path):
        runner = StubRunner(gated=True)

        async def scenario():
            app = await start_app(
                tmp_path, runner=runner, max_retained_jobs=1
            )
            try:
                jobs = [
                    app.jobs.submit(
                        self.distinct_spec(h), cache="off"
                    ).job
                    for h in (11, 12, 13)
                ]
                # All three are in flight and over the limit, but live
                # jobs must not be dropped.
                assert all(
                    app.jobs.get_job(job.job_id) is not None for job in jobs
                )
                assert app.jobs.evicted_jobs == 0
                runner.release()
                for job in jobs:
                    await asyncio.wait_for(job.done.wait(), TIMEOUT)
                return True
            finally:
                await stop_app(app)

        assert run_async(scenario())

    def test_healthz_reports_retention(self, tmp_path):
        async def scenario():
            app = await start_app(tmp_path, max_retained_jobs=7)
            try:
                status, health = await fetch_json(
                    "127.0.0.1", app.port, "GET", "/healthz"
                )
                assert status == 200
                return health
            finally:
                await stop_app(app)

        health = run_async(scenario())
        assert health["max_retained_jobs"] == 7
        assert health["evicted_jobs"] == 0

    def test_serve_parser_accepts_max_jobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--max-jobs", "64"])
        assert args.max_jobs == 64
