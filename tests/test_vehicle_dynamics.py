"""Vehicle kinematics, longitudinal lag, IDM, leader profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.vehicle import (
    ACCParameters,
    ConstantAccelerationProfile,
    FirstOrderLongitudinalDynamics,
    IDMParameters,
    IntelligentDriverModel,
    PiecewiseAccelerationProfile,
    StopAndGoProfile,
    VehicleState,
    advance_state,
)


class TestVehicleState:
    def test_rejects_negative_velocity(self):
        with pytest.raises(ValueError):
            VehicleState(position=0.0, velocity=-1.0)

    def test_with_values(self):
        s = VehicleState(position=1.0, velocity=2.0)
        s2 = s.with_values(velocity=5.0)
        assert s2.velocity == 5.0
        assert s2.position == 1.0


class TestAdvanceState:
    def test_eqn15_eqn17(self):
        # v[k+1] = v + aT; x[k+1] = x + vT + aT²/2.
        s = advance_state(VehicleState(0.0, 10.0), acceleration=2.0, dt=1.0)
        assert s.velocity == pytest.approx(12.0)
        assert s.position == pytest.approx(11.0)

    def test_standstill_clamp(self):
        # Braking through zero stops at zero, position uses time-to-stop.
        s = advance_state(VehicleState(0.0, 1.0), acceleration=-2.0, dt=1.0)
        assert s.velocity == 0.0
        assert s.position == pytest.approx(0.25)  # 1²/(2*2)

    def test_stays_at_standstill(self):
        s = advance_state(VehicleState(5.0, 0.0), acceleration=-1.0, dt=1.0)
        assert s.velocity == 0.0
        assert s.position == pytest.approx(5.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            advance_state(VehicleState(0.0, 1.0), 0.0, dt=0.0)

    @given(
        st.floats(min_value=0.0, max_value=40.0),
        st.floats(min_value=-5.0, max_value=3.0),
    )
    def test_property_velocity_never_negative(self, v0, a):
        s = advance_state(VehicleState(0.0, v0), a, dt=1.0)
        assert s.velocity >= 0.0

    @given(
        st.floats(min_value=0.0, max_value=40.0),
        st.floats(min_value=-5.0, max_value=3.0),
    )
    def test_property_position_never_decreases(self, v0, a):
        # No reversing: the vehicle never moves backward.
        s = advance_state(VehicleState(0.0, v0), a, dt=1.0)
        assert s.position >= 0.0


class TestFirstOrderLongitudinalDynamics:
    def test_lag_converges_to_gain_times_command(self):
        params = ACCParameters(system_gain=1.0, time_constant=1.008)
        dyn = FirstOrderLongitudinalDynamics(params)
        for _ in range(50):
            dyn.step(1.5)
        assert dyn.acceleration == pytest.approx(1.5, abs=1e-6)

    def test_command_clamped(self):
        params = ACCParameters()
        dyn = FirstOrderLongitudinalDynamics(params)
        assert dyn.clamp_command(100.0) == params.max_acceleration
        assert dyn.clamp_command(-100.0) == params.min_acceleration

    def test_single_step_fraction(self):
        params = ACCParameters()
        dyn = FirstOrderLongitudinalDynamics(params)
        alpha, beta = dyn.lag_coefficients
        dyn.step(1.0)
        assert dyn.acceleration == pytest.approx(beta)

    def test_reset(self):
        dyn = FirstOrderLongitudinalDynamics(ACCParameters())
        dyn.step(2.0)
        dyn.reset(0.5)
        assert dyn.acceleration == 0.5


class TestIDM:
    def test_free_road_accelerates_below_desired_speed(self):
        idm = IntelligentDriverModel()
        assert idm.acceleration(speed=10.0, gap=None, lead_speed=None) > 0.0

    def test_free_road_zero_at_desired_speed(self):
        idm = IntelligentDriverModel()
        a = idm.acceleration(speed=idm.params.desired_speed, gap=None, lead_speed=None)
        assert a == pytest.approx(0.0, abs=1e-9)

    def test_small_gap_brakes(self):
        idm = IntelligentDriverModel()
        a = idm.acceleration(speed=20.0, gap=5.0, lead_speed=20.0)
        assert a < 0.0

    def test_closing_fast_brakes_harder(self):
        idm = IntelligentDriverModel()
        same_speed = idm.acceleration(speed=20.0, gap=30.0, lead_speed=20.0)
        closing = idm.acceleration(speed=20.0, gap=30.0, lead_speed=10.0)
        assert closing < same_speed

    def test_overlap_demands_emergency_braking(self):
        idm = IntelligentDriverModel()
        a = idm.acceleration(speed=20.0, gap=0.0, lead_speed=20.0)
        assert a <= -idm.params.comfortable_deceleration

    def test_requires_lead_speed_with_gap(self):
        idm = IntelligentDriverModel()
        with pytest.raises(ValueError):
            idm.acceleration(speed=10.0, gap=30.0, lead_speed=None)

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            IntelligentDriverModel().acceleration(-1.0, None, None)

    def test_desired_gap_grows_with_speed(self):
        idm = IntelligentDriverModel()
        assert idm.desired_gap(30.0, 0.0) > idm.desired_gap(10.0, 0.0)

    def test_parameter_validation(self):
        with pytest.raises(Exception):
            IDMParameters(desired_speed=0.0)
        with pytest.raises(Exception):
            IDMParameters(time_headway=-1.0)

    def test_car_following_equilibrium(self):
        """An IDM follower behind a constant-speed leader reaches a
        steady gap with matched speed."""
        idm = IntelligentDriverModel()
        lead_speed = 20.0
        speed, gap = 25.0, 100.0
        for _ in range(2000):
            a = idm.acceleration(speed, gap, lead_speed)
            speed = max(0.0, speed + a * 0.1)
            gap += (lead_speed - speed) * 0.1
        assert speed == pytest.approx(lead_speed, abs=0.05)
        assert gap > idm.params.minimum_gap


class TestLeaderProfiles:
    def test_constant(self):
        p = ConstantAccelerationProfile(-0.1082)
        assert p.acceleration(0.0) == -0.1082
        assert p.acceleration(299.0) == -0.1082

    def test_constant_with_delayed_start(self):
        p = ConstantAccelerationProfile(-1.0, start_time=10.0)
        assert p.acceleration(5.0) == 0.0
        assert p.acceleration(10.0) == -1.0

    def test_constant_rejects_negative_start(self):
        with pytest.raises(ValueError):
            ConstantAccelerationProfile(1.0, start_time=-1.0)

    def test_piecewise_paper_fig3(self):
        p = PiecewiseAccelerationProfile([(0.0, -0.1082), (150.0, 0.012)])
        assert p.acceleration(100.0) == -0.1082
        assert p.acceleration(150.0) == 0.012
        assert p.acceleration(299.0) == 0.012

    def test_piecewise_zero_before_first_segment(self):
        p = PiecewiseAccelerationProfile([(10.0, 1.0)])
        assert p.acceleration(5.0) == 0.0

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            PiecewiseAccelerationProfile([])
        with pytest.raises(ValueError):
            PiecewiseAccelerationProfile([(10.0, 1.0), (5.0, 2.0)])
        with pytest.raises(ValueError):
            PiecewiseAccelerationProfile([(-1.0, 1.0)])

    def test_stop_and_go_cycles(self):
        p = StopAndGoProfile(
            deceleration=1.0, acceleration=0.5, brake_time=10.0, go_time=20.0
        )
        assert p.acceleration(5.0) == -1.0
        assert p.acceleration(15.0) == 0.5
        assert p.acceleration(35.0) == -1.0  # next cycle

    def test_stop_and_go_validation(self):
        with pytest.raises(ValueError):
            StopAndGoProfile(deceleration=0.0)
        with pytest.raises(ValueError):
            StopAndGoProfile(brake_time=0.0)
