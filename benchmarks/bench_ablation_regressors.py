"""Ablation — regressor basis for the RLS forecaster.

The paper leaves the measurement matrix ``h_k`` abstract; DESIGN.md
implements polynomial-in-time and autoregressive bases.  This bench
compares them as the leader-velocity model of the dead-reckoning
estimator on the Figure 2a scenario: a linear time basis matches the
constant-acceleration leader exactly, a constant basis lags it, a
quadratic adds variance, and AR rollouts compound their one-step errors
over the 118 s horizon.
"""

import numpy as np

from conftest import emit
from repro import fig2_scenario, run
from repro.analysis import estimation_rmse, render_table
from repro.simulation.scenario import DefenseConfig

SEEDS = (2017, 7)

BASES = [
    ("polynomial deg 0 (constant)", "polynomial", 0),
    ("polynomial deg 1 (default)", "polynomial", 1),
    ("polynomial deg 2 (quadratic)", "polynomial", 2),
    ("AR(2) rollout", "ar", 2),
    ("AR(4) rollout", "ar", 4),
]


def _evaluate(label, kind, order):
    gaps, rmses, collisions = [], [], 0
    for seed in SEEDS:
        scenario = fig2_scenario(
            "dos",
            sensor_seed=seed,
            defense=DefenseConfig(basis_kind=kind, basis_order=order),
        )
        data = run(scenario, mode="figure")
        gaps.append(data.defended.min_gap())
        collisions += int(data.defended.collided)
        rmses.append(
            estimation_rmse(
                data.defended,
                data.baseline,
                trace="safe_distance",
                reference_trace="true_distance",
                window=(183.0, 300.0),
            )
        )
    return {
        "basis": label,
        "min_gap_worst_m": round(min(gaps), 2),
        "est_rmse_mean_m": round(float(np.mean(rmses)), 2),
        "collisions": f"{collisions}/{len(SEEDS)}",
    }


def bench_ablation_regressors(benchmark):
    def sweep():
        return [_evaluate(*basis) for basis in BASES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_name = {row["basis"]: row for row in rows}
    default = by_name["polynomial deg 1 (default)"]
    # Shape claims: the linear basis survives and beats the constant
    # basis on estimate fidelity (the leader is genuinely accelerating).
    assert default["collisions"] == f"0/{len(SEEDS)}"
    assert (
        default["est_rmse_mean_m"]
        <= by_name["polynomial deg 0 (constant)"]["est_rmse_mean_m"]
    )

    emit(
        "ablation_regressors",
        render_table(
            rows,
            title="Regressor-basis ablation for the leader-velocity RLS "
            "(Figure 2a DoS, 2 sensor seeds)",
        ),
    )
