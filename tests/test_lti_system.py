"""LTI plant model (repro.lti.system) — paper §3 Eqns 1-4."""

import numpy as np
import pytest

from repro.lti import LTISystem, GaussianNoise, NoNoise, simulate_lti


def double_integrator(dt: float = 1.0) -> LTISystem:
    return LTISystem(
        A=[[1.0, dt], [0.0, 1.0]],
        B=[[0.5 * dt * dt], [dt]],
        C=[[1.0, 0.0]],
    )


class TestConstruction:
    def test_dimensions(self):
        sys = double_integrator()
        assert (sys.n, sys.m, sys.p) == (2, 1, 1)

    def test_rejects_nonsquare_A(self):
        with pytest.raises(ValueError):
            LTISystem(A=[[1.0, 0.0]], B=[[1.0]], C=[[1.0]])

    def test_rejects_mismatched_B(self):
        with pytest.raises(ValueError):
            LTISystem(A=[[1.0, 0.0], [0.0, 1.0]], B=[[1.0]], C=[[1.0, 0.0]])

    def test_rejects_mismatched_C(self):
        with pytest.raises(ValueError):
            LTISystem(A=[[1.0]], B=[[1.0]], C=[[1.0, 0.0]])

    def test_rejects_mismatched_noise_dimension(self):
        with pytest.raises(ValueError):
            LTISystem(A=[[1.0]], B=[[1.0]], C=[[1.0]], noise=NoNoise(dimension=3))


class TestDynamics:
    def test_step(self):
        sys = double_integrator()
        x1 = sys.step([0.0, 1.0], [0.0])
        assert np.allclose(x1, [1.0, 1.0])

    def test_step_with_input(self):
        sys = double_integrator()
        x1 = sys.step([0.0, 0.0], [2.0])
        assert np.allclose(x1, [1.0, 2.0])

    def test_output_noiseless(self):
        sys = double_integrator()
        assert np.allclose(sys.output([3.0, 9.0], noisy=False), [3.0])

    def test_output_noise_is_zero_mean(self):
        sys = LTISystem(
            A=[[1.0]], B=[[1.0]], C=[[1.0]], noise=GaussianNoise(0.04, seed=1)
        )
        samples = np.array([sys.output([5.0])[0] for _ in range(4000)])
        assert samples.mean() == pytest.approx(5.0, abs=0.02)
        assert samples.std() == pytest.approx(0.2, abs=0.02)

    def test_stability_classification(self):
        stable = LTISystem(A=[[0.5]], B=[[1.0]], C=[[1.0]])
        unstable = LTISystem(A=[[1.5]], B=[[1.0]], C=[[1.0]])
        marginal = double_integrator()
        assert stable.is_stable()
        assert not unstable.is_stable()
        assert not marginal.is_stable()

    def test_dc_gain(self):
        sys = LTISystem(A=[[0.5]], B=[[1.0]], C=[[2.0]])
        # Steady state of x = 0.5x + u is x = 2u, output 4u.
        assert np.allclose(sys.dc_gain(), [[4.0]])


class TestSimulateLTI:
    def test_shapes(self):
        sys = double_integrator()
        states, outputs = simulate_lti(sys, [0.0, 0.0], [[1.0]] * 10)
        assert states.shape == (11, 2)
        assert outputs.shape == (10, 1)

    def test_constant_acceleration_trajectory(self):
        sys = double_integrator()
        states, _ = simulate_lti(sys, [0.0, 0.0], [[1.0]] * 5)
        # After 5 steps of unit acceleration: v = 5, x = 12.5.
        assert states[-1, 1] == pytest.approx(5.0)
        assert states[-1, 0] == pytest.approx(12.5)

    def test_output_corruption_hook_models_attack(self):
        # Eqn 4: y' = Cx + y_a + v; a DoS-style override r after k = 3.
        sys = double_integrator()
        r = 999.0

        def corruption(k, y):
            return np.full_like(y, r) if k >= 3 else y

        _, outputs = simulate_lti(sys, [0.0, 1.0], [[0.0]] * 6, corruption=corruption)
        assert np.allclose(outputs[:3, 0], [0.0, 1.0, 2.0])
        assert np.all(outputs[3:, 0] == r)

    def test_rejects_wrong_input_width(self):
        sys = double_integrator()
        with pytest.raises(ValueError):
            simulate_lti(sys, [0.0, 0.0], [[1.0, 2.0]])


class TestGaussianNoise:
    def test_scalar_variance(self):
        noise = GaussianNoise(1.0, seed=0)
        assert noise.dimension == 1
        assert np.allclose(noise.covariance, [[1.0]])

    def test_diagonal(self):
        noise = GaussianNoise(np.array([1.0, 4.0]), seed=0)
        assert noise.dimension == 2
        assert np.allclose(noise.covariance, np.diag([1.0, 4.0]))

    def test_full_covariance_sampling(self):
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        noise = GaussianNoise(cov, seed=7)
        samples = np.array([noise.sample() for _ in range(20000)])
        assert np.allclose(np.cov(samples.T), cov, atol=0.1)

    def test_rejects_negative_variance(self):
        with pytest.raises(ValueError):
            GaussianNoise(np.array([-1.0]))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            GaussianNoise(np.array([[1.0, 0.5], [0.0, 1.0]]))

    def test_rejects_indefinite(self):
        with pytest.raises(ValueError):
            GaussianNoise(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_singular_covariance_is_allowed(self):
        noise = GaussianNoise(np.zeros((2, 2)), seed=0)
        assert np.allclose(noise.sample(), [0.0, 0.0])


class TestNoNoise:
    def test_always_zero(self):
        noise = NoNoise(dimension=2)
        assert np.allclose(noise.sample(), [0.0, 0.0])
        assert np.allclose(noise.covariance, np.zeros((2, 2)))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            NoNoise(dimension=0)
