"""Fixed-width table rendering for benchmark output.

The benchmark harness prints the same rows the paper reports; this
renderer keeps that output dependency-free and readable in CI logs.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["render_table"]


def _format_cell(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Iterable[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render dict rows as a fixed-width text table.

    Parameters
    ----------
    rows:
        Mappings from column name to value; missing keys render as "-".
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    precision:
        Decimal places for float cells.
    """
    row_list: List[Mapping[str, object]] = list(rows)
    if not row_list:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(row_list[0].keys())

    cells = [
        [_format_cell(row.get(col), precision) for col in columns] for row in row_list
    ]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(row[i].ljust(widths[i]) for i in range(len(columns)))
        for row in cells
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, rule, *body])
    return "\n".join(lines)
