#!/usr/bin/env python
"""Robustness study: the paper's claims as distributions, not anecdotes.

Uses the Monte-Carlo harness to re-state the headline claims over many
sensor-noise seeds and under injected sensor dropouts, then probes the
trusted-ego-speed assumption with a miscalibrated speed sensor.

The seed sweeps fan out over a process pool (``workers=``) through the
unified ``repro.run()`` facade — results are identical to serial.
"""

import os

import repro
from repro import fig2_scenario, run
from repro.analysis import render_table
from repro.simulation import run_monte_carlo

SEEDS = range(12)
WORKERS = min(4, os.cpu_count() or 1)


def seed_sweep() -> None:
    rows = []
    for attack in ("dos", "delay"):
        for defended in (True, False):
            summary = repro.run(
                fig2_scenario(attack),
                mode="monte_carlo",
                seeds=SEEDS,
                defended=defended,
                workers=WORKERS,
            )
            rows.append(
                summary.as_row(
                    f"{attack} {'defended' if defended else 'undefended'}"
                )
            )
    print(render_table(rows, title=f"Monte-Carlo over {len(list(SEEDS))} seeds"))
    print()


def dropout_sweep() -> None:
    rows = []
    for rate in (0.0, 0.05, 0.10, 0.20):
        summary = run_monte_carlo(
            fig2_scenario("dos", dropout_rate=rate),
            range(6),
            defended=True,
            workers=WORKERS,
        )
        row = summary.as_row(f"dropout {rate:.0%}")
        rows.append(row)
    print(
        render_table(
            rows,
            title="Sensor dropouts (missed detections) injected on top of "
            "the DoS attack",
        )
    )
    print()


def trust_assumption() -> None:
    rows = []
    for gain, bias in [(1.0, 0.0), (1.0, 1.0), (1.1, 0.0), (0.9, -0.5)]:
        result = run(
            fig2_scenario("dos", ego_speed_gain=gain, ego_speed_bias=bias),
            defended=True,
        )
        rows.append(
            {
                "ego_gain": gain,
                "ego_bias_mps": bias,
                "min_gap_m": round(result.min_gap(), 2),
                "collided": result.collided,
                "detection_s": result.detection_times[0],
            }
        )
    print(
        render_table(
            rows,
            title="Trusted-ego-speed assumption: miscalibrated speed sensor "
            "(constant bias cancels exactly in the dead-reckoning estimator)",
        )
    )


def main() -> None:
    seed_sweep()
    dropout_sweep()
    trust_assumption()


if __name__ == "__main__":
    main()
