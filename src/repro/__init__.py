"""Reproduction of *Estimation of Safe Sensor Measurements of Autonomous
System Under Attack* (Dutta et al., DAC 2017).

The library implements, from scratch:

* the paper's defense — challenge-response authentication (CRA) for
  attack detection on active sensors, and recursive least-squares (RLS)
  estimation of safe measurements during an attack (``repro.core``);
* every substrate the evaluation relies on — a 77 GHz FMCW radar chain
  with root-MUSIC beat extraction (``repro.radar``), DoS-jamming and
  delay-injection attack models (``repro.attacks``), the hierarchical
  ACC controller with the IDM-style car-following dynamics
  (``repro.vehicle``), the discrete LTI framework (``repro.lti``), and
  the closed-loop simulation engine (``repro.simulation``);
* metrics and reporting used by the benchmark harness
  (``repro.analysis``), and a content-addressed persistent run store
  (``repro.store``) that memoizes deterministic runs behind the
  ``cache=`` knob of :func:`repro.run`;
* a long-running asyncio HTTP/JSON service (``repro.service``,
  ``python -m repro serve``) that fronts the store and the batch
  engine — cache hits stream back instantly, misses execute on a
  bounded process pool, and concurrent identical requests coalesce
  into a single execution.

Quickstart
----------
>>> from repro import fig2_scenario, run
>>> data = run(fig2_scenario("dos"), mode="figure")
>>> data.detection_time()
182.0
>>> data.defended.collided
False

:func:`repro.run` is the unified experiment facade (single runs,
figure triples, Monte-Carlo sweeps, platoons) with a ``workers=``
kwarg that fans independent runs out over a process pool; the
historical entrypoints (``run_single``, ``run_figure_scenario``,
``run_monte_carlo``) remain as thin aliases delegating to it.
"""

from repro.core import (
    ARBasis,
    ChallengeSchedule,
    ChannelPredictor,
    ChiSquareDetector,
    CRADetector,
    CUSUMDetector,
    SafetyEnvelopeDetector,
    DeadReckoningEstimator,
    Forecaster,
    MeasurementEstimator,
    HoldLastValuePredictor,
    KalmanChannelPredictor,
    LMSPredictor,
    PolynomialBasis,
    PRBSGenerator,
    RadarChannelEstimator,
    RLSEstimator,
    SafeMeasurement,
    SafeMeasurementPipeline,
    rls_estimate,
)
from repro.attacks import (
    Attack,
    AttackSchedule,
    AttackWindow,
    DelayInjectionAttack,
    DoSJammingAttack,
    NoAttack,
    PhantomTargetAttack,
)
from repro.radar import (
    BOSCH_LRR2,
    AttackEffect,
    FMCWParameters,
    FMCWRadarSensor,
    JammerParameters,
    beat_frequencies,
    bosch_lrr2,
    invert_beat_frequencies,
    jamming_power_ratio,
    jamming_succeeds,
    received_power,
    root_music,
)
from repro.vehicle import (
    ACCParameters,
    ACCSystem,
    ArcLane,
    BicycleKinematics,
    ConstantAccelerationProfile,
    LaneKeepingController,
    LateralSimulation,
    LateralState,
    SinusoidalLane,
    StraightLane,
    IDMFollowerController,
    IDMParameters,
    IntelligentDriverModel,
    PiecewiseAccelerationProfile,
    StopAndGoProfile,
    VehicleState,
)
from repro.simulation import (
    BatchResult,
    CarFollowingSimulation,
    DefenseConfig,
    FigureData,
    MonteCarloSummary,
    PlatoonResult,
    PlatoonScenario,
    PlatoonSimulation,
    RunRecord,
    RunSpec,
    Scenario,
    SeedOutcome,
    SimulationResult,
    derive_seeds,
    execute_batch,
    fig2_scenario,
    fig3_scenario,
    paper_challenge_times,
    run_many,
)

# The unified facade and the historical entrypoints, which are thin
# aliases delegating to it (see repro.facade).
from repro.facade import (
    run,
    run_figure_scenario,
    run_monte_carlo,
    run_platoon,
    run_single,
)

# Content-addressed experiment store (persistent run memoization
# behind the cache= knob of run()/execute_batch; see repro.store).
from repro.store import (
    CacheBinding,
    RunStore,
    StoreStats,
    default_store_path,
    run_fingerprint,
)

# Async simulation service (HTTP/JSON frontend over the run store
# with single-flight request coalescing; see repro.service).
from repro.service import ServiceApp, serve
from repro.analysis import (
    ascii_plot,
    detection_confusion,
    detection_latency,
    estimation_rmse,
    render_table,
    safety_metrics,
)
from repro.types import (
    AttackLabel,
    DetectionEvent,
    RadarMeasurement,
    SensorStatus,
    TimeSeries,
)
from repro.exceptions import (
    ConfigurationError,
    EstimatorNotTrainedError,
    RadarRangeError,
    ReproError,
    SimulationError,
    SpectralEstimationError,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "RLSEstimator",
    "rls_estimate",
    "PolynomialBasis",
    "ARBasis",
    "ChannelPredictor",
    "Forecaster",
    "MeasurementEstimator",
    "RadarChannelEstimator",
    "DeadReckoningEstimator",
    "ChallengeSchedule",
    "PRBSGenerator",
    "CRADetector",
    "SafeMeasurementPipeline",
    "SafeMeasurement",
    "HoldLastValuePredictor",
    "LMSPredictor",
    "KalmanChannelPredictor",
    "ChiSquareDetector",
    "CUSUMDetector",
    "SafetyEnvelopeDetector",
    # attacks
    "Attack",
    "AttackWindow",
    "AttackSchedule",
    "NoAttack",
    "DoSJammingAttack",
    "DelayInjectionAttack",
    "PhantomTargetAttack",
    # radar
    "FMCWParameters",
    "BOSCH_LRR2",
    "bosch_lrr2",
    "FMCWRadarSensor",
    "AttackEffect",
    "JammerParameters",
    "beat_frequencies",
    "invert_beat_frequencies",
    "received_power",
    "jamming_power_ratio",
    "jamming_succeeds",
    "root_music",
    # vehicle
    "ACCParameters",
    "ACCSystem",
    "VehicleState",
    "IDMParameters",
    "IntelligentDriverModel",
    "IDMFollowerController",
    "ConstantAccelerationProfile",
    "PiecewiseAccelerationProfile",
    "StopAndGoProfile",
    "BicycleKinematics",
    "LateralState",
    "StraightLane",
    "ArcLane",
    "SinusoidalLane",
    "LaneKeepingController",
    "LateralSimulation",
    # simulation
    "Scenario",
    "DefenseConfig",
    "CarFollowingSimulation",
    "SimulationResult",
    "FigureData",
    "fig2_scenario",
    "fig3_scenario",
    "paper_challenge_times",
    "run",
    "run_figure_scenario",
    "run_single",
    "run_monte_carlo",
    "run_platoon",
    "MonteCarloSummary",
    "SeedOutcome",
    "PlatoonScenario",
    "PlatoonResult",
    "PlatoonSimulation",
    # batch execution
    "RunSpec",
    "RunRecord",
    "BatchResult",
    "execute_batch",
    "run_many",
    "derive_seeds",
    # run store
    "RunStore",
    "StoreStats",
    "CacheBinding",
    "run_fingerprint",
    "default_store_path",
    # service
    "ServiceApp",
    "serve",
    # analysis
    "detection_latency",
    "detection_confusion",
    "estimation_rmse",
    "safety_metrics",
    "render_table",
    "ascii_plot",
    # types
    "RadarMeasurement",
    "SensorStatus",
    "AttackLabel",
    "DetectionEvent",
    "TimeSeries",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "RadarRangeError",
    "EstimatorNotTrainedError",
    "SimulationError",
    "SpectralEstimationError",
    "__version__",
]
