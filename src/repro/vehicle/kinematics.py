"""Discrete vehicle kinematics (paper Eqns 15-17).

    v[k+1] = v[k] + a[k+1] · T                       (Eqn 15)
    x[k+1] = x[k] + v[k] · T + a[k+1] · T² / 2        (Eqn 17)

with the physical constraint that vehicles do not reverse: when braking
would take the velocity negative within the step, the update stops at
standstill (velocity clamps to zero and the position advance uses the
time-to-stop).
"""

from __future__ import annotations

from repro.vehicle.state import VehicleState

__all__ = ["advance_state"]


def advance_state(state: VehicleState, acceleration: float, dt: float) -> VehicleState:
    """Advance a vehicle one sample period under ``acceleration``.

    Parameters
    ----------
    state:
        Current state.
    acceleration:
        Acceleration held over the step, m/s².
    dt:
        Sample period, seconds.

    Returns
    -------
    VehicleState
        The state at the next sample, with standstill handling.
    """
    if dt <= 0.0:
        raise ValueError(f"sample period must be positive, got {dt}")
    v0 = state.velocity
    v1 = v0 + acceleration * dt
    if v1 >= 0.0:
        position = state.position + v0 * dt + 0.5 * acceleration * dt * dt
        return VehicleState(position=position, velocity=v1, acceleration=acceleration)
    # The vehicle reaches standstill mid-step: stop there and stay.
    if acceleration >= 0.0:  # pragma: no cover - defensive; v1<0 needs a<0
        raise AssertionError("negative velocity with non-negative acceleration")
    time_to_stop = v0 / (-acceleration)
    position = state.position + v0 * time_to_stop + 0.5 * acceleration * (
        time_to_stop * time_to_stop
    )
    return VehicleState(position=position, velocity=0.0, acceleration=acceleration)
