"""Shared machinery for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md §5).  Output conventions:

* each bench prints its table/series and also writes it to
  ``benchmarks/output/<bench-name>.txt`` so the regenerated artifacts
  are inspectable after a ``pytest benchmarks/ --benchmark-only`` run;
* figure benches emit the same three series the paper overlays
  (radar data without attack / with attack / estimated) plus an ASCII
  rendering of the panel;
* benches assert the *shape* claims (who wins, where the crossover is),
  not absolute numbers.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

import numpy as np
import pytest

from repro import run
from repro.analysis import ascii_plot, render_table

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_workers() -> int:
    """Worker-process count for benches that fan out independent runs.

    Serial by default so bench timings stay comparable run-to-run; set
    ``REPRO_BENCH_WORKERS`` to parallelize (results are identical
    either way — see :mod:`repro.simulation.batch`).
    """
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def emit(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it under output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


@functools.lru_cache(maxsize=None)
def _figure_data_cached(panel: str):
    from repro import fig2_scenario, fig3_scenario

    factory = {"fig2": fig2_scenario, "fig3": fig3_scenario}[panel[:4]]
    attack = {"a": "dos", "b": "delay"}[panel[4]]
    return run(factory(attack), mode="figure")


@pytest.fixture
def figure_data():
    """Accessor for the cached (baseline, attacked, defended) triples."""
    return _figure_data_cached


def figure_series_table(data, stride: int = 15) -> str:
    """The three distance series on a coarse grid, as the paper plots."""
    times = data.defended.times
    rows = []
    for i in range(0, len(times), stride):
        rows.append(
            {
                "t_s": times[i],
                "radar_no_attack_m": round(
                    float(data.baseline.array("measured_distance")[i]), 1
                ),
                "radar_with_attack_m": round(
                    float(data.attacked.array("measured_distance")[i]), 1
                ),
                "estimated_m": round(
                    float(data.defended.array("safe_distance")[i]), 1
                ),
                "true_gap_defended_m": round(
                    float(data.defended.array("true_distance")[i]), 1
                ),
            }
        )
    return render_table(rows, precision=1)


def figure_velocity_table(data, stride: int = 30) -> str:
    """The relative-velocity view of the same panel."""
    times = data.defended.times
    rows = []
    for i in range(0, len(times), stride):
        rows.append(
            {
                "t_s": times[i],
                "dv_no_attack": round(
                    float(data.baseline.array("measured_relative_velocity")[i]), 2
                ),
                "dv_with_attack": round(
                    float(data.attacked.array("measured_relative_velocity")[i]), 2
                ),
                "dv_estimated": round(
                    float(data.defended.array("safe_relative_velocity")[i]), 2
                ),
            }
        )
    return render_table(rows, precision=2)


def figure_ascii(data, title: str) -> str:
    times = data.defended.times
    window = times >= 100.0
    return ascii_plot(
        {
            "no attack": (
                times[window],
                np.clip(data.baseline.array("measured_distance")[window], 0, 260),
            ),
            "with attack": (
                times[window],
                np.clip(data.attacked.array("measured_distance")[window], 0, 260),
            ),
            "estimated": (
                times[window],
                np.clip(data.defended.array("safe_distance")[window], 0, 260),
            ),
        },
        title=title,
        y_label="m",
        width=100,
        height=22,
    )


def figure_summary(data) -> str:
    rows = [
        data.baseline.summary().as_dict(),
        data.attacked.summary().as_dict(),
        data.defended.summary().as_dict(),
    ]
    return render_table(rows, precision=2)


def assert_figure_shape(data, attacked_should_collide: bool) -> None:
    """The shape claims every figure panel shares."""
    assert data.detection_time() == 182.0
    assert not data.defended.collided
    assert data.defended.min_gap() > 0.0
    if attacked_should_collide:
        assert data.attacked.collided
    assert data.defended.min_gap() >= data.attacked.min_gap()
