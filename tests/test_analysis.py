"""Metrics, tables, ASCII plots (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_plot,
    detection_confusion,
    detection_latency,
    estimation_rmse,
    render_table,
    safety_metrics,
)
from repro.analysis.metrics import series_rmse
from repro.attacks import AttackWindow, DelayInjectionAttack
from repro.simulation.results import TRACE_NAMES, SimulationResult
from repro.types import DetectionEvent


ATTACK = DelayInjectionAttack(AttackWindow(180.0, 300.0))


def make_result(gaps, detections=()):
    result = SimulationResult.empty("test")
    for k, gap in enumerate(gaps):
        values = {name: 0.0 for name in TRACE_NAMES}
        values["true_distance"] = gap
        result.record(float(k), **values)
    result.detection_events = [
        DetectionEvent(t, True, 1.0) for t in detections
    ]
    return result


class TestDetectionLatency:
    def test_exact_latency(self):
        result = make_result([50.0] * 300, detections=[182.0])
        assert detection_latency(result, ATTACK) == pytest.approx(2.0)

    def test_none_when_missed(self):
        result = make_result([50.0] * 300)
        assert detection_latency(result, ATTACK) is None

    def test_ignores_pre_attack_detections(self):
        result = make_result([50.0] * 300, detections=[50.0])
        assert detection_latency(result, ATTACK) is None


class TestDetectionConfusion:
    def events(self):
        return [
            DetectionEvent(15.0, False, 0.0),   # TN
            DetectionEvent(50.0, False, 0.0),   # TN
            DetectionEvent(175.0, False, 0.0),  # TN
            DetectionEvent(182.0, True, 40.0),  # TP
            DetectionEvent(195.0, True, 40.0),  # TP
        ]

    def test_perfect_detection(self):
        confusion = detection_confusion(self.events(), ATTACK)
        assert confusion.true_positives == 2
        assert confusion.true_negatives == 3
        assert confusion.false_positives == 0
        assert confusion.false_negatives == 0
        assert confusion.perfect
        assert confusion.total == 5

    def test_false_positive(self):
        events = [DetectionEvent(15.0, True, 1.0)]
        confusion = detection_confusion(events, ATTACK)
        assert confusion.false_positives == 1
        assert not confusion.perfect

    def test_false_negative(self):
        events = [DetectionEvent(195.0, False, 0.0)]
        confusion = detection_confusion(events, ATTACK)
        assert confusion.false_negatives == 1
        assert not confusion.perfect

    def test_no_attack_all_negative(self):
        confusion = detection_confusion(self.events()[:3], None)
        assert confusion.true_negatives == 3
        assert confusion.perfect


class TestSeriesRMSE:
    def test_identical_series(self):
        t = np.arange(10.0)
        assert series_rmse(t, t * 2, t, t * 2) == 0.0

    def test_constant_offset(self):
        t = np.arange(10.0)
        assert series_rmse(t, np.zeros(10), t, np.full(10, 3.0)) == pytest.approx(3.0)

    def test_window(self):
        t = np.arange(10.0)
        values = np.zeros(10)
        other = np.concatenate([np.zeros(5), np.full(5, 4.0)])
        assert series_rmse(t, values, t, other, window=(0.0, 4.0)) == 0.0
        assert series_rmse(t, values, t, other, window=(5.0, 9.0)) == pytest.approx(4.0)

    def test_no_overlap_raises(self):
        with pytest.raises(ValueError):
            series_rmse(np.array([0.0]), np.array([1.0]), np.array([5.0]), np.array([1.0]))

    def test_estimation_rmse_uses_traces(self):
        a = make_result([50.0, 40.0, 30.0])
        b = make_result([50.0, 44.0, 33.0])
        rmse = estimation_rmse(
            a, b, trace="true_distance", reference_trace="true_distance"
        )
        assert rmse == pytest.approx(np.sqrt((0 + 16 + 9) / 3))


class TestSafetyMetrics:
    def test_safe_run(self):
        metrics = safety_metrics(make_result([10.0, 8.0, 9.0]))
        assert metrics.safe
        assert metrics.min_gap == 8.0
        assert metrics.time_gap_violated == 0.0

    def test_violation_time(self):
        metrics = safety_metrics(make_result([10.0, 1.0, 1.5, 9.0]), minimum_safe_gap=2.0)
        assert metrics.time_gap_violated == pytest.approx(2.0)

    def test_collision_reported(self):
        result = make_result([10.0, 5.0, 1.0])
        result.collision_time = 2.0
        metrics = safety_metrics(result)
        assert not metrics.safe
        assert metrics.collision_time == 2.0


class TestRenderTable:
    def test_basic(self):
        text = render_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": None}], title="T"
        )
        assert "T" in text
        assert "a" in text and "b" in text
        assert "2.500" in text
        assert "-" in text  # None cell

    def test_bool_formatting(self):
        text = render_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_empty(self):
        assert "(no rows)" in render_table([])

    def test_explicit_columns(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestAsciiPlot:
    def test_renders_series(self):
        t = list(range(50))
        text = ascii_plot(
            {"line": (t, [float(x) for x in t])}, width=40, height=10, title="plot"
        )
        assert "plot" in text
        assert "* line" in text
        assert len(text.splitlines()) >= 12

    def test_multiple_series_glyphs(self):
        t = list(range(10))
        text = ascii_plot(
            {"a": (t, t), "b": (t, [2 * x for x in t])}, width=30, height=8
        )
        assert "* a" in text
        assert "o b" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([0], [0])}, width=5, height=2)

    def test_constant_series(self):
        text = ascii_plot({"flat": ([0, 1, 2], [5.0, 5.0, 5.0])}, width=30, height=6)
        assert "flat" in text

    def test_rejects_all_nan(self):
        with pytest.raises(ValueError):
            ascii_plot({"nan": ([0.0], [float("nan")])})
