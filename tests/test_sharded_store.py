"""Sharded run store (repro.store.sharded): routing, geometry, merge,
and safe concurrent multi-process writers."""

import hashlib
import io
import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

import repro
from repro import fig2_scenario, telemetry
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.simulation import RunSpec, execute_batch
from repro.store import (
    DEFAULT_SHARDS,
    CacheBinding,
    RunStore,
    ShardedRunStore,
    default_sharded_store_path,
    merge_stores,
    resolve_cache,
    shard_index,
)
from repro.store.sharded import MANIFEST_NAME, MAX_SHARDS, SHARD_LAYOUT

FAST = fig2_scenario("dos", horizon=20.0)


def _fp(i: int) -> str:
    """A realistic synthetic fingerprint (uniform leading bits)."""
    return hashlib.sha256(f"run-{i}".encode()).hexdigest()


@pytest.fixture(scope="module")
def result():
    return repro.run(FAST)


class TestShardIndex:
    def test_matches_prefix_modulo(self):
        fp = _fp(0)
        for n in (1, 2, 8, 64):
            assert shard_index(fp, n) == int(fp[:8], 16) % n

    def test_in_range_and_deterministic(self):
        for i in range(50):
            for n in (1, 3, 8):
                index = shard_index(_fp(i), n)
                assert 0 <= index < n
                assert index == shard_index(_fp(i), n)

    def test_spreads_evenly(self):
        counts = [0] * 8
        for i in range(2000):
            counts[shard_index(_fp(i), 8)] += 1
        # SHA-256 prefixes are uniform; 2000 draws over 8 bins should
        # land well inside +-40% of the 250-per-bin expectation.
        assert min(counts) > 150
        assert max(counts) < 350


class TestShardedRunStore:
    def test_put_get_bit_identical(self, tmp_path, result):
        with ShardedRunStore(tmp_path / "shards", shards=4) as store:
            assert store.put(_fp(0), result) is True
            loaded = store.get(_fp(0))
        assert loaded.detection_events == result.detection_events
        for name in result.traces:
            assert loaded.traces[name].values == result.traces[name].values

    def test_put_touches_only_owner_shard(self, tmp_path, result):
        path = tmp_path / "shards"
        with ShardedRunStore(path, shards=4) as store:
            store.put(_fp(0), result)
        owner = shard_index(_fp(0), 4)
        files = sorted(p.name for p in path.iterdir())
        assert files == sorted([MANIFEST_NAME, f"shard-{owner:04d}.sqlite"])

    def test_reads_do_not_create_files(self, tmp_path):
        path = tmp_path / "nope"
        with ShardedRunStore(path, shards=4) as store:
            assert store.get(_fp(0)) is None
            assert _fp(0) not in store
            assert len(store) == 0
            assert store.fingerprints() == []
            assert store.stats().entries == 0
            assert store.evict() == 0
            assert store.clear() == 0
        assert not path.exists()

    def test_fingerprints_sorted_across_shards(self, tmp_path, result):
        keys = [_fp(i) for i in range(12)]
        with ShardedRunStore(tmp_path / "shards", shards=4) as store:
            for key in keys:
                store.put(key, result)
            assert len(store) == 12
            assert store.fingerprints() == sorted(keys)
            assert all(key in store for key in keys)

    def test_put_is_immutable(self, tmp_path, result):
        with ShardedRunStore(tmp_path / "shards", shards=2) as store:
            assert store.put(_fp(0), result) is True
            assert store.put(_fp(0), result) is False
            assert len(store) == 1

    def test_stats_per_shard_breakdown(self, tmp_path, result):
        with ShardedRunStore(tmp_path / "shards", shards=2) as store:
            for i in range(6):
                store.put(_fp(i), result)
            stats = store.stats()
        assert stats.entries == 6
        assert stats.shard_count == 2
        assert [s.shard for s in stats.shards] == [
            "shard-0000.sqlite",
            "shard-0001.sqlite",
        ]
        assert sum(s.entries for s in stats.shards) == 6
        assert dict(stats.by_scenario) == {result.name: 6}
        as_dict = stats.as_dict()
        assert as_dict["shard_count"] == 2
        assert len(as_dict["shards"]) == 2
        # Unsharded stats don't carry the breakdown, only the count.
        flat = RunStore(tmp_path / "flat.sqlite").stats().as_dict()
        assert flat["shard_count"] == 1
        assert "shards" not in flat

    def test_stats_counts_missing_shards_as_empty(self, tmp_path, result):
        with ShardedRunStore(tmp_path / "shards", shards=8) as store:
            store.put(_fp(0), result)
            stats = store.stats()
        assert len(stats.shards) == 8
        assert sum(s.entries for s in stats.shards) == 1

    def test_evict_routes_and_clear(self, tmp_path, result):
        keys = [_fp(i) for i in range(5)]
        with ShardedRunStore(tmp_path / "shards", shards=4) as store:
            for key in keys:
                store.put(key, result)
            assert store.evict([keys[0]]) == 1
            assert store.evict([]) == 0
            assert store.evict([keys[0]]) == 0  # already gone
            assert len(store) == 4
            assert store.clear() == 4
            assert len(store) == 0

    def test_export_inventory(self, tmp_path, result):
        keys = [_fp(i) for i in range(4)]
        with ShardedRunStore(tmp_path / "shards", shards=2) as store:
            for key in keys:
                store.put(key, result, sensor_seed=7)
            out = store.export(tmp_path / "inv.json")
        data = json.loads(out.read_text())
        assert data["layout"] == SHARD_LAYOUT
        assert data["shards"] == 2
        exported = [entry["fingerprint"] for entry in data["entries"]]
        assert exported == sorted(keys)
        assert all("payload" not in entry for entry in data["entries"])
        assert data["entries"][0]["sensor_seed"] == 7

    def test_default_path_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
        assert (
            default_sharded_store_path()
            == tmp_path / "cachedir" / "runstore-shards"
        )

    def test_resolve_cache_accepts_sharded(self, tmp_path):
        store = ShardedRunStore(tmp_path / "shards", shards=2)
        binding = resolve_cache(store)
        assert binding.store is store
        assert binding.mode == "readwrite"
        assert not binding.owns_store

    def test_concurrent_writers_flag(self, tmp_path):
        assert ShardedRunStore(tmp_path / "s", shards=2).concurrent_writers
        assert not RunStore(tmp_path / "f.sqlite").concurrent_writers


class TestManifest:
    def test_written_on_first_put(self, tmp_path, result):
        path = tmp_path / "shards"
        with ShardedRunStore(path, shards=3) as store:
            store.put(_fp(0), result)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        assert manifest == {"layout": SHARD_LAYOUT, "shards": 3}

    def test_reopen_autodetects_geometry(self, tmp_path, result):
        path = tmp_path / "shards"
        with ShardedRunStore(path, shards=3) as store:
            store.put(_fp(0), result)
        with ShardedRunStore(path) as reopened:
            assert reopened.shards == 3
            assert reopened.get(_fp(0)) is not None

    def test_reopen_with_wrong_geometry_refused(self, tmp_path, result):
        path = tmp_path / "shards"
        with ShardedRunStore(path, shards=3) as store:
            store.put(_fp(0), result)
        with pytest.raises(ConfigurationError, match="laid out as 3 shards"):
            ShardedRunStore(path, shards=4)

    def test_shard_files_without_manifest_refused(self, tmp_path):
        path = tmp_path / "shards"
        path.mkdir()
        (path / "shard-0000.sqlite").touch()
        with pytest.raises(ConfigurationError, match="no shards.json"):
            ShardedRunStore(path)

    def test_unreadable_manifest_refused(self, tmp_path):
        path = tmp_path / "shards"
        path.mkdir()
        (path / MANIFEST_NAME).write_text("not json")
        with pytest.raises(ConfigurationError, match="unreadable"):
            ShardedRunStore(path)

    def test_unknown_layout_refused(self, tmp_path):
        path = tmp_path / "shards"
        path.mkdir()
        (path / MANIFEST_NAME).write_text(
            json.dumps({"layout": "range-v9", "shards": 2})
        )
        with pytest.raises(ConfigurationError, match="unknown shard layout"):
            ShardedRunStore(path)

    @pytest.mark.parametrize("bad", [0, -1, MAX_SHARDS + 1, True, "8", 2.0])
    def test_invalid_shard_counts(self, tmp_path, bad):
        with pytest.raises(ConfigurationError):
            ShardedRunStore(tmp_path / "shards", shards=bad)

    def test_default_shard_count(self, tmp_path):
        assert ShardedRunStore(tmp_path / "shards").shards == DEFAULT_SHARDS

    def test_prepare_idempotent(self, tmp_path):
        path = tmp_path / "shards"
        store = ShardedRunStore(path, shards=2)
        store.prepare()
        before = (path / MANIFEST_NAME).read_text()
        store.prepare()
        assert (path / MANIFEST_NAME).read_text() == before


class TestMerge:
    def _rows(self, store):
        return {
            row["fingerprint"]: (row["payload"], row["created_at"])
            for row in store.iter_rows()
        }

    def test_sharded_to_single_is_byte_preserving(self, tmp_path, result):
        with ShardedRunStore(tmp_path / "shards", shards=4) as source:
            for i in range(6):
                source.put(_fp(i), result)
            with RunStore(tmp_path / "flat.sqlite") as dest:
                assert merge_stores(source, dest) == 6
                assert self._rows(dest) == self._rows(source)

    def test_single_to_sharded_reshard(self, tmp_path, result):
        with RunStore(tmp_path / "flat.sqlite") as source:
            for i in range(6):
                source.put(_fp(i), result)
            with ShardedRunStore(tmp_path / "shards", shards=3) as dest:
                assert dest.merge_from(source) == 6
                assert dest.fingerprints() == source.fingerprints()
                loaded = dest.get(_fp(0))
        for name in result.traces:
            assert loaded.traces[name].values == result.traces[name].values

    def test_sharded_to_sharded_changes_geometry(self, tmp_path, result):
        with ShardedRunStore(tmp_path / "a", shards=4) as source:
            for i in range(6):
                source.put(_fp(i), result)
            with ShardedRunStore(tmp_path / "b", shards=2) as dest:
                assert merge_stores(source, dest) == 6
                assert dest.shards == 2
                assert self._rows(dest) == self._rows(source)

    def test_merge_skips_existing(self, tmp_path, result):
        with ShardedRunStore(tmp_path / "shards", shards=2) as source:
            for i in range(3):
                source.put(_fp(i), result)
            with RunStore(tmp_path / "flat.sqlite") as dest:
                assert merge_stores(source, dest) == 3
                assert merge_stores(source, dest) == 0
                assert len(dest) == 3


# ----------------------------------------------------------------------
# multi-process writers (module-level workers: must be picklable)
# ----------------------------------------------------------------------


def _write_runs(path, shards, start, count):
    """Worker: open the sharded store and write `count` runs."""
    result = repro.run(FAST)
    with ShardedRunStore(path, shards=shards) as store:
        written = sum(
            bool(store.put(_fp(start + i), result)) for i in range(count)
        )
    return os.getpid(), written


class TestMultiProcessWriters:
    def test_disjoint_writers_lose_nothing(self, tmp_path):
        path = str(tmp_path / "shards")
        ShardedRunStore(path, shards=4).prepare()
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_write_runs, path, 4, worker * 100, 8)
                for worker in range(4)
            ]
            outcomes = [f.result() for f in futures]
        assert sum(written for _, written in outcomes) == 32
        with ShardedRunStore(path) as store:
            assert len(store) == 32
            expected = sorted(
                _fp(worker * 100 + i) for worker in range(4) for i in range(8)
            )
            assert store.fingerprints() == expected

    def test_overlapping_writers_single_winner(self, tmp_path):
        """Every worker races on the same fingerprints (and on manifest
        creation): exactly one insert wins per key, none are lost."""
        path = str(tmp_path / "shards")
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_write_runs, path, 4, 0, 8) for _ in range(4)
            ]
            outcomes = [f.result() for f in futures]
        assert sum(written for _, written in outcomes) == 8
        with ShardedRunStore(path) as store:
            assert len(store) == 8
            assert store.shards == 4


class TestBatchWorkerWrites:
    def _specs(self, n):
        return [
            RunSpec(FAST.with_overrides(sensor_seed=seed)) for seed in range(n)
        ]

    def test_cold_then_warm_through_pool(self, tmp_path):
        specs = self._specs(4)
        with ShardedRunStore(tmp_path / "shards", shards=4) as store:
            with telemetry.session() as tele:
                cold = execute_batch(specs, workers=2, cache=store)
            assert cold.cache_hits == 0
            assert len(store) == 4
            if cold.parallel:
                # The pool workers wrote their own shards directly.
                assert tele.counters["store.worker_writes"] == 4

            warm = execute_batch(specs, workers=1, cache=store)
            assert warm.cache_hits == 4
            assert all(r.cached for r in warm.records)

        plain = execute_batch(specs)
        for a, b in zip(warm.records, plain.records):
            for name in a.payload.traces:
                assert (
                    a.payload.traces[name].values == b.payload.traces[name].values
                )

    def test_readonly_sharded_binding_never_writes(self, tmp_path):
        specs = self._specs(2)
        with ShardedRunStore(tmp_path / "shards", shards=2) as store:
            readonly = CacheBinding(store, "readonly")
            miss = execute_batch(specs, workers=2, cache=readonly)
            assert miss.cache_hits == 0
            assert len(store) == 0


class TestShardedCLI:
    def _populated(self, tmp_path, result, n=3, shards=2):
        path = tmp_path / "shards"
        with ShardedRunStore(path, shards=shards) as store:
            for i in range(n):
                store.put(_fp(i), result)
            expected = store.stats().as_dict()
        return path, expected

    @staticmethod
    def _without_db_bytes(stats):
        """db_bytes moves with WAL checkpoints; compare the rest."""
        stats = dict(stats, shards=[dict(s) for s in stats["shards"]])
        stats.pop("db_bytes")
        for shard in stats["shards"]:
            shard.pop("db_bytes")
        return stats

    def test_stats_json_matches_store(self, tmp_path, result):
        path, expected = self._populated(tmp_path, result)
        out = io.StringIO()
        code = main(
            ["cache", "stats", "--store", str(path), "--json"], out=out
        )
        assert code == 0
        stats = json.loads(out.getvalue())
        assert self._without_db_bytes(stats) == self._without_db_bytes(expected)
        assert stats["shard_count"] == 2
        assert len(stats["shards"]) == 2

    def test_stats_table_has_shard_rows(self, tmp_path, result):
        path, _ = self._populated(tmp_path, result)
        out = io.StringIO()
        assert main(["cache", "stats", "--store", str(path)], out=out) == 0
        assert "shard-0000.sqlite" in out.getvalue()

    def test_merge_to_single_file(self, tmp_path, result):
        path, _ = self._populated(tmp_path, result)
        dest = tmp_path / "flat.sqlite"
        out = io.StringIO()
        code = main(
            ["cache", "merge", str(path), "--store", str(dest)], out=out
        )
        assert code == 0
        assert "merged 3 runs" in out.getvalue()
        with RunStore(dest) as merged:
            assert len(merged) == 3

    def test_merge_to_new_sharded_store(self, tmp_path, result):
        path, _ = self._populated(tmp_path, result)
        dest = tmp_path / "reshard"
        out = io.StringIO()
        code = main(
            [
                "cache", "merge", str(path),
                "--store", str(dest), "--shards", "4",
            ],
            out=out,
        )
        assert code == 0
        with ShardedRunStore(dest) as merged:
            assert merged.shards == 4
            assert len(merged) == 3

    def test_export_sharded(self, tmp_path, result):
        path, _ = self._populated(tmp_path, result)
        dest = tmp_path / "inv.json"
        out = io.StringIO()
        code = main(
            ["cache", "export", "--store", str(path), str(dest)], out=out
        )
        assert code == 0
        assert json.loads(dest.read_text())["shards"] == 2

    def test_run_custom_store_shards_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.simulation import save_scenario

        spec_path = tmp_path / "spec.json"
        save_scenario(FAST, spec_path)
        out = io.StringIO()
        code = main(
            ["run-custom", str(spec_path), "--store-shards", "2"], out=out
        )
        assert code == 0
        with ShardedRunStore(tmp_path / "runstore-shards") as store:
            assert store.shards == 2
            assert len(store) == 3  # baseline / attacked / defended
