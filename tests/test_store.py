"""Content-addressed run store (repro.store) and cache-aware execution."""

import io
import json

import numpy as np
import pytest

import repro
from repro import fig2_scenario
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.simulation import (
    PlatoonScenario,
    RunSpec,
    execute_batch,
    run_monte_carlo,
)
from repro.store import (
    CACHE_MODES,
    CacheBinding,
    RunStore,
    STORE_SCHEMA_VERSION,
    canonical_json,
    default_store_path,
    fingerprint_payload,
    resolve_cache,
    run_fingerprint,
)
from repro.vehicle import ConstantAccelerationProfile

#: Short horizon keeps the attack window empty — fast, clean runs.
FAST = fig2_scenario("dos", horizon=20.0)


def _spec(**overrides):
    return RunSpec(FAST.with_overrides(**overrides)) if overrides else RunSpec(FAST)


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_unwraps_numpy_scalars(self):
        text = canonical_json({"x": np.float64(1.5), "n": np.int64(3)})
        assert text == '{"n":3,"x":1.5}'

    def test_rejects_unserializable(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_deterministic(self):
        payload = fingerprint_payload(_spec())
        assert canonical_json(payload) == canonical_json(payload)


class TestFingerprint:
    def test_is_hex_sha256(self):
        digest = run_fingerprint(_spec())
        assert isinstance(digest, str)
        assert len(digest) == 64
        int(digest, 16)  # all hex

    def test_deterministic_and_tag_excluded(self):
        a = RunSpec(FAST, tag="first")
        b = RunSpec(FAST, tag="second")
        assert run_fingerprint(a) == run_fingerprint(b)

    @pytest.mark.parametrize(
        "other",
        [
            RunSpec(FAST, attack_enabled=False),
            RunSpec(FAST, defended=False),
            RunSpec(FAST.with_overrides(sensor_seed=999)),
            RunSpec(FAST.with_overrides(horizon=21.0)),
            RunSpec(
                FAST.with_overrides(
                    leader_profile=ConstantAccelerationProfile(-0.2)
                )
            ),
        ],
    )
    def test_sensitive_to_simulation_inputs(self, other):
        assert run_fingerprint(RunSpec(FAST)) != run_fingerprint(other)

    def test_payload_carries_schema_salt(self):
        payload = fingerprint_payload(_spec())
        assert payload["schema"] == STORE_SCHEMA_VERSION

    def test_platoon_is_uncacheable(self):
        platoon = PlatoonScenario(
            leader_profile=FAST.leader_profile, n_followers=2, horizon=20.0
        )
        spec = RunSpec(platoon)
        assert fingerprint_payload(spec) is None
        assert run_fingerprint(spec) is None


class TestRunStore:
    def test_put_get_bit_identical(self, tmp_path):
        result = repro.run(FAST, defended=True)
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put("a" * 64, result, sensor_seed=FAST.sensor_seed)
            loaded = store.get("a" * 64)
        assert loaded.name == result.name
        assert loaded.attack_name == result.attack_name
        assert loaded.defended == result.defended
        assert loaded.collision_time == result.collision_time
        assert loaded.detection_events == result.detection_events
        assert set(loaded.traces) == set(result.traces)
        for name in result.traces:
            assert loaded.traces[name].times == result.traces[name].times
            assert loaded.traces[name].values == result.traces[name].values

    def test_miss_returns_none(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put("a" * 64, repro.run(FAST))
            assert store.get("b" * 64) is None

    def test_reads_do_not_create_file(self, tmp_path):
        path = tmp_path / "nope" / "s.sqlite"
        with RunStore(path) as store:
            assert store.get("a" * 64) is None
            assert "a" * 64 not in store
            assert len(store) == 0
            assert store.fingerprints() == []
            assert store.stats().entries == 0
            assert store.evict() == 0
        assert not path.exists()

    def test_contains_len_fingerprints(self, tmp_path):
        result = repro.run(FAST)
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put("b" * 64, result)
            store.put("a" * 64, result)
            assert "a" * 64 in store
            assert "c" * 64 not in store
            assert len(store) == 2
            assert store.fingerprints() == ["a" * 64, "b" * 64]

    def test_stats_and_scenario_counts(self, tmp_path):
        result = repro.run(FAST)
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put("a" * 64, result)
            store.put("b" * 64, result)
            stats = store.stats()
            assert stats.entries == 2
            assert stats.payload_bytes > 0
            assert stats.db_bytes > 0
            assert dict(stats.by_scenario) == {result.name: 2}
            assert store.scenario_counts() == {result.name: 2}
            rows = stats.as_rows()
            assert rows[0]["scope"] == "total"
            assert rows[0]["runs"] == 2

    def test_evict_and_clear(self, tmp_path):
        result = repro.run(FAST)
        with RunStore(tmp_path / "s.sqlite") as store:
            for key in ("a" * 64, "b" * 64, "c" * 64):
                store.put(key, result)
            assert store.evict(["a" * 64]) == 1
            assert store.evict([]) == 0
            assert len(store) == 2
            assert store.clear() == 2
            assert len(store) == 0

    def test_double_put_writes_once_and_preserves_original(self, tmp_path):
        """Regression: ``put`` used INSERT OR REPLACE, so a concurrent
        second writer deleted-and-rewrote the row, churning WAL pages and
        resetting ``created_at``.  Rows are immutable now."""
        result = repro.run(FAST, defended=True)
        other = repro.run(FAST, defended=False)
        with RunStore(tmp_path / "s.sqlite") as store:
            assert store.put("a" * 64, result) is True
            created = store._connect().execute(
                "SELECT created_at FROM runs WHERE fingerprint = ?",
                ("a" * 64,),
            ).fetchone()[0]
            # Second put is a no-op, even with a different payload.
            assert store.put("a" * 64, other) is False
            assert len(store) == 1
            row = store._connect().execute(
                "SELECT created_at FROM runs WHERE fingerprint = ?",
                ("a" * 64,),
            ).fetchone()
            assert row[0] == created

            # Replay still serves the first write, bit-identical.
            loaded = store.get("a" * 64)
        assert loaded.defended == result.defended
        for name in result.traces:
            assert loaded.traces[name].values == result.traces[name].values

    def test_export_inventory(self, tmp_path):
        result = repro.run(FAST)
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put(
                "a" * 64,
                result,
                spec_dict={"name": FAST.name},
                sensor_seed=7,
                horizon=20.0,
            )
            out = store.export(tmp_path / "inventory.json")
        data = json.loads(out.read_text())
        (entry,) = data["entries"]
        assert entry["fingerprint"] == "a" * 64
        assert entry["schema_version"] == STORE_SCHEMA_VERSION
        assert entry["sensor_seed"] == 7
        assert entry["spec"] == {"name": FAST.name}
        assert "min_gap_m" in entry["summary"] or entry["summary"]
        assert "payload" not in entry

    def test_default_store_path_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
        assert default_store_path() == tmp_path / "cachedir" / "runstore.sqlite"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_store_path() == tmp_path / "xdg" / "repro" / "runstore.sqlite"


class TestCacheBinding:
    def test_resolve_off(self):
        assert resolve_cache(None) is None
        assert resolve_cache("off") is None

    def test_resolve_store_instance(self, tmp_path):
        store = RunStore(tmp_path / "s.sqlite")
        binding = resolve_cache(store)
        assert binding.store is store
        assert binding.mode == "readwrite"
        assert not binding.owns_store

    def test_resolve_mode_strings(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        for mode in ("readonly", "readwrite"):
            binding = resolve_cache(mode)
            assert binding.mode == mode
            assert binding.owns_store
            binding.store.close()

    def test_resolve_passthrough_binding(self, tmp_path):
        binding = CacheBinding(RunStore(tmp_path / "s.sqlite"), "readonly")
        assert resolve_cache(binding) is binding
        assert not binding.writes

    @pytest.mark.parametrize("bad", ["readwritee", "on", 1, object()])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_cache(bad)

    def test_binding_rejects_bad_mode(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CacheBinding(RunStore(tmp_path / "s.sqlite"), "off")

    def test_modes_constant(self):
        assert CACHE_MODES == ("off", "readonly", "readwrite")


class TestCacheAwareExecution:
    def test_cold_then_warm_batch(self, tmp_path):
        specs = [RunSpec(FAST, defended=True), RunSpec(FAST, defended=False)]
        with RunStore(tmp_path / "s.sqlite") as store:
            cold = execute_batch(specs, cache=store)
            assert cold.cache_hits == 0
            assert all(not r.cached for r in cold.records)
            assert len(store) == 2

            warm = execute_batch(specs, cache=store)
            assert warm.cache_hits == 2
            assert all(r.cached for r in warm.records)

        plain = execute_batch(specs)
        for a, b in zip(warm.records, plain.records):
            for name in a.payload.traces:
                assert a.payload.traces[name].values == b.payload.traces[name].values
            assert a.payload.detection_events == b.payload.detection_events

    def test_readonly_serves_but_never_writes(self, tmp_path):
        specs = [RunSpec(FAST)]
        with RunStore(tmp_path / "s.sqlite") as store:
            readonly = CacheBinding(store, "readonly")
            miss = execute_batch(specs, cache=readonly)
            assert miss.cache_hits == 0
            assert len(store) == 0  # miss was not written back

            execute_batch(specs, cache=store)  # populate
            hit = execute_batch(specs, cache=readonly)
            assert hit.cache_hits == 1

    def test_postprocess_applied_to_cached_runs(self, tmp_path):
        specs = [RunSpec(FAST, tag="t")]
        with RunStore(tmp_path / "s.sqlite") as store:
            cold = execute_batch(specs, cache=store, postprocess=_tag_and_gap)
            warm = execute_batch(specs, cache=store, postprocess=_tag_and_gap)
        assert warm.cache_hits == 1
        assert cold.payloads() == warm.payloads()
        assert warm.payloads()[0][0] == "t"

    def test_monte_carlo_warm_equals_cold_equals_off(self, tmp_path):
        seeds = [0, 1, 2]
        off = run_monte_carlo(FAST, seeds)
        with RunStore(tmp_path / "s.sqlite") as store:
            cold = run_monte_carlo(FAST, seeds, cache=store)
            warm = run_monte_carlo(FAST, seeds, cache=store)
            assert len(store) == len(seeds)
        assert cold.outcomes == off.outcomes
        assert warm.outcomes == off.outcomes

    def test_facade_run_single_cached(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            off = repro.run(FAST, mode="single")
            cold = repro.run(FAST, mode="single", cache=store)
            warm = repro.run(FAST, mode="single", cache=store)
            assert len(store) == 1
        for result in (cold, warm):
            assert result.detection_events == off.detection_events
            for name in off.traces:
                assert result.traces[name].values == off.traces[name].values

    def test_facade_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            repro.run(FAST, mode="single", cache="sometimes")

    def test_figure_triple_cached(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            off = repro.run(FAST, mode="figure")
            repro.run(FAST, cache=store, mode="figure")
            warm = repro.run(FAST, cache=store, mode="figure")
            assert len(store) == 3
        assert warm.defended.detection_events == off.defended.detection_events
        assert (
            warm.attacked.traces["measured_distance"].values
            == off.attacked.traces["measured_distance"].values
        )


def _tag_and_gap(spec, result):
    """Module-level reducer (must be picklable for workers)."""
    return (spec.tag, round(result.min_gap(), 6))


class TestCacheCLI:
    def _populated(self, tmp_path):
        store_path = tmp_path / "s.sqlite"
        with RunStore(store_path) as store:
            store.put("a" * 64, repro.run(FAST))
        return store_path

    def test_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out = io.StringIO()
        assert main(["cache", "path"], out=out) == 0
        assert str(tmp_path / "runstore.sqlite") in out.getvalue()

    def test_stats(self, tmp_path):
        store_path = self._populated(tmp_path)
        out = io.StringIO()
        assert main(["cache", "stats", "--store", str(store_path)], out=out) == 0
        text = out.getvalue()
        assert "run store at" in text
        assert "total" in text

    def test_clear(self, tmp_path):
        store_path = self._populated(tmp_path)
        out = io.StringIO()
        assert main(["cache", "clear", "--store", str(store_path)], out=out) == 0
        assert "evicted 1 cached runs" in out.getvalue()
        with RunStore(store_path) as store:
            assert len(store) == 0

    def test_export(self, tmp_path):
        store_path = self._populated(tmp_path)
        dest = tmp_path / "inv.json"
        out = io.StringIO()
        code = main(
            ["cache", "export", "--store", str(store_path), str(dest)], out=out
        )
        assert code == 0
        assert json.loads(dest.read_text())["entries"][0]["fingerprint"] == "a" * 64

    def test_run_with_cache_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec_path = tmp_path / "spec.json"
        from repro.simulation import save_scenario

        save_scenario(FAST, spec_path)
        out = io.StringIO()
        assert main(["run-custom", str(spec_path), "--cache"], out=out) == 0
        with RunStore() as store:
            assert len(store) == 3  # baseline / attacked / defended

    def test_cache_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2a", "--cache", "--no-cache"], out=io.StringIO())
