"""Intelligent Driver Model (IDM) — the car-following model the paper
"enhances" with the hierarchical ACC architecture (§6.1).

The standard IDM acceleration (Treiber et al.):

    a = a_max [ 1 - (v / v0)^δ - (s* / s)² ]
    s* = s0 + v T + v Δv' / (2 sqrt(a_max b))

with ``Δv' = v - v_lead`` (approach rate, positive when closing) and gap
``s``.  The IDM is used here (a) as a human-driver baseline follower to
contrast with the ACC stack, and (b) as an optional leader behaviour
generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError

__all__ = ["IDMParameters", "IntelligentDriverModel", "IDMFollowerController"]


@dataclass(frozen=True)
class IDMParameters:
    """Standard IDM parameter set (defaults: typical passenger car).

    Attributes
    ----------
    desired_speed:
        Free-flow speed ``v0``, m/s.
    time_headway:
        Safe time headway ``T``, seconds.
    max_acceleration:
        Maximum acceleration ``a_max``, m/s².
    comfortable_deceleration:
        Comfortable braking ``b`` (positive), m/s².
    minimum_gap:
        Jam distance ``s0``, meters.
    exponent:
        Acceleration exponent ``δ``.
    """

    desired_speed: float = 30.0
    time_headway: float = 1.5
    max_acceleration: float = 1.4
    comfortable_deceleration: float = 2.0
    minimum_gap: float = 2.0
    exponent: float = 4.0

    def __post_init__(self) -> None:
        for name in (
            "desired_speed",
            "time_headway",
            "max_acceleration",
            "comfortable_deceleration",
            "minimum_gap",
        ):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(f"{name} must be positive")
        if self.exponent <= 0.0:
            raise ConfigurationError("exponent must be positive")


class IntelligentDriverModel:
    """The IDM longitudinal policy.

    Examples
    --------
    >>> idm = IntelligentDriverModel()
    >>> free_road = idm.acceleration(speed=10.0, gap=None, lead_speed=None)
    >>> free_road > 0.0
    True
    """

    def __init__(self, params: Optional[IDMParameters] = None):
        self.params = params if params is not None else IDMParameters()

    def desired_gap(self, speed: float, approach_rate: float) -> float:
        """The dynamic desired gap ``s*``."""
        p = self.params
        interaction = (
            speed
            * approach_rate
            / (2.0 * math.sqrt(p.max_acceleration * p.comfortable_deceleration))
        )
        return max(0.0, p.minimum_gap + speed * p.time_headway + interaction)

    def acceleration(
        self,
        speed: float,
        gap: Optional[float],
        lead_speed: Optional[float],
    ) -> float:
        """IDM acceleration for the current situation.

        Parameters
        ----------
        speed:
            Own speed ``v``, m/s.
        gap:
            Bumper-to-bumper gap ``s`` to the leader, meters; None on a
            free road.
        lead_speed:
            Leader speed, m/s; required when ``gap`` is given.
        """
        if speed < 0.0:
            raise ValueError(f"speed must be >= 0, got {speed}")
        p = self.params
        free_term = 1.0 - (speed / p.desired_speed) ** p.exponent
        if gap is None:
            return p.max_acceleration * free_term
        if lead_speed is None:
            raise ValueError("lead_speed is required when a gap is given")
        if gap <= 0.0:
            # Already overlapping: demand maximal braking.
            return -p.comfortable_deceleration * 4.0
        approach_rate = speed - lead_speed
        s_star = self.desired_gap(speed, approach_rate)
        interaction_term = (s_star / gap) ** 2
        return p.max_acceleration * (free_term - interaction_term)


class IDMFollowerController:
    """IDM as a drop-in follower controller for the simulation engine.

    Produces the same :class:`~repro.vehicle.acc.ACCStepResult` the ACC
    stack produces, so the engine (and the defense pipeline in front of
    it) is policy-agnostic.  The IDM acceleration command is tracked
    through the same Eqn 14 lower-level loop as the ACC, so the
    comparison between the two upper-level policies is apples-to-apples.

    This is the "plain IDM" the paper *enhanced* with the hierarchical
    ACC architecture — keeping it runnable lets the follower-policy
    bench quantify what the enhancement buys under attack.
    """

    #: Defaults adapted to the 1 Hz control period of the case study:
    #: the textbook s0 = 2 m / T = 1.5 s leaves no room for the one-step
    #: actuation latency when stopping behind a halting leader.
    DEFAULT_PARAMS = IDMParameters(minimum_gap=4.0, time_headway=2.0)

    def __init__(self, params: Optional[IDMParameters] = None, acc_params=None):
        from repro.vehicle.params import ACCParameters
        from repro.vehicle.lower_controller import LowerLevelController

        self.idm = IntelligentDriverModel(
            params if params is not None else self.DEFAULT_PARAMS
        )
        self.acc_params = acc_params if acc_params is not None else ACCParameters()
        self.lower = LowerLevelController(self.acc_params)

    @property
    def actual_acceleration(self) -> float:
        """The plant's current acceleration."""
        return self.lower.actual_acceleration

    def step(self, follower_speed: float, measurement, accel_filter=None):
        """One control period; mirrors :meth:`ACCSystem.step`.

        ``accel_filter``, when given, clamps the saturated IDM command
        before the lower-level loop — same contract as the ACC stack's
        hook, so the safety filter is policy-agnostic.
        """
        from repro.vehicle.acc import ACCStepResult
        from repro.vehicle.upper_controller import ControlMode, UpperLevelOutput

        p = self.idm.params
        if measurement is None:
            command = self.idm.acceleration(follower_speed, None, None)
            mode = ControlMode.SPEED
            desired_distance = p.minimum_gap + follower_speed * p.time_headway
            clearance_error = float("inf")
            spacing_command = None
        else:
            gap, relative_velocity = measurement
            lead_speed = max(0.0, follower_speed + relative_velocity)
            command = self.idm.acceleration(follower_speed, gap, lead_speed)
            mode = ControlMode.SPACING
            desired_distance = self.idm.desired_gap(
                follower_speed, follower_speed - lead_speed
            )
            clearance_error = gap - desired_distance
            spacing_command = command
        saturated = min(
            self.acc_params.max_acceleration,
            max(self.acc_params.min_acceleration, command),
        )
        upper = UpperLevelOutput(
            desired_acceleration=saturated,
            mode=mode,
            desired_distance=desired_distance,
            clearance_error=clearance_error,
            speed_command=self.idm.acceleration(follower_speed, None, None),
            spacing_command=spacing_command,
            desired_velocity=follower_speed
            + saturated * self.acc_params.sample_period,
        )
        command = saturated if accel_filter is None else accel_filter(saturated)
        actual, actuation = self.lower.step(command)
        return ACCStepResult(
            actual_acceleration=actual, upper=upper, actuation=actuation
        )

    def reset(self, acceleration: float = 0.0) -> None:
        """Reset the plant acceleration state."""
        self.lower.reset(acceleration)
