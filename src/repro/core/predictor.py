"""RLS-based forecasting of sensor channels during an attack (paper §5.3).

While the sensor is trusted, a :class:`ChannelPredictor` feeds every
measurement through Algorithm 1, continuously refining a local model of
the channel.  Once the CRA detector flags an attack, the corrupted
stream is ignored and the predictor *forecasts* the channel from the
frozen weights — for a polynomial basis by evaluating the fitted trend
at the future time, for an AR basis by rolling the one-step predictor
forward on its own outputs.

:class:`RadarChannelEstimator` bundles two predictors for the radar's
two channels (distance and relative velocity).
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from repro.core.regressors import PolynomialBasis, RegressorBasis
from repro.core.rls import RLSEstimator
from repro.exceptions import EstimatorNotTrainedError
from repro.types import RadarMeasurement

__all__ = [
    "Forecaster",
    "ChannelPredictor",
    "MeasurementEstimator",
    "RadarChannelEstimator",
]


class Forecaster(ABC):
    """Common interface of all channel forecasters (RLS and baselines).

    A forecaster is *trained online* with :meth:`observe` while the
    sensor is trusted and *queried* with :meth:`forecast` while it is
    not.  Implementations must tolerate interleaved observe/forecast
    calls (attacks can end and restart).
    """

    @abstractmethod
    def observe(self, time: float, value: float) -> None:
        """Ingest one trusted sample."""

    @abstractmethod
    def forecast(self, time: float) -> float:
        """Predict the channel value at ``time`` (>= last observed time)."""

    @property
    @abstractmethod
    def trained(self) -> bool:
        """True once enough samples have been observed to forecast."""


class ChannelPredictor(Forecaster):
    """RLS forecaster for one scalar sensor channel.

    Parameters
    ----------
    basis:
        Regressor construction; defaults to a linear trend
        (``PolynomialBasis(degree=1)``), which extrapolates the
        recent slope of the channel — with exponential forgetting this
        behaves like a local linear fit.
    forgetting:
        Algorithm 1's ``λ``; smaller values weight recent samples more.
    delta:
        Initial correlation scale ``P_0 = δ I``.  The paper uses δ = 1,
        which acts as a ridge prior shrinking the fitted trend toward
        zero and biases long-horizon forecasts; the larger default
        follows Haykin's high-SNR guidance (see DESIGN.md).
    time_scale:
        Normalization constant for polynomial time regressors, seconds.
    sample_period:
        Spacing used when rolling AR forecasts forward, seconds.
    min_training_samples:
        Observations required before :attr:`trained` turns True.
    adaptive_forgetting:
        Variable-forgetting-factor RLS: when a sample's a-priori error
        is large relative to the running residual level (a regime
        change — e.g. the leader starts emergency braking), the
        per-step ``λ`` is reduced toward ``min_forgetting`` so the old
        regime's data is flushed quickly.  With well-behaved residuals
        the effective ``λ`` stays at the configured value, so the
        paper's stationary scenarios are unaffected.
    min_forgetting:
        Floor of the adaptive per-step ``λ``.
    """

    def __init__(
        self,
        basis: Optional[RegressorBasis] = None,
        forgetting: float = 0.95,
        delta: float = 100.0,
        time_scale: float = 100.0,
        sample_period: float = 1.0,
        min_training_samples: int = 5,
        adaptive_forgetting: bool = False,
        min_forgetting: float = 0.5,
    ):
        if time_scale <= 0.0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        if sample_period <= 0.0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        if min_training_samples < 1:
            raise ValueError(
                f"min_training_samples must be >= 1, got {min_training_samples}"
            )
        if not 0.0 < min_forgetting <= forgetting:
            raise ValueError(
                f"min_forgetting must lie in (0, forgetting], got {min_forgetting}"
            )
        self.basis = basis if basis is not None else PolynomialBasis(degree=1)
        self.adaptive_forgetting = bool(adaptive_forgetting)
        self.min_forgetting = float(min_forgetting)
        self.rls = RLSEstimator(
            n_params=self.basis.n_params, forgetting=forgetting, delta=delta
        )
        self.time_scale = float(time_scale)
        self.sample_period = float(sample_period)
        self.min_training_samples = int(min_training_samples)
        self._history: List[Tuple[float, float]] = []
        self._reference_time: Optional[float] = None
        self._rollout: List[Tuple[float, float]] = []
        self._residual_variance = 0.0

    # ------------------------------------------------------------------

    def _normalize(self, time: float) -> float:
        reference = self._reference_time if self._reference_time is not None else time
        return (time - reference) / self.time_scale

    @property
    def trained(self) -> bool:
        return (
            len(self._history) >= self.min_training_samples
            and self.rls.n_updates >= self.min_training_samples
        )

    @property
    def last_observation(self) -> Optional[Tuple[float, float]]:
        """Most recent trusted ``(time, value)``, or None."""
        return self._history[-1] if self._history else None

    @property
    def residual_std(self) -> float:
        """Exponentially-weighted one-step residual standard deviation."""
        return float(np.sqrt(max(0.0, self._residual_variance)))

    def observe(self, time: float, value: float) -> None:
        """Feed one trusted sample through Algorithm 1."""
        if self._reference_time is None:
            self._reference_time = time
        regressor = self.basis.regressor(self._normalize(time), self._history)
        # AR bases cannot form a regressor until enough history exists;
        # the sample still extends the history for later regressors.
        if regressor is not None:
            step_forgetting = self._step_forgetting(regressor, value)
            warmed_up = self.rls.n_updates >= self.min_training_samples
            step = self.rls.update(regressor, value, forgetting=step_forgetting)
            # Exponentially-weighted residual variance; feeds the
            # forecast-uncertainty estimate in prediction_std().  The
            # convergence transient (w0 = 0 prior) is excluded — its
            # huge early errors would otherwise inflate the residual
            # level for hundreds of samples.
            if warmed_up:
                lam = self.rls.forgetting
                self._residual_variance = lam * self._residual_variance + (
                    1.0 - lam
                ) * (step.error * step.error)
        self._history.append((time, value))
        self._rollout = []  # trusted data invalidates any rollout cache

    def _step_forgetting(self, regressor, value: float) -> Optional[float]:
        """Per-step ``λ`` for variable-forgetting-factor adaptation.

        ``λ_k = max(λ_min, λ0 · exp(-(e / 3σ̂)²))`` — unity factor for
        in-noise errors, sharp memory dump for multi-sigma surprises.
        Returns None (use the configured λ) when adaptation is off or
        no residual level is established yet.
        """
        if not self.adaptive_forgetting:
            return None
        if self.rls.n_updates < self.min_training_samples:
            return None
        sigma = self.residual_std
        if sigma <= 1e-12:
            return None
        error = value - self.rls.predict(regressor)
        normalized = error / (3.0 * sigma)
        ratio = normalized * normalized
        factor = float(np.exp(-min(50.0, ratio)))
        return max(self.min_forgetting, self.rls.forgetting * factor)

    def forecast(self, time: float) -> float:
        """Predict the channel at ``time`` from the frozen weights.

        For history-free bases this evaluates the fitted trend directly;
        for AR bases the one-step predictor is rolled forward in
        ``sample_period`` steps, feeding predictions back as inputs.
        """
        if not self.trained:
            raise EstimatorNotTrainedError(
                f"forecast at t={time} requested after only "
                f"{len(self._history)} observations "
                f"(need {self.min_training_samples})"
            )
        if not self.basis.uses_history:
            regressor = self.basis.regressor(self._normalize(time), self._history)
            return self.rls.predict(regressor)

        # Roll the AR predictor forward on a synthetic history that
        # starts from the real one and accumulates its own predictions.
        return self._forecast_ar(time)

    def _forecast_ar(self, time: float) -> float:
        if not self._rollout:
            self._rollout = list(self._history)
        tolerance = 1e-9
        while self._rollout[-1][0] + tolerance < time:
            next_time = self._rollout[-1][0] + self.sample_period
            regressor = self.basis.regressor(self._normalize(next_time), self._rollout)
            if regressor is None:
                raise EstimatorNotTrainedError(
                    "insufficient history to roll the AR predictor forward"
                )
            self._rollout.append((next_time, self.rls.predict(regressor)))
        return self._rollout[-1][1]

    def prediction_std(self, time: float) -> float:
        """Standard deviation of the forecast at ``time``.

        Uses the RLS uncertainty propagation ``σ̂² h(t)ᵀ P h(t)`` with
        the exponentially-weighted residual variance ``σ̂²`` — for a
        polynomial basis this grows with the extrapolation horizon,
        which is what safety margins on long forecasts need.

        The variance scale is floored at 1: ``hᵀPh`` measures the
        *estimation* variance assuming the model class is right, which
        goes to zero with data; after a regime change the model is
        *biased* and keeps mispredicting by about one residual standard
        deviation per step, so ``σ̂`` itself is the honest floor.

        Only defined for history-free bases (an AR rollout compounds its
        own predictions and has no closed-form variance here); returns
        0.0 for history-dependent bases.
        """
        if not self.trained:
            raise EstimatorNotTrainedError("no trained model to assess")
        if self.basis.uses_history:
            return 0.0
        regressor = self.basis.regressor(self._normalize(time), self._history)
        h = np.asarray(regressor, dtype=float).reshape(-1)
        P = self.rls.correlation
        if h.shape[0] == 2:
            # Component-wise quadratic form hᵀ P h — fixed association,
            # no BLAS/FMA, mirrored exactly by the vectorized engine.
            u0 = h[0] * P[0, 0] + h[1] * P[1, 0]
            u1 = h[0] * P[0, 1] + h[1] * P[1, 1]
            scale = float(u0 * h[0] + u1 * h[1])
        else:
            scale = float(h @ P @ h)
        return float(np.sqrt(max(0.0, self._residual_variance * max(scale, 1.0))))


class MeasurementEstimator(ABC):
    """Interface of the estimator block of Figure 1.

    Consumes trusted :class:`~repro.types.RadarMeasurement` samples and,
    on demand, produces the ``(d̂, Δv̂)`` estimates that feed the
    upper-level controller during an attack.  Implementations may use
    the trusted follower speed (the paper assumes ``v_F`` is measured by
    an unattacked sensor); ones that do not simply ignore it.

    ``snapshot``/``restore`` support the pipeline's rollback of
    unauthenticated training data: the pipeline snapshots the estimator
    at every *clean* challenge response and, when an attack is detected,
    rolls back to the last authenticated state (samples between the last
    clean challenge and the detection may already be corrupted).
    """

    @property
    @abstractmethod
    def trained(self) -> bool:
        """True once the estimator can forecast."""

    @abstractmethod
    def observe(
        self, measurement: RadarMeasurement, follower_speed: Optional[float] = None
    ) -> None:
        """Ingest one trusted measurement."""

    @abstractmethod
    def forecast(
        self, time: float, follower_speed: Optional[float] = None
    ) -> Tuple[float, float]:
        """Estimated ``(distance, relative_velocity)`` at ``time``."""

    def snapshot(self) -> object:
        """Capture the estimator state (default: deep copy of ``self``)."""
        return copy.deepcopy(self.__dict__)

    def restore(self, snapshot: object) -> None:
        """Roll back to a previously captured state."""
        self.__dict__ = copy.deepcopy(snapshot)  # type: ignore[assignment]


class RadarChannelEstimator(MeasurementEstimator):
    """Independent per-channel forecasters — the paper's literal §5.3.

    Each radar channel (distance, relative velocity) is modelled by its
    own Algorithm 1 RLS forecaster, with no physical coupling between
    them.  Simple and faithful to the text, but open-loop during the
    attack: see :mod:`repro.core.dead_reckoning` for the failure mode on
    long attacks and the coupled alternative.
    """

    def __init__(
        self,
        distance_predictor: Optional[Forecaster] = None,
        velocity_predictor: Optional[Forecaster] = None,
    ):
        self.distance_predictor = (
            distance_predictor if distance_predictor is not None else ChannelPredictor()
        )
        self.velocity_predictor = (
            velocity_predictor if velocity_predictor is not None else ChannelPredictor()
        )

    @property
    def trained(self) -> bool:
        """True when both channels can forecast."""
        return self.distance_predictor.trained and self.velocity_predictor.trained

    def observe(
        self, measurement: RadarMeasurement, follower_speed: Optional[float] = None
    ) -> None:
        """Ingest one trusted measurement into both channels."""
        self.distance_predictor.observe(measurement.time, measurement.distance)
        self.velocity_predictor.observe(
            measurement.time, measurement.relative_velocity
        )

    def forecast(
        self, time: float, follower_speed: Optional[float] = None
    ) -> Tuple[float, float]:
        """Estimated ``(distance, relative_velocity)`` at ``time``."""
        return (
            self.distance_predictor.forecast(time),
            self.velocity_predictor.forecast(time),
        )
