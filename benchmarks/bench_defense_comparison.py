"""Extension bench — head-to-head comparison of the defense strategies.

The paper defends with detection (CRA) + RLS estimation.  The defense
track (`repro.defense`, docs/defenses.md) adds two structurally
different layers: sliding-window **secure state reconstruction**
(Fawzi/Chong-style subset search with an uncertainty margin) and a
control-barrier **safety filter** that clamps the commanded
acceleration against a physics-certified gap track.  This bench runs
every strategy on all four figure panels and asserts the shape claims:

* the undefended follower collides on every panel whose attack is
  load-bearing (fig2a, fig2b, fig3a);
* dead reckoning, secure reconstruction, the safety filter and the
  combined strategy keep the follower collision-free on **every**
  panel;
* the safety filter with the challenge schedule emptied — detection
  never fires, the spoofed measurements go straight to the controller —
  still prevents the DoS collisions (the actuation-layer guarantee
  does not depend on detection), while the fig2b slow-ramp delay spoof
  defeats it: a below-physical-rate offset is indistinguishable from a
  real leader drifting, which is exactly why detection remains
  necessary (the documented residual exposure);
* the paper's literal per-channel RLS under-performs dead reckoning on
  the constant-deceleration panels (the known polynomial-extrapolation
  collapse that motivated the dead-reckoning default).

The full table is written to ``BENCH_defense.json`` at the repo root
(committed, like ``BENCH_sweep.json``) so defense regressions show up
in review diffs.
"""

import json
from pathlib import Path

from conftest import emit
from repro import fig2_scenario, fig3_scenario
from repro.analysis import render_table
from repro.analysis.defense_comparison import compare_defenses

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_defense.json"

PANELS = (
    ("fig2a", fig2_scenario, "dos"),
    ("fig2b", fig2_scenario, "delay"),
    ("fig3a", fig3_scenario, "dos"),
    ("fig3b", fig3_scenario, "delay"),
)

#: Strategies that must keep every panel collision-free.
SAFE_EVERYWHERE = (
    "dead_reckoning",
    "secure_reconstruction",
    "safety_filter",
    "combined",
)


def bench_defense_comparison(benchmark):
    def build():
        tables = {}
        for panel, factory, attack in PANELS:
            tables[panel] = compare_defenses(factory(attack))
        return tables

    tables = benchmark.pedantic(build, rounds=1, iterations=1)

    by_defense = {
        panel: {row["defense"]: row for row in rows}
        for panel, rows in tables.items()
    }

    # The attacks are load-bearing: undefended runs collide wherever the
    # paper shows a crash (fig3b's delay spoof alone is survivable).
    for panel in ("fig2a", "fig2b", "fig3a"):
        assert by_defense[panel]["undefended"]["collided"], panel

    # Every full defense strategy keeps every panel collision-free, and
    # comfortably clear of the filter's 5 m standstill margin.
    for panel, rows in by_defense.items():
        for label in SAFE_EVERYWHERE:
            row = rows[label]
            assert not row["collided"], (panel, label)
            assert row["min_gap_m"] > 5.0, (panel, label)

    # Actuation-layer guarantee: with detection disabled the safety
    # filter still defeats the DoS attacks outright...
    for panel in ("fig2a", "fig3a"):
        row = by_defense[panel]["safety_filter (detection off)"]
        assert row["detection_s"] is None, panel
        assert not row["collided"], panel
        assert row["min_gap_m"] > 5.0, panel
    # ...while the fig2b slow-ramp delay spoof defeats the filter alone
    # (physically-plausible drift; needs detection) — and detection
    # plus the filter survives it.
    assert by_defense["fig2b"]["safety_filter (detection off)"]["collided"]
    assert not by_defense["fig2b"]["safety_filter"]["collided"]

    # The known per-channel RLS collapse on long constant-deceleration
    # attacks — the contrast that motivates the dead-reckoning default.
    assert by_defense["fig2a"]["rls"]["collided"]
    assert not by_defense["fig3a"]["rls"]["collided"]

    record = {
        "panels": tables,
        "safe_everywhere": list(SAFE_EVERYWHERE),
    }
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    for panel, rows in tables.items():
        emit(
            f"defense_comparison_{panel}",
            render_table(rows, title=f"Defense comparison — {panel}"),
        )
