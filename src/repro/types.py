"""Shared typed containers used across the library.

These are small, immutable-by-convention dataclasses that move data
between the radar chain, the attack models, the detection/estimation
pipeline and the vehicle simulation.  Keeping them in one module avoids
import cycles between the subpackages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "SensorStatus",
    "RadarMeasurement",
    "Timestamped",
    "TimeSeries",
    "DetectionEvent",
    "AttackLabel",
]


class SensorStatus(Enum):
    """Provenance of a radar measurement as seen by the receiving unit.

    The receiver itself can only distinguish ``CHALLENGE`` instants (it
    knows when it suppressed the probe); ``NOMINAL``/``ATTACKED`` labels
    exist so tests and metrics can compare against ground truth.
    """

    NOMINAL = "nominal"
    CHALLENGE = "challenge"
    ATTACKED = "attacked"


class AttackLabel(Enum):
    """Ground-truth label of what corrupted a measurement, for metrics."""

    NONE = "none"
    DOS = "dos"
    DELAY = "delay"


@dataclass(frozen=True)
class RadarMeasurement:
    """One sampled output of the radar receiver at discrete time ``k``.

    Attributes
    ----------
    time:
        Discrete sample time in seconds.
    distance:
        Measured distance to the target, meters.
    relative_velocity:
        Measured closing speed ``v_L - v_F``, m/s (positive = opening).
    beat_freq_up, beat_freq_down:
        The two beat frequencies (Eqns 5-6 of the paper) the distance and
        velocity were derived from, hertz.  ``0.0`` when the measurement
        was produced by the equation-fidelity path without an explicit
        beat-frequency stage.
    received_power:
        Echo power at the receiver per the radar range equation, watts.
    status:
        Whether this sample fell on a CRA challenge instant.
    """

    time: float
    distance: float
    relative_velocity: float
    beat_freq_up: float = 0.0
    beat_freq_down: float = 0.0
    received_power: float = 0.0
    status: SensorStatus = SensorStatus.NOMINAL

    def is_zero_output(self, tolerance: float) -> bool:
        """Return True if the receiver output is (numerically) zero.

        At a challenge instant an unattacked radar hears only thermal
        noise; both derived measurements sit below ``tolerance``.
        """
        return abs(self.distance) <= tolerance and abs(self.relative_velocity) <= tolerance


@dataclass(frozen=True)
class Timestamped:
    """A scalar value paired with its sample time."""

    time: float
    value: float


@dataclass
class TimeSeries:
    """A named, uniformly indexed scalar series with list-building helpers.

    A thin wrapper over two parallel lists; ``as_arrays`` hands the data
    to numpy consumers.  Used by the simulation engine to record traces.
    """

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Record ``value`` at ``time``; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r} must be appended in order: "
                f"{time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(times, values)`` as float arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def value_at(self, time: float, tolerance: float = 1e-9) -> float:
        """Return the value recorded at ``time`` (exact match within tol)."""
        times = np.asarray(self.times, dtype=float)
        idx = np.nonzero(np.abs(times - time) <= tolerance)[0]
        if idx.size == 0:
            raise KeyError(f"no sample at time {time} in series {self.name!r}")
        return self.values[int(idx[0])]

    def window(self, start: float, stop: float) -> "TimeSeries":
        """Return the sub-series with ``start <= t <= stop``."""
        out = TimeSeries(name=self.name)
        for t, v in zip(self.times, self.values):
            if start <= t <= stop:
                out.append(t, v)
        return out


@dataclass(frozen=True)
class DetectionEvent:
    """Outcome of the CRA detector at one challenge instant.

    Attributes
    ----------
    time:
        Challenge instant, seconds.
    attack_detected:
        True when the receiver produced a non-zero output at a time the
        probe was suppressed.
    receiver_output:
        Magnitude of the receiver output the verdict was based on.
    """

    time: float
    attack_detected: bool
    receiver_output: float


def as_float_array(values: Sequence[float]) -> np.ndarray:
    """Coerce a sequence to a 1-D float64 array (shared helper)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D sequence, got shape {arr.shape}")
    return arr
