#!/usr/bin/env python
"""Platoon extension: one compromised radar in a 4-vehicle ACC string.

Extends the paper's two-vehicle case study to a platoon.  A jammer on
the lead vehicle attacks the first follower's radar at k = 182 s.
Undefended, that vehicle rear-ends the leader and the disturbance
whiplashes down the chain; with the CRA+RLS defense on just the attacked
vehicle, the entire string stays safe.
"""

from repro import AttackWindow, DoSJammingAttack
from repro.analysis import ascii_plot, render_table
from repro.simulation import PlatoonScenario, PlatoonSimulation
from repro.vehicle import ConstantAccelerationProfile


def make_scenario(defended=()):
    return PlatoonScenario(
        leader_profile=ConstantAccelerationProfile(-0.1082),
        n_followers=4,
        attack=DoSJammingAttack(AttackWindow(182.0, 300.0)),
        attacked_follower=0,
        defended_followers=defended,
    )


def main() -> None:
    clean = PlatoonSimulation(make_scenario(), attack_enabled=False).run()
    attacked = PlatoonSimulation(make_scenario(), attack_enabled=True).run()
    defended = PlatoonSimulation(
        make_scenario(defended=(0,)), attack_enabled=True
    ).run()

    rows = []
    for i in range(4):
        rows.append(
            {
                "follower": i,
                "clean_min_gap_m": round(clean.min_gap(i), 1),
                "attacked_min_gap_m": round(attacked.min_gap(i), 1),
                "defended_min_gap_m": round(defended.min_gap(i), 1),
            }
        )
    print(render_table(rows, title="Minimum true gap per follower"))
    print()

    times = defended.traces["gap_0"].as_arrays()[0]
    window = times >= 150.0
    print(
        ascii_plot(
            {
                f"gap {i}": (times[window], defended.gap(i)[window])
                for i in range(4)
            },
            title="Defended platoon: true gaps (attack on follower 0 at 182 s)",
            y_label="m",
            width=100,
            height=18,
        )
    )
    print()
    detections = [e.time for e in defended.detection_events if e.attack_detected]
    print(f"Attacked vehicle detects the jamming at k = {detections[0]:.0f} s and")
    print("switches to RLS estimates; downstream vehicles never notice.")


if __name__ == "__main__":
    main()
