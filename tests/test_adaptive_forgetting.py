"""Variable-forgetting-factor RLS and validated quarantine replay."""

import numpy as np
import pytest

from repro.core import ChannelPredictor, DeadReckoningEstimator
from repro.types import RadarMeasurement


def measurement(k, d, dv):
    return RadarMeasurement(time=float(k), distance=d, relative_velocity=dv)


def regime_change_series(n_before=120, n_after=15, level=29.0, slope_after=-1.0, noise=0.12, seed=0):
    """Constant channel, then a sharp ramp (emergency braking)."""
    rng = np.random.default_rng(seed)
    values = []
    for k in range(n_before + n_after):
        value = level if k < n_before else level + slope_after * (k - n_before)
        values.append((float(k), value + rng.normal(0, noise)))
    return values


class TestVariableForgetting:
    def test_adaptive_tracks_regime_change_faster(self):
        fixed = ChannelPredictor(forgetting=0.95, adaptive_forgetting=False)
        adaptive = ChannelPredictor(forgetting=0.95, adaptive_forgetting=True)
        for t, v in regime_change_series():
            fixed.observe(t, v)
            adaptive.observe(t, v)
        horizon = 140.0  # 5 steps past the last sample
        truth = 29.0 - 1.0 * (140 - 120)
        assert abs(adaptive.forecast(horizon) - truth) < abs(
            fixed.forecast(horizon) - truth
        )
        assert abs(adaptive.forecast(horizon) - truth) < 3.0

    def test_adaptive_matches_fixed_on_stationary_data(self):
        rng = np.random.default_rng(1)
        fixed = ChannelPredictor(forgetting=0.95, adaptive_forgetting=False)
        adaptive = ChannelPredictor(forgetting=0.95, adaptive_forgetting=True)
        for k in range(150):
            value = 29.06 - 0.1082 * k + rng.normal(0, 0.12)
            fixed.observe(float(k), value)
            adaptive.observe(float(k), value)
        assert adaptive.forecast(200.0) == pytest.approx(
            fixed.forecast(200.0), abs=0.5
        )

    def test_step_forgetting_bounds(self):
        predictor = ChannelPredictor(
            forgetting=0.95, adaptive_forgetting=True, min_forgetting=0.5
        )
        for t, v in regime_change_series():
            predictor.observe(t, v)
            regressor = predictor.basis.regressor(predictor._normalize(t), [])
            lam = predictor._step_forgetting(regressor, v)
            if lam is not None:
                assert 0.5 <= lam <= 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelPredictor(forgetting=0.9, min_forgetting=0.95)
        with pytest.raises(ValueError):
            ChannelPredictor(min_forgetting=0.0)

    def test_per_step_override_in_rls(self):
        from repro.core import RLSEstimator

        rls = RLSEstimator(n_params=1, forgetting=1.0)
        rls.update([1.0], 1.0, forgetting=0.5)
        with pytest.raises(ValueError):
            rls.update([1.0], 1.0, forgetting=0.0)


class TestValidatedQuarantineReplay:
    def make_estimator(self):
        return DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(
                forgetting=0.95, adaptive_forgetting=True
            ),
            margin_gain=0.0,  # isolate the anchor behaviour
        )

    def train(self, estimator, n=100, vF=25.0, vL=27.0, d0=100.0, seed=0):
        rng = np.random.default_rng(seed)
        d = d0
        for k in range(n):
            dv = vL - vF
            estimator.observe(
                measurement(k, d + rng.normal(0, 0.1), dv + rng.normal(0, 0.05)),
                follower_speed=vF,
            )
            d += dv
        return d

    def test_spoofed_quarantine_rejected(self):
        estimator = self.make_estimator()
        vF, vL = 25.0, 27.0
        d = self.train(estimator, vF=vF, vL=vL)
        snap = estimator.snapshot()
        # Quarantined samples carry a +6 m spoof.
        for k in range(100, 104):
            estimator.observe(
                measurement(k, d + 6.0, vL - vF), follower_speed=vF
            )
            d += vL - vF
        estimator.restore(snap)
        est_d, _ = estimator.forecast(104.0, follower_speed=vF)
        assert est_d == pytest.approx(d, abs=1.5)  # spoof did not stick

    def test_clean_quarantine_reaccepted_after_regime_change(self):
        estimator = self.make_estimator()
        vF = 25.0
        d = self.train(estimator, vF=vF, vL=27.0)
        # The leader suddenly brakes hard inside the quarantine window.
        snap = estimator.snapshot()
        vL = 27.0
        for k in range(100, 108):
            vL -= 1.5
            dv = vL - vF
            estimator.observe(measurement(k, d, dv), follower_speed=vF)
            d += dv
        estimator.restore(snap)
        est_d, est_dv = estimator.forecast(108.0, follower_speed=vF)
        # The clean quarantined samples re-synchronized the anchor and
        # the leader model despite the regime change.
        assert est_d == pytest.approx(d, abs=3.0)
        assert est_dv == pytest.approx(vL - 1.5 - vF, abs=2.0)
