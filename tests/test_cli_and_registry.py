"""Experiment registry and command-line interface."""

import io
from pathlib import Path

import pytest

from repro.analysis.experiments import REGISTRY, experiments_table, get_experiment
from repro.cli import main

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = {exp.identifier for exp in REGISTRY}
        # Every figure panel and results paragraph of the paper.
        for required in (
            "fig2a",
            "fig2b",
            "fig3a",
            "fig3b",
            "results-detection",
            "results-rls-runtime",
            "jammer-feasibility",
        ):
            assert required in ids

    def test_every_bench_file_exists(self):
        for exp in REGISTRY:
            assert (BENCH_DIR / exp.bench).is_file(), f"{exp.bench} missing"

    def test_every_bench_file_is_registered(self):
        registered = {exp.bench for exp in REGISTRY}
        on_disk = {p.name for p in BENCH_DIR.glob("bench_*.py")}
        assert on_disk == registered

    def test_get_experiment(self):
        exp = get_experiment("fig2a")
        assert "DoS" in exp.title
        assert exp.kind == "figure"

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="fig2a"):
            get_experiment("fig9z")

    def test_paper_claims_present_for_paper_artifacts(self):
        for exp in REGISTRY:
            if exp.kind in ("figure", "table"):
                assert exp.paper_claim

    def test_table_rendering(self):
        text = experiments_table()
        assert "fig2a" in text
        assert "bench_fig2a_dos_constant_decel.py" in text

    def test_table_filtering(self):
        text = experiments_table(kind="ablation")
        assert "ablation-forgetting" in text
        assert "fig2a" not in text


class TestCLI:
    def run_cli(self, argv):
        out = io.StringIO()
        code = main(argv, out=out, err=io.StringIO())
        return code, out.getvalue()

    def run_cli_streams(self, argv):
        """Like run_cli but also returns the diagnostics stream."""
        out, err = io.StringIO(), io.StringIO()
        code = main(argv, out=out, err=err)
        return code, out.getvalue(), err.getvalue()

    def test_list(self):
        code, text = self.run_cli(["list"])
        assert code == 0
        assert "fig2a" in text
        assert "platoon-string-stability" in text

    def test_run_figure(self):
        code, text = self.run_cli(["run", "fig2a", "--no-plot", "--seed", "7"])
        assert code == 0
        assert "detection at k = 182 s" in text
        assert "0 FP / 0 FN" in text

    def test_run_figure_with_plot(self):
        code, text = self.run_cli(["run", "fig2b"])
        assert code == 0
        assert "radar distance" in text
        assert "estimated" in text

    def test_run_non_figure_points_to_bench(self):
        code, text = self.run_cli(["run", "jammer-feasibility"])
        assert code == 0
        assert "pytest benchmarks/bench_jammer_feasibility.py" in text

    def test_run_unknown_experiment_diagnoses_on_stderr(self):
        code, out, err = self.run_cli_streams(["run", "fig9z"])
        assert code == 2
        assert out == ""  # stdout stays clean for pipelines
        assert "unknown experiment" in err

    def test_report(self):
        code, text = self.run_cli(["report"])
        assert code == 0
        assert "fig3b" in text
        assert "Paper-vs-measured" in text

    def test_run_figure_workers_output_identical(self):
        code1, serial = self.run_cli(["run", "fig2a", "--no-plot"])
        code2, parallel = self.run_cli(
            ["run", "fig2a", "--no-plot", "--workers", "2"]
        )
        assert code1 == code2 == 0
        assert serial == parallel

    def test_workers_flag_on_report(self):
        code, text = self.run_cli(["report", "--workers", "2"])
        assert code == 0
        assert "Paper-vs-measured" in text

    def test_invalid_workers_rejected_at_parse_time(self, capsys):
        for bad in ("0", "-3", "two"):
            with pytest.raises(SystemExit) as excinfo:
                main(["run", "fig2a", "--workers", bad])
            assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_workers_flag_on_run_custom(self, tmp_path):
        from repro import fig2_scenario
        from repro.simulation import save_scenario

        path = save_scenario(fig2_scenario("dos"), tmp_path / "spec.json")
        code, text = self.run_cli(["run-custom", str(path), "--workers", "2"])
        assert code == 0
        assert "detection at k = 182 s" in text

    def test_run_custom_bad_spec_keeps_stdout_empty(self, tmp_path):
        """Regression: spec-load failures used to pollute stdout."""
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, out, err = self.run_cli_streams(["run-custom", str(bad)])
        assert code == 2
        assert out == ""
        assert "could not load" in err and str(bad) in err

    def test_run_custom_missing_spec_keeps_stdout_empty(self, tmp_path):
        code, out, err = self.run_cli_streams(
            ["run-custom", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert out == ""
        assert "could not load" in err

    def test_profile_flag_prints_stage_table(self, tmp_path):
        from repro import fig2_scenario
        from repro.simulation import save_scenario

        path = save_scenario(
            fig2_scenario("dos", horizon=20.0), tmp_path / "spec.json"
        )
        code, out, err = self.run_cli_streams(
            ["run-custom", str(path), "--profile"]
        )
        assert code == 0
        assert "telemetry: per-stage timing" in out
        for stage in ("engine.sense", "engine.estimate", "engine.control",
                      "batch.run", "facade.run"):
            assert stage in out
        assert "telemetry: counters" in out

    def test_trace_flag_writes_jsonl_and_trace_commands_read_it(
        self, tmp_path
    ):
        import json

        from repro import fig2_scenario
        from repro.simulation import save_scenario

        spec = save_scenario(
            fig2_scenario("dos", horizon=20.0), tmp_path / "spec.json"
        )
        trace = tmp_path / "trace.jsonl"
        code, out, err = self.run_cli_streams(
            ["run-custom", str(spec), "--trace", str(trace)]
        )
        assert code == 0
        assert "telemetry" not in out  # table only with --profile
        assert str(trace) in err
        lines = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line.strip()
        ]
        assert any(r.get("name") == "batch.run" for r in lines)
        assert lines[-1]["kind"] == "counters"

        code, out, _ = self.run_cli_streams(["trace", "summary", str(trace)])
        assert code == 0
        assert "batch.run" in out

        dest = tmp_path / "summary.json"
        code, out, _ = self.run_cli_streams(
            ["trace", "export", str(trace), str(dest)]
        )
        assert code == 0
        document = json.loads(dest.read_text())
        assert {"trace", "events", "spans", "counters"} <= set(document)
        assert any(s["name"] == "engine.sense" for s in document["spans"])

    def test_trace_summary_missing_file_diagnoses_on_stderr(self, tmp_path):
        code, out, err = self.run_cli_streams(
            ["trace", "summary", str(tmp_path / "missing.jsonl")]
        )
        assert code == 2
        assert out == ""
        assert "could not read trace" in err

    def test_trace_summary_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind":"span"\nnot json\n')
        code, out, err = self.run_cli_streams(["trace", "summary", str(bad)])
        assert code == 2
        assert out == ""
        assert "not valid JSON" in err
