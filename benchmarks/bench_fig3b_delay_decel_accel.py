"""Figure 3b — delay-injection attack, decel-then-accel leader.

In this panel the real gap is opening when the attack starts, so the
+6 m spoof does not cause a collision even undefended — but it still
shrinks the safety margin relative to the clean run, and the CRA
detector still catches the replay at k = 182 s (zero FN even for the
stealthiest panel).
"""

import numpy as np

from conftest import (
    assert_figure_shape,
    emit,
    figure_ascii,
    figure_series_table,
    figure_summary,
    figure_velocity_table,
)


def bench_fig3b(benchmark, figure_data):
    data = benchmark.pedantic(figure_data, args=("fig3b",), rounds=1, iterations=1)

    assert_figure_shape(data, attacked_should_collide=False)

    # The spoof shrinks the undefended margin but the opening gap saves it.
    assert data.attacked.min_gap() < data.baseline.min_gap()
    assert not data.attacked.collided

    times = data.attacked.times
    mask = (times >= 181.0) & (times <= 190.0)
    offsets = (
        data.attacked.array("measured_distance")[mask]
        - data.attacked.array("true_distance")[mask]
    )
    assert abs(np.median(offsets) - 6.0) < 1.0

    emit(
        "fig3b_delay_decel_accel",
        "\n\n".join(
            [
                "Figure 3b: delay-injection attack (+6 m), leader "
                "decelerates then accelerates (switch at t = 150 s)",
                figure_ascii(data, "distance series (clipped to 260 m)"),
                "Distance series:\n" + figure_series_table(data),
                "Relative-velocity series:\n" + figure_velocity_table(data),
                "Run summaries:\n" + figure_summary(data),
                f"Detection time: k = {data.detection_time():.0f} s "
                "(paper: 182 s)",
            ]
        ),
    )
