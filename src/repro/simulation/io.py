"""Persistence for simulation results (CSV and JSON).

Lets a run's traces leave the process — for external plotting, diffing
two builds of the library, or archiving the regenerated figure data
next to the paper's.  CSV carries the trace matrix (one column per
trace); JSON additionally round-trips the metadata (detection events,
collision time, attack label).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.simulation.results import SimulationResult
from repro.types import DetectionEvent, TimeSeries

__all__ = [
    "export_csv",
    "export_json",
    "load_json",
    "result_to_dict",
    "result_from_dict",
]

PathLike = Union[str, Path]


def result_to_dict(result: SimulationResult) -> dict:
    """A result (traces + metadata) as a JSON-compatible dict.

    The inverse of :func:`result_from_dict`.  Floats survive the JSON
    round trip exactly (``repr``-based shortest representation), so a
    reloaded result is bit-identical to the original — the property the
    run store (:mod:`repro.store`) relies on.
    """
    return {
        "name": result.name,
        "attack_name": result.attack_name,
        "defended": result.defended,
        "defense_stats": result.defense_stats,
        "collision_time": result.collision_time,
        "detection_events": [
            {
                "time": e.time,
                "attack_detected": e.attack_detected,
                "receiver_output": e.receiver_output,
            }
            for e in result.detection_events
        ],
        "traces": {
            name: {"times": series.times, "values": series.values}
            for name, series in result.traces.items()
        },
    }


def result_from_dict(payload: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from its dict form."""
    traces = {}
    for name, data in payload["traces"].items():
        # Bulk-construct rather than append sample-by-sample: the data
        # came from a recorded run, so it is already ordered, and warm
        # cache replays decode thousands of samples per lookup.
        traces[name] = TimeSeries(
            name,
            times=[float(t) for t in data["times"]],
            values=[float(v) for v in data["values"]],
        )
    return SimulationResult(
        name=payload["name"],
        traces=traces,
        detection_events=[
            DetectionEvent(
                time=float(e["time"]),
                attack_detected=bool(e["attack_detected"]),
                receiver_output=float(e["receiver_output"]),
            )
            for e in payload["detection_events"]
        ],
        collision_time=payload["collision_time"],
        attack_name=payload["attack_name"],
        defended=payload["defended"],
        # .get(): payloads written before the field existed lack the key.
        defense_stats=payload.get("defense_stats"),
    )


def export_csv(result: SimulationResult, path: PathLike) -> Path:
    """Write a result's traces as one CSV (``time`` + one column each).

    All traces share the simulation's uniform sample grid, so a single
    rectangular table is lossless.
    """
    path = Path(path)
    names = sorted(result.traces)
    times = result.times
    columns = {name: result.array(name) for name in names}
    for name, values in columns.items():
        if len(values) != len(times):
            raise ValueError(
                f"trace {name!r} has {len(values)} samples, expected {len(times)}"
            )
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", *names])
        for i, t in enumerate(times):
            writer.writerow([t, *(columns[name][i] for name in names)])
    return path


def export_json(result: SimulationResult, path: PathLike) -> Path:
    """Write a result (traces + metadata) as JSON."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result)))
    return path


def load_json(path: PathLike) -> SimulationResult:
    """Reload a result previously written with :func:`export_json`."""
    return result_from_dict(json.loads(Path(path).read_text()))
