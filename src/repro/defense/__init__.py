"""Defense track beyond the paper's RLS substitution.

Two complementary layers:

* :mod:`repro.defense.reconstruction` /
  :mod:`repro.defense.estimator` — secure state reconstruction under
  s-sparse sensor attacks (estimation layer);
* :mod:`repro.defense.safety_filter` — a control-barrier clamp on the
  commanded acceleration (actuation layer).

Select them per scenario through
:attr:`repro.simulation.scenario.DefenseConfig.strategy`.
"""

from repro.defense.estimator import (
    SecureReconstructionEstimator,
    follower_relative_system,
)
from repro.defense.reconstruction import (
    ReconstructionCandidate,
    ReconstructionResult,
    SecureStateReconstruct,
    SSProblem,
)
from repro.defense.safety_filter import SafetyFilter

__all__ = [
    "SSProblem",
    "ReconstructionCandidate",
    "ReconstructionResult",
    "SecureStateReconstruct",
    "SecureReconstructionEstimator",
    "follower_relative_system",
    "SafetyFilter",
]
