"""Radar resolution and ambiguity helpers (repro.radar.equations)."""

import pytest

from repro.radar import FMCWParameters, beat_frequencies
from repro.radar.equations import (
    max_unambiguous_range,
    range_resolution,
    velocity_resolution,
)

PARAMS = FMCWParameters()


class TestResolution:
    def test_lrr2_range_resolution(self):
        # c / (2 * 150 MHz) = 1.0 m.
        assert range_resolution(PARAMS) == pytest.approx(0.999, rel=1e-3)

    def test_range_resolution_scales_inversely_with_bandwidth(self):
        # Doubling the bandwidth needs a faster baseband to stay below
        # Nyquist at max range.
        wide = FMCWParameters(sweep_bandwidth=300e6, sample_rate=512e3)
        assert range_resolution(wide) == pytest.approx(
            range_resolution(PARAMS) / 2.0
        )

    def test_lrr2_velocity_resolution(self):
        # λ / (4 Ts) = 3.89 mm / 8 ms ≈ 0.486 m/s.
        assert velocity_resolution(PARAMS) == pytest.approx(0.486, abs=0.01)

    def test_max_unambiguous_range_exceeds_envelope(self):
        # The sampled baseband must cover the specified 200 m envelope.
        assert max_unambiguous_range(PARAMS) > PARAMS.max_range

    def test_envelope_edge_beat_is_representable(self):
        f_up, f_down = beat_frequencies(PARAMS, max_unambiguous_range(PARAMS) * 0.99, 0.0)
        assert abs(f_up) < PARAMS.sample_rate / 2.0
        assert abs(f_down) < PARAMS.sample_rate / 2.0
