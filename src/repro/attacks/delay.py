"""Delay-injection spoofing attack (paper §4.1; §6.2).

The adversary replays a counterfeit of the radar's reflected signal with
additional physical delay ``τ'``, so the target appears ``c τ' / 2``
meters farther away than it really is.  In the paper's experiment the
spoofed distance is 6 m beyond the truth from ``k = 180 s`` on, which
keeps the ACC from braking and closes the real gap.

Because the counterfeit is generated from *previously observed* probes,
it is still transmitted at CRA challenge instants — the unavoidable
hardware latency the paper's detection argument rests on ("the time
required to carry out the attack is always more than zero").
"""

from __future__ import annotations

from repro.radar.equations import extra_delay_for_distance_offset
from repro.radar.sensor import AttackEffect
from repro.attacks.base import Attack, AttackWindow
from repro.types import AttackLabel

__all__ = ["DelayInjectionAttack"]


class DelayInjectionAttack(Attack):
    """Replay a delayed counterfeit echo while the window is active.

    Parameters
    ----------
    window:
        Activation interval (paper: ``[180, 300]`` seconds).
    distance_offset:
        Apparent extra distance of the counterfeit, meters (paper: 6 m).
    velocity_offset:
        Apparent extra relative velocity, m/s.  Zero by default: the
        counterfeit mimics the true Doppler.
    counterfeit_power_gain:
        Counterfeit-to-echo power ratio (> 1 so the replay captures the
        receiver).
    ramp_time:
        Seconds over which the spoofed offset ramps from 0 to
        ``distance_offset``.  The paper's attack is a step (``0``); a
        slow ramp is the *stealthy* variant that defeats residual
        (χ²) detectors — each per-sample increment hides inside the
        noise floor — while CRA still catches it at the first challenge.
    """

    def __init__(
        self,
        window: AttackWindow,
        distance_offset: float = 6.0,
        velocity_offset: float = 0.0,
        counterfeit_power_gain: float = 4.0,
        ramp_time: float = 0.0,
    ):
        super().__init__(window)
        if distance_offset < 0.0:
            raise ValueError(
                f"distance_offset must be >= 0, got {distance_offset}"
            )
        if counterfeit_power_gain <= 1.0:
            raise ValueError(
                "counterfeit_power_gain must exceed 1 for the replay to "
                f"capture the receiver, got {counterfeit_power_gain}"
            )
        if ramp_time < 0.0:
            raise ValueError(f"ramp_time must be >= 0, got {ramp_time}")
        self.distance_offset = distance_offset
        self.velocity_offset = velocity_offset
        self.counterfeit_power_gain = counterfeit_power_gain
        self.ramp_time = ramp_time

    def offset_at(self, time: float) -> float:
        """The spoofed distance offset in effect at ``time``."""
        if not self.window.contains(time):
            return 0.0
        if self.ramp_time == 0.0:
            return self.distance_offset
        progress = min(1.0, (time - self.window.start) / self.ramp_time)
        return self.distance_offset * progress

    @property
    def label(self) -> AttackLabel:
        return AttackLabel.DELAY

    @property
    def injected_delay(self) -> float:
        """The physical delay ``τ' = 2 Δd / c`` the attacker injects, s."""
        return extra_delay_for_distance_offset(self.distance_offset)

    def _effect(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float = 0.0,
    ) -> AttackEffect:
        return AttackEffect(
            spoof_distance_offset=self.offset_at(time),
            spoof_velocity_offset=self.velocity_offset,
            replace_echo=True,
            counterfeit_power_gain=self.counterfeit_power_gain,
        )
