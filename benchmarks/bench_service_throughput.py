"""Extension bench — sustained throughput of the simulation service.

Runs :class:`repro.service.ServiceApp` in-process on an ephemeral port
against a fresh temporary store and drives it with the package's own
async JSON client (:func:`repro.service.fetch_json`):

* **warm-up** — POSTs 10 unique short-horizon specs to completion,
  populating the store;
* **mixed phase** — 200 blocking requests at a 90% hit ratio: 180
  spread over the 10 warm specs plus 20 over 5 *cold* specs, each cold
  spec POSTed 4x concurrently so single-flight coalescing is load-
  bearing, not incidental;
* **hit phase** — 100 requests over the warm specs only, measuring the
  pure replay path.

Asserts the service tentpole contract:

* coalescing holds the executed-run count at the number of **unique**
  specs (15) across 300+ requests;
* the pure hit path sustains at least ``HIT_RPS_FLOOR`` req/s (each
  request is a full HTTP round-trip plus a SQLite fingerprint lookup —
  no engine execution);
* telemetry counters account for every request
  (hits + misses = requests on ``/v1/runs``).

The measured req/s numbers are written to ``BENCH_service.json`` at
the repo root (committed, like ``BENCH.json``) so throughput is
tracked across revisions.
"""

import asyncio
import json
import platform
import time
from pathlib import Path

from conftest import emit
from repro import fig2_scenario, telemetry
from repro.analysis import render_table
from repro.service import ServiceApp, fetch_json
from repro.simulation.spec import scenario_to_dict
from repro.store import RunStore

#: Floor on the pure cache-hit path. Locally this path sustains
#: hundreds of req/s; the floor only guards against the hit path
#: accidentally acquiring an engine execution or a pool hop.
HIT_RPS_FLOOR = 20.0

WARM_SPECS = 10
COLD_SPECS = 5
COLD_DUPLICATES = 4
MIXED_HITS = 180
HIT_PHASE_REQUESTS = 100

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _spec(seed: int) -> dict:
    scenario = fig2_scenario("dos", horizon=20.0)
    body = scenario_to_dict(scenario)
    body["sensor_seed"] = seed
    body["name"] = f"svc-bench-{seed}"
    return body


async def _post(port, body):
    status, payload = await fetch_json(
        "127.0.0.1", port, "POST", "/v1/runs?wait=1", body
    )
    assert status == 200, payload
    assert payload["status"] == "done", payload
    return payload


async def _drive(store_path):
    store = RunStore(store_path)
    # Thread executor: the workload is 0.007 s runs, where process-pool
    # startup would dominate and measure the OS, not the service.
    app = ServiceApp(store, workers=4, executor="thread")
    await app.start("127.0.0.1", 0)
    port = app.port
    try:
        warm = [_spec(seed) for seed in range(WARM_SPECS)]
        cold = [_spec(1000 + seed) for seed in range(COLD_SPECS)]

        for body in warm:
            await _post(port, body)
        assert app.jobs.executed_runs == WARM_SPECS

        # Mixed phase: 90% hits + coalescing bursts on the cold specs.
        start = time.perf_counter()
        requests = [
            _post(port, warm[i % WARM_SPECS]) for i in range(MIXED_HITS)
        ]
        for body in cold:
            requests.extend(_post(port, body) for _ in range(COLD_DUPLICATES))
        replies = await asyncio.gather(*requests)
        mixed_elapsed = time.perf_counter() - start
        mixed_requests = len(replies)

        # Pure hit phase.
        start = time.perf_counter()
        await asyncio.gather(
            *(
                _post(port, warm[i % WARM_SPECS])
                for i in range(HIT_PHASE_REQUESTS)
            )
        )
        hit_elapsed = time.perf_counter() - start

        return {
            "executed_runs": app.jobs.executed_runs,
            "store_entries": store.stats().entries,
            "mixed_requests": mixed_requests,
            "mixed_elapsed_s": mixed_elapsed,
            "hit_requests": HIT_PHASE_REQUESTS,
            "hit_elapsed_s": hit_elapsed,
        }
    finally:
        await app.close()
        store.close()


def bench_service_throughput(benchmark, tmp_path_factory):
    store_path = tmp_path_factory.mktemp("service") / "service.sqlite"

    def sweep():
        with telemetry.session() as tele:
            measured = asyncio.run(_drive(store_path))
        measured["counters"] = dict(tele.counters)
        return measured

    m = benchmark.pedantic(sweep, rounds=1, iterations=1)
    counters = m["counters"]
    unique = WARM_SPECS + COLD_SPECS

    # Coalescing + the store hold executed runs at the unique-spec
    # count no matter how many requests arrived.
    assert m["executed_runs"] == unique, m
    assert m["store_entries"] == unique
    assert counters["service.executed"] == unique
    total_posts = (
        WARM_SPECS + m["mixed_requests"] + m["hit_requests"]
    )
    hits = counters["service.cache_hit"]
    coalesced = counters.get("service.coalesced", 0)
    assert hits + coalesced + unique == total_posts, counters

    mixed_rps = m["mixed_requests"] / m["mixed_elapsed_s"]
    hit_rps = m["hit_requests"] / m["hit_elapsed_s"]
    assert hit_rps >= HIT_RPS_FLOOR, (
        f"pure hit path sustained {hit_rps:.0f} req/s, "
        f"floor is {HIT_RPS_FLOOR:.0f}"
    )

    record = {
        "bench": "service_throughput",
        "workload": (
            f"{m['mixed_requests']} mixed requests at 90% hit ratio + "
            f"{m['hit_requests']} pure hits over {unique} unique specs"
        ),
        "mixed_rps": round(mixed_rps, 1),
        "hit_rps": round(hit_rps, 1),
        "executed_runs": m["executed_runs"],
        "unique_specs": unique,
        "coalesced": coalesced,
        "cache_hits": hits,
        "hit_rps_floor": HIT_RPS_FLOOR,
        "python": platform.python_version(),
    }
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        "service_throughput",
        render_table(
            [
                {
                    "phase": "mixed (90% hit ratio)",
                    "requests": m["mixed_requests"],
                    "req_per_s": round(mixed_rps, 1),
                    "executed": "-",
                },
                {
                    "phase": "pure hits",
                    "requests": m["hit_requests"],
                    "req_per_s": round(hit_rps, 1),
                    "executed": "-",
                },
                {
                    "phase": f"total (floor {HIT_RPS_FLOOR:.0f} rps on hits)",
                    "requests": total_posts,
                    "req_per_s": "-",
                    "executed": m["executed_runs"],
                },
            ],
            title=(
                "Service throughput: single-flight held "
                f"{total_posts} requests to {m['executed_runs']} engine "
                f"executions ({unique} unique specs)"
            ),
        ),
    )
