"""Nonlinear lateral dynamics — the paper's stated future work.

The conclusion announces: "We will also extend our case study on
autonomous ground vehicle to include a non-linear system model with
lateral dynamics."  This module provides that extension:

* :class:`BicycleKinematics` — the standard kinematic bicycle model,
  the canonical nonlinear lateral vehicle model:

      ẋ = v cos ψ,   ẏ = v sin ψ,   ψ̇ = (v / L) tan δ

  with wheelbase ``L``, heading ``ψ`` and front steering angle ``δ``;
* :class:`LanePath` implementations — straight, constant-curvature arc,
  and sinusoidal (slalom) centerlines;
* :class:`LaneKeepingController` — the LKC the paper's introduction
  names alongside ACC: PD feedback on lateral offset and heading error
  with steering saturation;
* :class:`LateralSimulation` — a closed-loop lane-keeping run with an
  optional lateral disturbance (crosswind-style heading bias).

The longitudinal study (ACC + CRA + RLS) is deliberately unchanged: the
lateral loop composes with it through the shared speed profile.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import TimeSeries

__all__ = [
    "LateralState",
    "BicycleKinematics",
    "LanePath",
    "StraightLane",
    "ArcLane",
    "SinusoidalLane",
    "LaneKeepingController",
    "LateralSimulation",
    "LateralResult",
]


@dataclass(frozen=True)
class LateralState:
    """Planar pose of one vehicle.

    Attributes
    ----------
    x, y:
        Position in the road frame, meters (``x`` along the nominal
        driving direction).
    heading:
        Yaw angle ``ψ`` relative to the +x axis, radians.
    speed:
        Longitudinal speed ``v``, m/s (>= 0).
    """

    x: float
    y: float
    heading: float
    speed: float

    def __post_init__(self) -> None:
        if self.speed < 0.0:
            raise ValueError(f"speed must be >= 0, got {self.speed}")

    def with_values(self, **kwargs) -> "LateralState":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


class BicycleKinematics:
    """Kinematic bicycle model with steering saturation.

    Parameters
    ----------
    wheelbase:
        Distance ``L`` between axles, meters.
    max_steering:
        Steering-angle limit ``|δ|``, radians (≈0.5 rad for a car).
    """

    def __init__(self, wheelbase: float = 2.8, max_steering: float = 0.5):
        if wheelbase <= 0.0:
            raise ConfigurationError(f"wheelbase must be positive, got {wheelbase}")
        if not 0.0 < max_steering < math.pi / 2:
            raise ConfigurationError(
                f"max_steering must be in (0, pi/2), got {max_steering}"
            )
        self.wheelbase = float(wheelbase)
        self.max_steering = float(max_steering)

    def clamp_steering(self, steering: float) -> float:
        """Saturate a steering command to the physical limit."""
        return min(self.max_steering, max(-self.max_steering, steering))

    def step(
        self,
        state: LateralState,
        steering: float,
        acceleration: float,
        dt: float,
    ) -> LateralState:
        """Advance the pose one step (forward Euler on the nonlinear model).

        The heading uses the midpoint yaw rate for better accuracy at
        the 1 s control period the longitudinal study runs at.
        """
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        delta = self.clamp_steering(steering)
        speed = max(0.0, state.speed + acceleration * dt)
        mean_speed = 0.5 * (state.speed + speed)
        yaw_rate = mean_speed * math.tan(delta) / self.wheelbase
        heading_mid = state.heading + 0.5 * yaw_rate * dt
        return LateralState(
            x=state.x + mean_speed * math.cos(heading_mid) * dt,
            y=state.y + mean_speed * math.sin(heading_mid) * dt,
            heading=state.heading + yaw_rate * dt,
            speed=speed,
        )


class LanePath(ABC):
    """A lane centerline ``y_ref(x)`` with its local heading."""

    @abstractmethod
    def lateral_reference(self, x: float) -> float:
        """Centerline lateral position at ``x``, meters."""

    @abstractmethod
    def heading_reference(self, x: float) -> float:
        """Centerline heading at ``x``, radians."""

    def offset_of(self, state: LateralState) -> float:
        """Signed lateral offset of a pose from the centerline."""
        return state.y - self.lateral_reference(state.x)


class StraightLane(LanePath):
    """A straight lane along the +x axis at lateral position ``y0``."""

    def __init__(self, y0: float = 0.0):
        self.y0 = float(y0)

    def lateral_reference(self, x: float) -> float:
        return self.y0

    def heading_reference(self, x: float) -> float:
        return 0.0


class ArcLane(LanePath):
    """Constant-curvature lane (small-heading parameterization).

    ``y_ref(x) = κ x² / 2`` — the standard small-angle approximation of
    an arc of curvature ``κ``; valid for the gentle highway curvatures
    (|κ| ≤ ~3e-3 1/m) lane-keeping studies use.
    """

    def __init__(self, curvature: float = 1e-3):
        if abs(curvature) > 0.01:
            raise ConfigurationError(
                f"|curvature| must be <= 0.01 1/m for the small-angle "
                f"parameterization, got {curvature}"
            )
        self.curvature = float(curvature)

    def lateral_reference(self, x: float) -> float:
        return 0.5 * self.curvature * x * x

    def heading_reference(self, x: float) -> float:
        return math.atan(self.curvature * x)


class SinusoidalLane(LanePath):
    """Slalom lane ``y_ref = A sin(2π x / λ)`` (lane-change stress test)."""

    def __init__(self, amplitude: float = 1.5, wavelength: float = 400.0):
        if wavelength <= 0.0:
            raise ConfigurationError(
                f"wavelength must be positive, got {wavelength}"
            )
        self.amplitude = float(amplitude)
        self.wavelength = float(wavelength)

    def lateral_reference(self, x: float) -> float:
        return self.amplitude * math.sin(2.0 * math.pi * x / self.wavelength)

    def heading_reference(self, x: float) -> float:
        slope = (
            self.amplitude
            * 2.0
            * math.pi
            / self.wavelength
            * math.cos(2.0 * math.pi * x / self.wavelength)
        )
        return math.atan(slope)


class LaneKeepingController:
    """PD lane keeping: steer on lateral offset and heading error.

        δ = -(k_y · e_y + k_ψ · e_ψ) + δ_ff

    with a curvature feed-forward ``δ_ff = atan(L · κ_local)`` derived
    from the path heading change.  Gains default to a well-damped
    response at highway speeds for the 0.1 s lateral control period.
    """

    def __init__(
        self,
        lateral_gain: float = 0.05,
        heading_gain: float = 0.8,
        model: Optional[BicycleKinematics] = None,
    ):
        if lateral_gain <= 0.0 or heading_gain <= 0.0:
            raise ConfigurationError("controller gains must be positive")
        self.lateral_gain = float(lateral_gain)
        self.heading_gain = float(heading_gain)
        self.model = model if model is not None else BicycleKinematics()

    def steering(self, state: LateralState, path: LanePath) -> float:
        """Steering command for the current pose (saturated)."""
        offset = path.offset_of(state)
        heading_error = state.heading - path.heading_reference(state.x)
        command = -(self.lateral_gain * offset + self.heading_gain * heading_error)
        # Feed-forward: hold the path's local heading rate.
        lookahead = max(1.0, state.speed * 0.1)
        path_yaw_rate = (
            path.heading_reference(state.x + lookahead)
            - path.heading_reference(state.x)
        ) / lookahead
        feedforward = math.atan(self.model.wheelbase * path_yaw_rate)
        return self.model.clamp_steering(command + feedforward)


@dataclass
class LateralResult:
    """Traces of one lane-keeping run."""

    times: List[float]
    offsets: List[float]
    headings: List[float]
    steering: List[float]
    states: List[LateralState]

    def max_offset(self, after: float = 0.0) -> float:
        """Largest |lateral offset| for t >= ``after``."""
        values = [
            abs(o) for t, o in zip(self.times, self.offsets) if t >= after
        ]
        return max(values) if values else float("nan")

    def offset_series(self) -> TimeSeries:
        """Lateral offset as a :class:`~repro.types.TimeSeries`."""
        series = TimeSeries("lateral_offset")
        for t, o in zip(self.times, self.offsets):
            series.append(t, o)
        return series


class LateralSimulation:
    """Closed-loop lane keeping along a path.

    Parameters
    ----------
    path:
        Lane centerline to follow.
    controller:
        Lane-keeping controller; a default PD is built when omitted.
    dt:
        Lateral control period, seconds (faster than the 1 s
        longitudinal loop, as in real vehicles).
    speed_profile:
        Optional ``time -> acceleration`` callable for the longitudinal
        speed (defaults to constant speed).
    heading_disturbance:
        Optional ``time -> heading-rate bias`` (rad/s) modelling
        crosswind or road crown.
    """

    def __init__(
        self,
        path: LanePath,
        controller: Optional[LaneKeepingController] = None,
        dt: float = 0.1,
        speed_profile: Optional[Callable[[float], float]] = None,
        heading_disturbance: Optional[Callable[[float], float]] = None,
    ):
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        self.path = path
        self.controller = controller if controller is not None else LaneKeepingController()
        self.dt = float(dt)
        self.speed_profile = speed_profile
        self.heading_disturbance = heading_disturbance

    def run(self, initial: LateralState, duration: float) -> LateralResult:
        """Simulate for ``duration`` seconds from ``initial``."""
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        model = self.controller.model
        state = initial
        result = LateralResult(times=[], offsets=[], headings=[], steering=[], states=[])
        steps = int(round(duration / self.dt))
        for k in range(steps + 1):
            time = k * self.dt
            steering = self.controller.steering(state, self.path)
            result.times.append(time)
            result.offsets.append(self.path.offset_of(state))
            result.headings.append(state.heading)
            result.steering.append(steering)
            result.states.append(state)
            acceleration = (
                self.speed_profile(time) if self.speed_profile is not None else 0.0
            )
            state = model.step(state, steering, acceleration, self.dt)
            if self.heading_disturbance is not None:
                state = state.with_values(
                    heading=state.heading
                    + self.heading_disturbance(time) * self.dt
                )
        return result
