"""Simulation-engine corner cases."""

import numpy as np
import pytest

from repro import (
    ACCParameters,
    ConstantAccelerationProfile,
    Scenario,
    fig2_scenario,
    run,
)
from repro.simulation.scenario import DefenseConfig
from repro.vehicle.upper_controller import ControlMode


class TestTargetAcquisition:
    def test_out_of_range_target_starts_in_speed_mode(self):
        # Initial gap beyond the radar's 200 m envelope: no detections,
        # the tracker has no track, the ACC cruises at the set speed.
        scenario = Scenario(
            name="far-start",
            leader_profile=ConstantAccelerationProfile(0.0),
            initial_distance=400.0,
            leader_initial_speed=20.0,
            follower_initial_speed=25.0,
            horizon=60.0,
        )
        result = run(scenario, attack_enabled=False, defended=False)
        assert result.array("spacing_mode")[0] == 0.0
        vF = result.array("follower_velocity")
        # Cruising toward v_set until the leader comes into range.
        assert vF[10] > 25.0

    def test_acquires_target_when_entering_range(self):
        scenario = Scenario(
            name="acquire",
            leader_profile=ConstantAccelerationProfile(0.0),
            initial_distance=250.0,
            leader_initial_speed=20.0,
            follower_initial_speed=29.0,
            horizon=120.0,
        )
        result = run(scenario, attack_enabled=False, defended=False)
        gaps = result.array("true_distance")
        assert gaps[0] > 200.0
        # Once inside the envelope, the follower regulates the gap: no
        # collision and eventually spacing mode.
        assert not result.collided
        assert result.array("spacing_mode")[-1] == 1.0


class TestCollisionHandling:
    def test_collision_time_recorded_once_and_run_continues(self):
        result = run(fig2_scenario("dos"), defended=False)
        assert result.collided
        # Full-length traces even past the collision.
        assert len(result.times) == 301
        # Gap floor keeps the radar geometry defined (measured distance
        # stays finite after the crossing).
        measured = result.array("measured_distance")
        assert np.all(np.isfinite(measured))

    def test_summary_reports_collision(self):
        result = run(fig2_scenario("dos"), defended=False)
        summary = result.summary()
        assert summary.collided
        assert summary.collision_time == result.collision_time


class TestDefenseConfigVariants:
    def test_per_channel_estimator_runs(self):
        scenario = fig2_scenario(
            "dos", defense=DefenseConfig(estimator_kind="per_channel")
        )
        result = run(scenario, defended=True)
        assert result.detection_times == [182.0]

    def test_ar_basis_defense_runs(self):
        scenario = fig2_scenario(
            "dos",
            defense=DefenseConfig(
                estimator_kind="per_channel", basis_kind="ar", basis_order=2
            ),
        )
        result = run(scenario, defended=True)
        assert result.detection_times == [182.0]

    def test_rollback_disabled_runs(self):
        scenario = fig2_scenario(
            "delay", defense=DefenseConfig(rollback_on_detection=False)
        )
        result = run(scenario, defended=True)
        assert result.detection_times == [182.0]

    def test_margin_disabled_runs(self):
        scenario = fig2_scenario("dos", defense=DefenseConfig(margin_gain=0.0))
        result = run(scenario, defended=True)
        assert result.detection_times == [182.0]

    def test_noise_overrides_change_measurements(self):
        quiet = run(
            fig2_scenario("dos", distance_noise_std=0.0, velocity_noise_std=0.0),
            attack_enabled=False,
            defended=False,
        )
        errors = np.abs(
            quiet.array("measured_distance")[1:10] - quiet.array("true_distance")[1:10]
        )
        assert np.all(errors < 1e-9)


class TestAggressiveScenario:
    def test_hard_braking_leader_defended(self):
        # Much harsher than the paper: -1 m/s² leader braking under attack.
        scenario = fig2_scenario("dos").with_overrides(
            name="hard-brake",
            leader_profile=ConstantAccelerationProfile(-1.0, start_time=160.0),
            acc_params=ACCParameters(),
        )
        result = run(scenario, defended=True)
        assert result.detection_times[0] == 182.0
        # The leader stops at ~189 s; safety margin shrinks but holds.
        assert not result.collided
