"""Adaptive variance-aware Monte-Carlo sweeps over scenario grids.

A fixed seed grid spends the same budget on every cell: the easy cell
whose detection rate is pinned at 1.0 after eight seeds gets the same
64 runs as the borderline cell that genuinely needs them.
:func:`run_sweep` replaces the fixed grid with a scheduler that

* starts every cell with ``min_runs`` seeds,
* **early-stops** cells whose confidence-interval halfwidth on the
  target metric has reached ``target_ci``, and
* allocates each further round's seeds **proportionally to the
  cells' sample variance** — the budget flows to where the estimate
  is still uncertain.

Determinism is preserved end to end: cell seed lists come from
:func:`~repro.simulation.batch.derive_seeds` (one sub-stream per cell,
spawned from ``base_seed``), and the adaptive schedule only ever
consumes a *prefix* of each cell's seed list — so an adaptive cell's
outcomes are literally the first ``n`` outcomes of the fixed-grid run
of the same cell, and every executed run is fingerprinted and served
from the run store on re-execution (``cache=`` has the usual
:mod:`repro.store.cache` semantics; point it at a
:class:`~repro.store.sharded.ShardedRunStore` to let the pool workers
write their shards concurrently).

The driver fans each round out through
:func:`~repro.simulation.batch.execute_batch` (``workers=`` /
``backend=`` keep their meanings) with the
:func:`~repro.simulation.monte_carlo._seed_outcome` reducer, so only
small :class:`~repro.simulation.monte_carlo.SeedOutcome` records
travel between processes.

With an active :mod:`repro.telemetry` session the scheduler emits one
``sweep.round`` span per round plus ``sweep.rounds`` /
``sweep.executed_runs`` / ``sweep.early_stops`` counters — the
decisions are observable, not folkloric.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import telemetry as _telemetry
from repro.exceptions import ConfigurationError
from repro.simulation.batch import RunSpec, derive_seeds, execute_batch
from repro.simulation.monte_carlo import SeedOutcome, _seed_outcome
from repro.simulation.scenario import Scenario

__all__ = [
    "SweepCell",
    "CellResult",
    "SweepResult",
    "run_sweep",
    "SWEEP_METRICS",
    "SWEEP_SCHEDULES",
]

#: A per-run metric: maps one :class:`SeedOutcome` to a float.
MetricFn = Callable[[SeedOutcome], float]

#: Named metrics accepted by ``metric=`` (a callable is also fine).
SWEEP_METRICS: Dict[str, MetricFn] = {
    # Detected-or-not indicator; its mean is the cell's detection rate.
    "detection_rate": lambda o: 1.0 if o.detection_time is not None else 0.0,
    # Closest approach of the run; its mean is the expected safety margin.
    "min_gap": lambda o: float(o.min_gap),
    # Collision indicator; its mean is the cell's collision rate.
    "collision_rate": lambda o: 1.0 if o.collided else 0.0,
}

#: Accepted values of the ``schedule=`` knob.
SWEEP_SCHEDULES = ("adaptive", "fixed")

#: Variance floor used when weighting allocation — keeps a round's
#: weights well-defined when every active cell currently measures zero
#: sample variance (the budget then spreads uniformly).
_VARIANCE_FLOOR = 1e-12


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: a scenario configuration to estimate a metric on.

    ``key`` labels the cell in results, telemetry, and per-cell
    ``target_ci`` mappings; the scenario's ``sensor_seed`` is
    irrelevant (the sweep overrides it per run).
    """

    key: str
    scenario: Scenario
    attack_enabled: bool = True
    defended: bool = True


@dataclass(frozen=True)
class CellResult:
    """Converged (or budget-capped) estimate for one cell."""

    key: str
    runs: int
    mean: float
    std: float
    ci_halfwidth: float
    converged: bool
    outcomes: Tuple[SeedOutcome, ...]
    values: Tuple[float, ...]

    def as_dict(self) -> dict:
        return {
            "cell": self.key,
            "runs": self.runs,
            "mean": self.mean,
            "std": self.std,
            "ci_halfwidth": self.ci_halfwidth,
            "converged": self.converged,
        }


@dataclass(frozen=True)
class SweepResult:
    """All cell estimates plus what the schedule cost to reach them.

    ``fixed_grid_runs`` is the budget the equivalent fixed grid would
    have spent (``len(cells) * max_runs``); ``runs_saved`` is how much
    of it the adaptive schedule left unspent.
    """

    cells: Tuple[CellResult, ...]
    metric: str
    schedule: str
    rounds: int
    executed_runs: int
    fixed_grid_runs: int
    elapsed: float

    @property
    def runs_saved(self) -> int:
        return self.fixed_grid_runs - self.executed_runs

    @property
    def savings_fraction(self) -> float:
        if self.fixed_grid_runs == 0:
            return 0.0
        return self.runs_saved / self.fixed_grid_runs

    def cell(self, key: str) -> CellResult:
        for cell in self.cells:
            if cell.key == key:
                return cell
        raise KeyError(key)

    def as_rows(self) -> List[dict]:
        """Rows for :func:`repro.analysis.tables.render_table`."""
        return [
            {
                "cell": cell.key,
                "runs": cell.runs,
                "mean": round(cell.mean, 4),
                "ci_halfwidth": round(cell.ci_halfwidth, 4),
                "converged": cell.converged,
            }
            for cell in self.cells
        ]

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "schedule": self.schedule,
            "rounds": self.rounds,
            "executed_runs": self.executed_runs,
            "fixed_grid_runs": self.fixed_grid_runs,
            "runs_saved": self.runs_saved,
            "elapsed": self.elapsed,
            "cells": [cell.as_dict() for cell in self.cells],
        }


class _CellState:
    """Mutable per-cell scheduler bookkeeping during one sweep."""

    __slots__ = ("cell", "seeds", "target", "outcomes", "values")

    def __init__(self, cell: SweepCell, seeds: Tuple[int, ...], target: float):
        self.cell = cell
        self.seeds = seeds
        self.target = target
        self.outcomes: List[SeedOutcome] = []
        self.values: List[float] = []

    @property
    def n(self) -> int:
        return len(self.values)

    def variance(self) -> float:
        if self.n < 2:
            return float("inf")
        mean = sum(self.values) / self.n
        return sum((v - mean) ** 2 for v in self.values) / (self.n - 1)

    def halfwidth(self, z: float) -> float:
        variance = self.variance()
        if not math.isfinite(variance):
            return float("inf")
        return z * math.sqrt(variance / self.n)

    def converged(self, z: float) -> bool:
        return self.halfwidth(z) <= self.target


def _resolve_metric(metric: Union[str, MetricFn]) -> Tuple[str, MetricFn]:
    if callable(metric):
        return getattr(metric, "__name__", "custom"), metric
    if metric in SWEEP_METRICS:
        return metric, SWEEP_METRICS[metric]
    raise ConfigurationError(
        f"metric must be one of {', '.join(sorted(SWEEP_METRICS))} or a "
        f"callable SeedOutcome -> float; got {metric!r}"
    )


def _resolve_targets(
    target_ci: Union[float, Mapping[str, float]],
    cells: Sequence[SweepCell],
) -> Dict[str, float]:
    if isinstance(target_ci, Mapping):
        missing = [cell.key for cell in cells if cell.key not in target_ci]
        if missing:
            raise ConfigurationError(
                f"target_ci mapping is missing cells: {', '.join(missing)}"
            )
        targets = {cell.key: float(target_ci[cell.key]) for cell in cells}
    else:
        targets = {cell.key: float(target_ci) for cell in cells}
    for key, value in targets.items():
        if not value > 0:
            raise ConfigurationError(
                f"target_ci must be > 0, got {value} for cell {key!r}"
            )
    return targets


def _validate_cells(cells: Sequence[SweepCell]) -> List[SweepCell]:
    cells = list(cells)
    if not cells:
        raise ConfigurationError("at least one sweep cell is required")
    seen: set = set()
    for cell in cells:
        if not isinstance(cell, SweepCell):
            raise ConfigurationError(
                f"cells must be SweepCell instances, got {type(cell).__name__}"
            )
        if not isinstance(cell.scenario, Scenario):
            raise ConfigurationError(
                f"cell {cell.key!r}: sweeps drive two-vehicle Scenario "
                f"configurations (got {type(cell.scenario).__name__})"
            )
        if cell.key in seen:
            raise ConfigurationError(f"duplicate cell key {cell.key!r}")
        seen.add(cell.key)
    return cells


def _allocate(
    active: Sequence[_CellState], budget: int, max_runs: int
) -> Dict[str, int]:
    """Split a round's run budget across active cells by variance.

    Largest-remainder apportionment over variance weights (floored at
    :data:`_VARIANCE_FLOOR` so an all-zero-variance round degrades to a
    uniform split), clamped to each cell's remaining headroom.  Always
    allocates at least one run overall so a round cannot stall.
    """
    headroom = {state.cell.key: max_runs - state.n for state in active}
    weights = {}
    for state in active:
        variance = state.variance()
        if not math.isfinite(variance):
            variance = 1.0  # un-measured cells compete at unit weight
        weights[state.cell.key] = max(variance, _VARIANCE_FLOOR)
    total_weight = sum(weights.values())
    shares = {
        key: budget * weight / total_weight for key, weight in weights.items()
    }
    allocation = {key: min(int(share), headroom[key]) for key, share in shares.items()}
    remainder = budget - sum(allocation.values())
    # Hand leftover runs to the cells with the largest fractional share
    # (then the highest weight) that still have headroom.
    by_remainder = sorted(
        shares,
        key=lambda key: (shares[key] - int(shares[key]), weights[key]),
        reverse=True,
    )
    while remainder > 0:
        progressed = False
        for key in by_remainder:
            if remainder == 0:
                break
            if allocation[key] < headroom[key]:
                allocation[key] += 1
                remainder -= 1
                progressed = True
        if not progressed:
            break  # every active cell is at max_runs
    if all(count == 0 for count in allocation.values()):
        first = max(by_remainder, key=lambda key: headroom[key])
        if headroom[first] > 0:
            allocation[first] = 1
    return {key: count for key, count in allocation.items() if count > 0}


def _execute_round(
    states: Sequence[_CellState],
    allocation: Mapping[str, int],
    metric_fn: MetricFn,
    *,
    workers: int,
    cache: Any,
    backend: Optional[str],
) -> int:
    """Run one round's allocated seeds through the batch engine."""
    by_key = {state.cell.key: state for state in states}
    specs: List[RunSpec] = []
    owners: List[_CellState] = []
    for key, count in allocation.items():
        state = by_key[key]
        for seed in state.seeds[state.n : state.n + count]:
            specs.append(
                RunSpec(
                    scenario=state.cell.scenario.with_overrides(
                        sensor_seed=int(seed)
                    ),
                    attack_enabled=state.cell.attack_enabled,
                    defended=state.cell.defended,
                    tag=f"{key}:{seed}",
                )
            )
            owners.append(state)
    result = execute_batch(
        specs,
        workers=workers,
        postprocess=_seed_outcome,
        cache=cache,
        backend=backend,
    ).raise_on_error()
    for state, record in zip(owners, result.records):
        outcome = record.payload
        state.outcomes.append(outcome)
        state.values.append(float(metric_fn(outcome)))
    return len(specs)


def run_sweep(
    cells: Sequence[SweepCell],
    *,
    metric: Union[str, MetricFn] = "detection_rate",
    base_seed: int = 2017,
    target_ci: Union[float, Mapping[str, float]] = 0.1,
    confidence: float = 0.95,
    min_runs: int = 8,
    max_runs: int = 64,
    round_size: int = 8,
    schedule: str = "adaptive",
    workers: int = 1,
    cache: Any = None,
    backend: Optional[str] = None,
) -> SweepResult:
    """Estimate a metric over a scenario grid with adaptive seed budgets.

    Parameters
    ----------
    cells:
        The grid: unique-keyed :class:`SweepCell` configurations.
    metric:
        Named per-run metric (one of :data:`SWEEP_METRICS`) or a
        callable ``SeedOutcome -> float``; the sweep estimates its
        per-cell mean.  Callables run parent-side.
    base_seed:
        Root of the deterministic seed tree: cell ``i`` draws its runs
        from ``derive_seeds(derive_seeds(base_seed, n_cells)[i],
        max_runs)``, so results are a pure function of
        ``(cells, base_seed, max_runs)`` regardless of scheduling.
    target_ci:
        Convergence threshold on the CI halfwidth — one float for all
        cells or a mapping ``cell key -> halfwidth`` (every cell must
        be present).
    confidence:
        Confidence level of the interval (default 95%); the halfwidth
        is ``z * sqrt(variance / n)`` with the matching normal z-score.
    min_runs:
        Seeds every cell executes before any convergence decision
        (at least 2 — a variance needs that many points).
    max_runs:
        Per-cell budget cap; also the per-cell size of the fixed grid
        the sweep is compared against.
    round_size:
        Runs allocated per adaptive round across all still-active
        cells.
    schedule:
        ``"adaptive"`` (variance-weighted allocation + early stop) or
        ``"fixed"`` (every cell runs exactly ``max_runs``; one round).
    workers / cache / backend:
        Passed through to :func:`~repro.simulation.batch.execute_batch`
        each round.  A sharded readwrite cache makes rerun sweeps pure
        replay (every run keyed by fingerprint).

    Returns a :class:`SweepResult`; per-cell outcomes are in seed-list
    order, so an adaptive cell's ``outcomes`` is a prefix of the fixed
    grid's for the same cell.
    """
    cells = _validate_cells(cells)
    metric_name, metric_fn = _resolve_metric(metric)
    targets = _resolve_targets(target_ci, cells)
    if schedule not in SWEEP_SCHEDULES:
        raise ConfigurationError(
            f"schedule must be one of {', '.join(SWEEP_SCHEDULES)}; "
            f"got {schedule!r}"
        )
    if not isinstance(min_runs, int) or min_runs < 2:
        raise ConfigurationError(f"min_runs must be an integer >= 2, got {min_runs!r}")
    if not isinstance(max_runs, int) or max_runs < min_runs:
        raise ConfigurationError(
            f"max_runs must be an integer >= min_runs ({min_runs}), got {max_runs!r}"
        )
    if not isinstance(round_size, int) or round_size < 1:
        raise ConfigurationError(
            f"round_size must be an integer >= 1, got {round_size!r}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be strictly between 0 and 1, got {confidence!r}"
        )
    z = statistics.NormalDist().inv_cdf((1.0 + confidence) / 2.0)

    cell_bases = derive_seeds(base_seed, len(cells))
    states = [
        _CellState(cell, derive_seeds(cell_bases[i], max_runs), targets[cell.key])
        for i, cell in enumerate(cells)
    ]

    start = time.perf_counter()
    rounds = 0
    executed = 0

    def run_round(allocation: Mapping[str, int]) -> None:
        nonlocal rounds, executed
        rounds += 1
        with _telemetry.span(
            "sweep.round",
            round=rounds,
            cells=len(allocation),
            runs=sum(allocation.values()),
        ):
            executed += _execute_round(
                states,
                allocation,
                metric_fn,
                workers=workers,
                cache=cache,
                backend=backend,
            )

    if schedule == "fixed":
        run_round({state.cell.key: max_runs for state in states})
    else:
        run_round({state.cell.key: min_runs for state in states})
        while True:
            active = [
                state
                for state in states
                if state.n < max_runs and not state.converged(z)
            ]
            if not active:
                break
            allocation = _allocate(active, round_size, max_runs)
            if not allocation:
                break
            run_round(allocation)
        early_stops = sum(
            1 for state in states if state.n < max_runs and state.converged(z)
        )
        if early_stops:
            _telemetry.incr("sweep.early_stops", early_stops)

    _telemetry.incr("sweep.rounds", rounds)
    _telemetry.incr("sweep.executed_runs", executed)

    results = []
    for state in states:
        variance = state.variance()
        results.append(
            CellResult(
                key=state.cell.key,
                runs=state.n,
                mean=sum(state.values) / state.n,
                std=math.sqrt(variance) if math.isfinite(variance) else 0.0,
                ci_halfwidth=state.halfwidth(z),
                converged=state.converged(z),
                outcomes=tuple(state.outcomes),
                values=tuple(state.values),
            )
        )
    return SweepResult(
        cells=tuple(results),
        metric=metric_name,
        schedule=schedule,
        rounds=rounds,
        executed_runs=executed,
        fixed_grid_runs=len(cells) * max_runs,
        elapsed=time.perf_counter() - start,
    )
