"""Root-MUSIC spectral estimation (repro.radar.music)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SpectralEstimationError
from repro.radar import estimate_single_tone, root_music
from repro.radar.signal_synth import synthesize_beat_signal

FS = 256e3
N = 256


def tone(freq, snr_db=30.0, seed=0, n=N):
    rng = np.random.default_rng(seed)
    noise_power = 10 ** (-snr_db / 10.0)
    return synthesize_beat_signal(
        freq, power=1.0, n_samples=n, sample_rate=FS, rng=rng, noise_power=noise_power
    )


class TestRootMusicSingleTone:
    @pytest.mark.parametrize("freq", [500.0, 5e3, 50e3, 110e3, -20e3])
    def test_recovers_tone(self, freq):
        est = root_music(tone(freq), n_sources=1, sample_rate=FS)
        assert est[0] == pytest.approx(freq, abs=20.0)

    def test_noiseless_is_extremely_accurate(self):
        signal = synthesize_beat_signal(
            12345.0, power=1.0, n_samples=N, sample_rate=FS, phase=0.3
        )
        est = root_music(signal, n_sources=1, sample_rate=FS)
        assert est[0] == pytest.approx(12345.0, abs=0.1)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=-100e3, max_value=100e3),
        st.integers(min_value=0, max_value=1000),
    )
    def test_property_high_snr_accuracy(self, freq, seed):
        est = root_music(tone(freq, snr_db=25.0, seed=seed), 1, FS)
        assert est[0] == pytest.approx(freq, abs=50.0)

    def test_low_snr_still_in_ballpark(self):
        est = root_music(tone(40e3, snr_db=5.0, seed=3), 1, FS)
        assert est[0] == pytest.approx(40e3, abs=500.0)


class TestRootMusicTwoTones:
    def test_resolves_two_separated_tones(self):
        rng = np.random.default_rng(1)
        s = (
            synthesize_beat_signal(10e3, 1.0, N, FS, rng=rng)
            + synthesize_beat_signal(30e3, 1.0, N, FS, rng=rng)
            + synthesize_beat_signal(0.0, 0.0, N, FS, rng=rng, noise_power=1e-3)
        )
        est = root_music(s, n_sources=2, sample_rate=FS)
        assert est[0] == pytest.approx(10e3, abs=100.0)
        assert est[1] == pytest.approx(30e3, abs=100.0)

    def test_close_tones_beyond_fft_resolution(self):
        # FFT bin is fs/N = 1 kHz; MUSIC resolves a 600 Hz split.
        rng = np.random.default_rng(2)
        s = (
            synthesize_beat_signal(20e3, 1.0, N, FS, rng=rng)
            + synthesize_beat_signal(20.6e3, 1.0, N, FS, rng=rng)
            + synthesize_beat_signal(0.0, 0.0, N, FS, rng=rng, noise_power=1e-4)
        )
        est = root_music(s, n_sources=2, sample_rate=FS)
        assert est[0] == pytest.approx(20e3, abs=150.0)
        assert est[1] == pytest.approx(20.6e3, abs=150.0)


class TestRootMusicValidation:
    def test_rejects_bad_n_sources(self):
        with pytest.raises(ValueError):
            root_music(tone(1e3), n_sources=0, sample_rate=FS)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            root_music(tone(1e3), n_sources=1, sample_rate=0.0)

    def test_too_short_signal_raises(self):
        with pytest.raises(SpectralEstimationError):
            root_music(np.ones(4, dtype=complex), n_sources=2, sample_rate=FS)

    def test_order_must_exceed_sources(self):
        with pytest.raises(SpectralEstimationError):
            root_music(tone(1e3), n_sources=3, sample_rate=FS, covariance_order=3)


class TestSingleToneFFT:
    @pytest.mark.parametrize("freq", [500.0, 5e3, 50e3, -30e3])
    def test_matches_truth(self, freq):
        est = estimate_single_tone(tone(freq, seed=9), FS)
        assert est == pytest.approx(freq, abs=30.0)

    def test_cross_check_with_music(self):
        s = tone(42e3, seed=5)
        music = root_music(s, 1, FS)[0]
        fft = estimate_single_tone(s, FS)
        assert music == pytest.approx(fft, abs=50.0)

    def test_rejects_tiny_signal(self):
        with pytest.raises(SpectralEstimationError):
            estimate_single_tone(np.ones(2, dtype=complex), FS)
