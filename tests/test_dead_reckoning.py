"""Dead-reckoning estimator (repro.core.dead_reckoning)."""

import numpy as np
import pytest

from repro.core import ChannelPredictor, DeadReckoningEstimator
from repro.exceptions import EstimatorNotTrainedError
from repro.types import RadarMeasurement


def measurement(k, d, dv):
    return RadarMeasurement(time=float(k), distance=d, relative_velocity=dv)


def train_constant_decel(estimator, n=60, vF=25.0, vL0=29.0, decel=-0.1):
    """Leader decelerating; follower speed constant for simplicity."""
    d = 100.0
    for k in range(n):
        vL = vL0 + decel * k
        dv = vL - vF
        estimator.observe(measurement(k, d, dv), follower_speed=vF)
        d += dv
    return d  # true distance at time n


class TestTrainingAndForecast:
    def test_requires_follower_speed(self):
        estimator = DeadReckoningEstimator()
        with pytest.raises(ValueError):
            estimator.observe(measurement(0, 100.0, 0.0))

    def test_forecast_requires_follower_speed(self):
        estimator = DeadReckoningEstimator()
        train_constant_decel(estimator)
        with pytest.raises(ValueError):
            estimator.forecast(70.0)

    def test_untrained_raises(self):
        estimator = DeadReckoningEstimator()
        with pytest.raises(EstimatorNotTrainedError):
            estimator.forecast(10.0, follower_speed=20.0)

    def test_perfect_leader_model_gives_exact_gap(self):
        estimator = DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8)
        )
        vF, vL0, decel = 25.0, 29.0, -0.1
        train_constant_decel(estimator, n=60, vF=vF, vL0=vL0, decel=decel)
        # The estimator anchors at the last *observed* sample (k = 59)
        # and integrates with the midpoint rule (exact for a linear
        # leader velocity); the reference here does the same.
        d = 100.0 + sum(vL0 + decel * k - vF for k in range(59))  # d at k = 59
        for k in range(60, 80):
            vL_mid = vL0 + decel * (k - 0.5)
            d += vL_mid - vF
            est_d, est_dv = estimator.forecast(float(k), follower_speed=vF)
        assert est_d == pytest.approx(d, abs=0.1)
        assert est_dv == pytest.approx((vL0 + decel * 79) - vF, abs=0.05)

    def test_velocity_estimate_reacts_to_live_follower_speed(self):
        # The feedback property: Δv̂ = v̂L - v_F uses the *current* v_F.
        estimator = DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8)
        )
        train_constant_decel(estimator, n=40)
        _, dv_slow = estimator.forecast(41.0, follower_speed=10.0)
        estimator2 = DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8)
        )
        train_constant_decel(estimator2, n=40)
        _, dv_fast = estimator2.forecast(41.0, follower_speed=30.0)
        assert dv_slow - dv_fast == pytest.approx(20.0, abs=0.01)

    def test_gap_clamped_nonnegative(self):
        estimator = DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8)
        )
        # Tiny gap, follower much faster: integration would go negative.
        for k in range(10):
            estimator.observe(measurement(k, 5.0, -0.1), follower_speed=20.0)
        d, _ = estimator.forecast(30.0, follower_speed=30.0)
        assert d == 0.0

    def test_leader_velocity_clamped_at_zero(self):
        estimator = DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8)
        )
        # Leader will cross standstill shortly after training ends.
        vF = 5.0
        for k in range(30):
            vL = 3.0 - 0.1 * k  # hits zero at k = 30
            estimator.observe(measurement(k, 50.0, vL - vF), follower_speed=vF)
        _, dv = estimator.forecast(100.0, follower_speed=vF)
        # v̂L clamps to 0, so Δv̂ = -v_F.
        assert dv == pytest.approx(-vF, abs=0.01)

    def test_unclamped_mode(self):
        estimator = DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8),
            nonnegative_leader_velocity=False,
        )
        vF = 5.0
        for k in range(30):
            vL = 3.0 - 0.1 * k
            estimator.observe(measurement(k, 50.0, vL - vF), follower_speed=vF)
        _, dv = estimator.forecast(100.0, follower_speed=vF)
        assert dv < -vF  # negative leader velocity allowed

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadReckoningEstimator(sample_period=0.0)


class TestSnapshotRestore:
    def test_rollback_discards_corrupted_samples(self):
        estimator = DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8)
        )
        vF = 25.0
        train_constant_decel(estimator, n=50, vF=vF)
        snap = estimator.snapshot()
        # Corrupted samples: +6 m spoof on distance.
        d_spoof = 100.0
        for k in range(50, 53):
            estimator.observe(measurement(k, d_spoof + 6.0, 0.0), follower_speed=vF)
        estimator.restore(snap)
        d, _ = estimator.forecast(53.0, follower_speed=vF)
        # The anchor reverted to the authenticated distance and rolled
        # forward with the logged speeds — no trace of the +6 m spoof.
        clean = DeadReckoningEstimator(
            leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8)
        )
        train_constant_decel(clean, n=50, vF=vF)
        d_clean, _ = clean.forecast(53.0, follower_speed=vF)
        assert d == pytest.approx(d_clean, abs=0.5)

    def test_restore_before_any_anchor(self):
        estimator = DeadReckoningEstimator()
        snap = estimator.snapshot()
        estimator.restore(snap)
        assert not estimator.trained
