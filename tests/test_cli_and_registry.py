"""Experiment registry and command-line interface."""

import io
from pathlib import Path

import pytest

from repro.analysis.experiments import REGISTRY, experiments_table, get_experiment
from repro.cli import main

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = {exp.identifier for exp in REGISTRY}
        # Every figure panel and results paragraph of the paper.
        for required in (
            "fig2a",
            "fig2b",
            "fig3a",
            "fig3b",
            "results-detection",
            "results-rls-runtime",
            "jammer-feasibility",
        ):
            assert required in ids

    def test_every_bench_file_exists(self):
        for exp in REGISTRY:
            assert (BENCH_DIR / exp.bench).is_file(), f"{exp.bench} missing"

    def test_every_bench_file_is_registered(self):
        registered = {exp.bench for exp in REGISTRY}
        on_disk = {p.name for p in BENCH_DIR.glob("bench_*.py")}
        assert on_disk == registered

    def test_get_experiment(self):
        exp = get_experiment("fig2a")
        assert "DoS" in exp.title
        assert exp.kind == "figure"

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="fig2a"):
            get_experiment("fig9z")

    def test_paper_claims_present_for_paper_artifacts(self):
        for exp in REGISTRY:
            if exp.kind in ("figure", "table"):
                assert exp.paper_claim

    def test_table_rendering(self):
        text = experiments_table()
        assert "fig2a" in text
        assert "bench_fig2a_dos_constant_decel.py" in text

    def test_table_filtering(self):
        text = experiments_table(kind="ablation")
        assert "ablation-forgetting" in text
        assert "fig2a" not in text


class TestCLI:
    def run_cli(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_list(self):
        code, text = self.run_cli(["list"])
        assert code == 0
        assert "fig2a" in text
        assert "platoon-string-stability" in text

    def test_run_figure(self):
        code, text = self.run_cli(["run", "fig2a", "--no-plot", "--seed", "7"])
        assert code == 0
        assert "detection at k = 182 s" in text
        assert "0 FP / 0 FN" in text

    def test_run_figure_with_plot(self):
        code, text = self.run_cli(["run", "fig2b"])
        assert code == 0
        assert "radar distance" in text
        assert "estimated" in text

    def test_run_non_figure_points_to_bench(self):
        code, text = self.run_cli(["run", "jammer-feasibility"])
        assert code == 0
        assert "pytest benchmarks/bench_jammer_feasibility.py" in text

    def test_run_unknown_experiment(self):
        code, text = self.run_cli(["run", "fig9z"])
        assert code == 2
        assert "unknown experiment" in text

    def test_report(self):
        code, text = self.run_cli(["report"])
        assert code == 0
        assert "fig3b" in text
        assert "Paper-vs-measured" in text

    def test_run_figure_workers_output_identical(self):
        code1, serial = self.run_cli(["run", "fig2a", "--no-plot"])
        code2, parallel = self.run_cli(
            ["run", "fig2a", "--no-plot", "--workers", "2"]
        )
        assert code1 == code2 == 0
        assert serial == parallel

    def test_workers_flag_on_report(self):
        code, text = self.run_cli(["report", "--workers", "2"])
        assert code == 0
        assert "Paper-vs-measured" in text

    def test_invalid_workers_rejected_at_parse_time(self, capsys):
        for bad in ("0", "-3", "two"):
            with pytest.raises(SystemExit) as excinfo:
                main(["run", "fig2a", "--workers", bad])
            assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_workers_flag_on_run_custom(self, tmp_path):
        from repro import fig2_scenario
        from repro.simulation import save_scenario

        path = save_scenario(fig2_scenario("dos"), tmp_path / "spec.json")
        code, text = self.run_cli(["run-custom", str(path), "--workers", "2"])
        assert code == 0
        assert "detection at k = 182 s" in text
