"""Extension bench — attack propagation through an ACC platoon.

The paper's case study is a single follower; a deployed ACC operates in
a platoon.  This bench measures how the DoS attack's disturbance
propagates down a 4-vehicle chain (peak gap deviation vs a clean
reference, per follower) and shows that defending only the *attacked*
vehicle contains the disturbance for the whole string.
"""

from conftest import bench_workers, emit
from repro import AttackWindow, DoSJammingAttack
from repro.analysis import render_table
from repro.simulation import PlatoonScenario, RunSpec, run_many
from repro.vehicle import ConstantAccelerationProfile

N_FOLLOWERS = 4


def _scenario(defended=()):
    return PlatoonScenario(
        leader_profile=ConstantAccelerationProfile(-0.1082),
        n_followers=N_FOLLOWERS,
        attack=DoSJammingAttack(AttackWindow(182.0, 300.0)),
        attacked_follower=0,
        defended_followers=defended,
    )


def bench_platoon_string_stability(benchmark):
    def run_all():
        # The three platoon runs are independent — one batch.
        clean, attacked, defended = run_many(
            [
                RunSpec(_scenario(), attack_enabled=False, tag="clean"),
                RunSpec(_scenario(), attack_enabled=True, tag="attacked"),
                RunSpec(_scenario(defended=(0,)), attack_enabled=True, tag="defended"),
            ],
            workers=bench_workers(),
        )
        return clean, attacked, defended

    clean, attacked, defended = benchmark.pedantic(run_all, rounds=1, iterations=1)

    attacked_amp = attacked.string_amplification(clean)
    defended_amp = defended.string_amplification(clean)

    # Shape claims: the undefended attack crashes the attacked vehicle
    # and disturbs every downstream follower; defending the attacked
    # radar alone keeps the whole string collision-free and attenuated.
    assert attacked.collided(0)
    assert all(a > 10.0 for a in attacked_amp[1:])
    assert not defended.any_collision()
    assert all(d < a for d, a in zip(defended_amp, attacked_amp))

    rows = []
    for i in range(N_FOLLOWERS):
        rows.append(
            {
                "follower": i,
                "role": "attacked radar" if i == 0 else "downstream",
                "clean_min_gap_m": round(clean.min_gap(i), 2),
                "attacked_peak_dev_m": round(attacked_amp[i], 1),
                "attacked_collided": attacked.collided(i),
                "defended_peak_dev_m": round(defended_amp[i], 1),
                "defended_collided": defended.collided(i),
            }
        )
    emit(
        "platoon_string_stability",
        render_table(
            rows,
            title=(
                "4-follower platoon, DoS on follower 0's radar "
                "(peak gap deviation vs clean reference; defense on the "
                "attacked vehicle only)"
            ),
        ),
    )
