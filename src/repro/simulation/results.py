"""Trace containers and summaries for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.types import DetectionEvent, TimeSeries

__all__ = ["SimulationResult", "ResultSummary", "TRACE_NAMES"]

#: Every trace the engine records, in display order.
TRACE_NAMES = (
    "leader_position",
    "leader_velocity",
    "follower_position",
    "follower_velocity",
    "follower_acceleration",
    "true_distance",
    "true_relative_velocity",
    "measured_distance",
    "measured_relative_velocity",
    "safe_distance",
    "safe_relative_velocity",
    "desired_distance",
    "desired_acceleration",
    "pedal_acceleration",
    "brake_pressure",
    "spacing_mode",
    "estimated_flag",
    "attack_active_flag",
)


@dataclass(frozen=True)
class ResultSummary:
    """Headline safety/detection numbers of one run."""

    name: str
    duration: float
    min_gap: float
    final_gap: float
    collided: bool
    collision_time: Optional[float]
    detection_times: List[float]
    first_detection_time: Optional[float]
    estimated_samples: int
    final_follower_speed: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for table rendering."""
        return {
            "name": self.name,
            "duration_s": self.duration,
            "min_gap_m": round(self.min_gap, 2),
            "final_gap_m": round(self.final_gap, 2),
            "collided": self.collided,
            "collision_time_s": self.collision_time,
            "first_detection_s": self.first_detection_time,
            "estimated_samples": self.estimated_samples,
            "final_follower_speed_mps": round(self.final_follower_speed, 2),
        }


@dataclass
class SimulationResult:
    """Everything one closed-loop run produced.

    ``traces`` maps each name in :data:`TRACE_NAMES` to a
    :class:`~repro.types.TimeSeries` sampled at every simulation step.
    """

    name: str
    traces: Dict[str, TimeSeries] = field(default_factory=dict)
    detection_events: List[DetectionEvent] = field(default_factory=list)
    collision_time: Optional[float] = None
    attack_name: str = "none"
    defended: bool = False
    #: Defense-solver counters for runs whose pipeline performs secure
    #: reconstruction (subset search / cache telemetry, see
    #: ``SecureReconstructionEstimator.search_stats``); None otherwise.
    defense_stats: Optional[Dict[str, int]] = None

    @classmethod
    def empty(cls, name: str, **kwargs) -> "SimulationResult":
        """Create a result with all standard traces pre-registered."""
        traces = {trace_name: TimeSeries(trace_name) for trace_name in TRACE_NAMES}
        return cls(name=name, traces=traces, **kwargs)

    def record(self, time: float, **values: float) -> None:
        """Append one value per named trace at ``time``."""
        for trace_name, value in values.items():
            if trace_name not in self.traces:
                raise KeyError(f"unknown trace {trace_name!r}")
            self.traces[trace_name].append(time, float(value))

    def series(self, name: str) -> TimeSeries:
        """Access one trace by name."""
        return self.traces[name]

    def array(self, name: str) -> np.ndarray:
        """One trace's values as a float array."""
        return self.series(name).as_arrays()[1]

    @property
    def times(self) -> np.ndarray:
        """The sample instants of the run."""
        return self.series("true_distance").as_arrays()[0]

    @property
    def collided(self) -> bool:
        """True when the follower reached the leader's position."""
        return self.collision_time is not None

    @property
    def detection_times(self) -> List[float]:
        """Instants at which the alarm was (re)raised."""
        seen: List[float] = []
        active = False
        for event in self.detection_events:
            if event.attack_detected and not active:
                seen.append(event.time)
                active = True
            elif not event.attack_detected:
                active = False
        return seen

    def min_gap(self) -> float:
        """Smallest true inter-vehicle distance over the run."""
        gaps = self.array("true_distance")
        return float(np.min(gaps)) if gaps.size else float("nan")

    def summary(self) -> ResultSummary:
        """Headline numbers for tables."""
        times = self.times
        gaps = self.array("true_distance")
        estimated = self.array("estimated_flag")
        speeds = self.array("follower_velocity")
        detections = self.detection_times
        return ResultSummary(
            name=self.name,
            duration=float(times[-1]) if times.size else 0.0,
            min_gap=float(np.min(gaps)) if gaps.size else float("nan"),
            final_gap=float(gaps[-1]) if gaps.size else float("nan"),
            collided=self.collided,
            collision_time=self.collision_time,
            detection_times=detections,
            first_detection_time=detections[0] if detections else None,
            estimated_samples=int(np.sum(estimated)) if estimated.size else 0,
            final_follower_speed=float(speeds[-1]) if speeds.size else float("nan"),
        )
