"""FMCW radar parameter sets, including the paper's Bosch LRR2 preset.

All values quoted in the paper (§4.1 and §6): carrier 77 GHz, sweep
bandwidth ``Bs = 150 MHz``, sweep time ``Ts = 2 ms``, wavelength
``λ = 3.89 mm``, transmit power ``Pt = 10 mW``, antenna gain
``G = 28 dBi``, system losses ``L = 0.10 dB``, operating range
``2 m ≤ d ≤ 200 m``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError
from repro.units import SPEED_OF_LIGHT, db_to_linear, ghz, mhz, milliseconds, millimeters

__all__ = ["FMCWParameters", "BOSCH_LRR2", "bosch_lrr2"]

#: Boltzmann constant times standard temperature (290 K), W/Hz.
_KT0 = 1.380649e-23 * 290.0


@dataclass(frozen=True)
class FMCWParameters:
    """Parameters of a triangular-sweep FMCW radar.

    Attributes
    ----------
    carrier_frequency:
        RF carrier, hertz (77 GHz for automotive long-range radar).
    sweep_bandwidth:
        Sweep bandwidth ``Bs``, hertz.
    sweep_time:
        Duration ``Ts`` of one (up or down) sweep segment, seconds.
    wavelength:
        Carrier wavelength ``λ``, meters.  The paper quotes 3.89 mm which
        matches ``c / 77 GHz`` to three significant figures.
    transmit_power:
        Peak transmitted power ``Pt``, watts.
    antenna_gain_db:
        Antenna gain ``G``, dBi (applied on both transmit and receive).
    system_loss_db:
        Lumped system losses ``L``, dB.
    min_range, max_range:
        Specified operating-range envelope, meters.
    default_rcs:
        Scattering cross-section ``σ`` assumed for the target when the
        caller does not supply one, square meters (≈10 m² for a sedan's
        rear).
    noise_figure_db:
        Receiver noise figure, dB; sets the thermal noise floor together
        with ``kT0`` and the processed bandwidth.
    sample_rate:
        Beat-signal (post-dechirp) complex sample rate, hertz.
    samples_per_segment:
        Number of beat-signal samples collected per sweep segment.
    """

    carrier_frequency: float = ghz(77.0)
    sweep_bandwidth: float = mhz(150.0)
    sweep_time: float = milliseconds(2.0)
    wavelength: float = millimeters(3.89)
    transmit_power: float = 10e-3
    antenna_gain_db: float = 28.0
    system_loss_db: float = 0.10
    min_range: float = 2.0
    max_range: float = 200.0
    default_rcs: float = 10.0
    noise_figure_db: float = 10.0
    sample_rate: float = 256e3
    samples_per_segment: int = 256

    def __post_init__(self) -> None:
        positives = {
            "carrier_frequency": self.carrier_frequency,
            "sweep_bandwidth": self.sweep_bandwidth,
            "sweep_time": self.sweep_time,
            "wavelength": self.wavelength,
            "transmit_power": self.transmit_power,
            "default_rcs": self.default_rcs,
            "sample_rate": self.sample_rate,
        }
        for name, value in positives.items():
            if value <= 0.0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.min_range <= 0.0 or self.max_range <= self.min_range:
            raise ConfigurationError(
                f"invalid range envelope [{self.min_range}, {self.max_range}]"
            )
        if self.samples_per_segment < 8:
            raise ConfigurationError(
                "samples_per_segment must be >= 8 for spectral estimation, "
                f"got {self.samples_per_segment}"
            )
        if self.system_loss_db < 0.0 or self.noise_figure_db < 0.0:
            raise ConfigurationError("losses and noise figure must be >= 0 dB")
        # The beat signal of the farthest in-envelope target must be
        # representable below Nyquist, or the receiver cannot see it.
        max_beat = (
            2.0 * self.max_range * self.sweep_bandwidth
            / (SPEED_OF_LIGHT * self.sweep_time)
        )
        if max_beat >= self.sample_rate / 2.0:
            raise ConfigurationError(
                f"max in-envelope beat frequency {max_beat:.0f} Hz exceeds "
                f"Nyquist {self.sample_rate / 2.0:.0f} Hz"
            )

    @property
    def sweep_slope(self) -> float:
        """Chirp slope ``Bs / Ts``, Hz/s."""
        return self.sweep_bandwidth / self.sweep_time

    @property
    def antenna_gain(self) -> float:
        """Antenna gain as a linear ratio."""
        return db_to_linear(self.antenna_gain_db)

    @property
    def system_loss(self) -> float:
        """System losses as a linear ratio (>= 1)."""
        return db_to_linear(self.system_loss_db)

    @property
    def noise_figure(self) -> float:
        """Receiver noise figure as a linear ratio (>= 1)."""
        return db_to_linear(self.noise_figure_db)

    @property
    def noise_floor(self) -> float:
        """Thermal noise power in the sampled beat bandwidth, watts.

        ``k T0 * F * fs`` — the per-sample complex noise power the
        synthesized beat signal is generated with.
        """
        return _KT0 * self.noise_figure * self.sample_rate

    def with_overrides(self, **kwargs) -> "FMCWParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The paper's Bosch LRR2 long-range radar configuration (§4.1, §6).
BOSCH_LRR2 = FMCWParameters()


def bosch_lrr2(**overrides) -> FMCWParameters:
    """Return the Bosch LRR2 preset, optionally with overridden fields.

    Examples
    --------
    >>> radar = bosch_lrr2(default_rcs=5.0)
    >>> radar.sweep_bandwidth
    150000000.0
    """
    return BOSCH_LRR2.with_overrides(**overrides) if overrides else BOSCH_LRR2
