"""Cross-cutting property-based tests on the core invariants.

These pin down the *guarantees* the reproduction relies on, beyond the
example-based tests:

* CRA completeness/soundness: at a challenge instant, the detector
  fires iff the receiver output is non-zero — any injected energy is
  caught, and silence never is.
* Algorithm 1 numerical invariants: the correlation matrix stays
  symmetric positive-definite; the conversion factor stays >= λ.
* Radar round trips: Eqns 5-8 invert exactly for any in-envelope scene,
  and the full signal chain recovers the scene within tolerance.
* Kinematics: vehicles never reverse and position is consistent with
  the velocity profile.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import (
    ChallengeSchedule,
    CRADetector,
    FMCWParameters,
    FMCWRadarSensor,
    RLSEstimator,
)
from repro.radar.sensor import AttackEffect
from repro.types import RadarMeasurement, SensorStatus
from repro.vehicle import VehicleState, advance_state

PARAMS = FMCWParameters()


class TestCRACompletenessAndSoundness:
    """Line 9 of Algorithm 2 as a universally quantified property."""

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=500.0),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    def test_any_nonzero_output_at_challenge_is_detected(self, distance, velocity):
        detector = CRADetector(ChallengeSchedule.from_times([10.0]))
        event = detector.process(
            RadarMeasurement(
                time=10.0,
                distance=distance,
                relative_velocity=velocity,
                status=SensorStatus.CHALLENGE,
            )
        )
        assert event.attack_detected

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=9.9e-7))
    def test_sub_tolerance_output_is_never_detected(self, dust):
        detector = CRADetector(
            ChallengeSchedule.from_times([10.0]), zero_tolerance=1e-6
        )
        event = detector.process(
            RadarMeasurement(
                time=10.0,
                distance=dust,
                relative_velocity=0.0,
                status=SensorStatus.CHALLENGE,
            )
        )
        assert not event.attack_detected

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=5.0, max_value=195.0),
    )
    def test_sensor_challenge_fires_iff_attacked(self, seed, distance):
        """End-to-end: equation-fidelity sensor + detector at a challenge."""
        detector = CRADetector(ChallengeSchedule.from_times([0.0]))
        sensor = FMCWRadarSensor(fidelity="equation", seed=seed)
        clean = sensor.measure(0.0, distance, -1.0, transmit=False)
        assert not detector.process(clean).attack_detected

        detector.reset()
        attacked = sensor.measure(
            0.0,
            distance,
            -1.0,
            transmit=False,
            effect=AttackEffect(spoof_distance_offset=6.0, replace_echo=True),
        )
        assert detector.process(attacked).attack_detected


class TestRLSInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.7, max_value=1.0),
        st.integers(min_value=0, max_value=1000),
    )
    def test_correlation_symmetric_positive_definite(self, n, lam, seed):
        rng = np.random.default_rng(seed)
        rls = RLSEstimator(n_params=n, forgetting=lam)
        for _ in range(100):
            rls.update(rng.standard_normal(n), rng.normal())
        P = rls.correlation
        assert np.allclose(P, P.T, atol=1e-9)
        eigvals = np.linalg.eigvalsh(P)
        assert np.all(eigvals > 0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.5, max_value=1.0),
        st.integers(min_value=0, max_value=1000),
    )
    def test_conversion_factor_at_least_lambda(self, lam, seed):
        rng = np.random.default_rng(seed)
        rls = RLSEstimator(n_params=3, forgetting=lam)
        for _ in range(50):
            step = rls.update(rng.standard_normal(3), rng.normal())
            assert step.conversion_factor >= lam - 1e-12

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_noiseless_posterior_error_shrinks(self, seed):
        """After each update, re-predicting the same sample improves."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal(2)
        rls = RLSEstimator(n_params=2, forgetting=1.0)
        for _ in range(30):
            h = rng.standard_normal(2)
            y = float(w @ h)
            before = abs(y - rls.predict(h))
            rls.update(h, y)
            after = abs(y - rls.predict(h))
            assert after <= before + 1e-9


class TestRadarRoundTripProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=5.0, max_value=195.0),
        st.floats(min_value=-25.0, max_value=25.0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_signal_chain_recovers_scene(self, distance, velocity, seed):
        sensor = FMCWRadarSensor(fidelity="signal", seed=seed)
        m = sensor.measure(0.0, distance, velocity)
        assert m.distance == pytest.approx(distance, abs=1.0)
        assert m.relative_velocity == pytest.approx(velocity, abs=0.5)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=5.0, max_value=180.0),
        st.floats(min_value=0.1, max_value=20.0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_delay_attack_shifts_distance_by_offset(self, distance, offset, seed):
        assume(distance + offset < 200.0)
        sensor = FMCWRadarSensor(fidelity="signal", seed=seed)
        effect = AttackEffect(spoof_distance_offset=offset, replace_echo=True)
        m = sensor.measure(0.0, distance, 0.0, effect=effect)
        assert m.distance == pytest.approx(distance + offset, abs=1.0)


class TestKinematicsProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=40.0),
        st.lists(st.floats(min_value=-6.0, max_value=3.0), min_size=1, max_size=50),
    )
    def test_velocity_nonnegative_over_any_profile(self, v0, accelerations):
        state = VehicleState(position=0.0, velocity=v0)
        for a in accelerations:
            state = advance_state(state, a, dt=1.0)
            assert state.velocity >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=40.0),
        st.lists(st.floats(min_value=-6.0, max_value=3.0), min_size=1, max_size=50),
    )
    def test_position_monotonically_nondecreasing(self, v0, accelerations):
        state = VehicleState(position=0.0, velocity=v0)
        previous = state.position
        for a in accelerations:
            state = advance_state(state, a, dt=1.0)
            assert state.position >= previous - 1e-12
            previous = state.position

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=40.0),
        st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_position_increment_bounded_by_velocities(self, v0, a):
        state = VehicleState(position=0.0, velocity=v0)
        advanced = advance_state(state, a, dt=1.0)
        lo = min(v0, advanced.velocity) - 1e-9
        hi = max(v0, advanced.velocity) + 1e-9
        assert lo <= advanced.position - state.position <= hi
