"""Discrete-time LTI plant model (paper §3, Eqns 1-2; §4, Eqns 3-4).

    x[k+1] = A x[k] + B u[k]
    y[k]   = C x[k] + v[k]

Under attack the output becomes ``y'[k] = C x[k] + y_a[k] + v[k]`` where
``y_a`` is zero-mean for a delay-injection counterfeit offset or an
arbitrary vector ``r`` for DoS (Eqn 4).  The attack corruption itself is
modelled by :mod:`repro.attacks`; this module only provides the clean
plant and a simulation loop with an output-corruption hook.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.lti.noise import MeasurementNoise, NoNoise

__all__ = ["LTISystem", "simulate_lti"]

OutputCorruption = Callable[[int, np.ndarray], np.ndarray]


class LTISystem:
    """A discrete-time linear time-invariant system ``(A, B, C)``.

    Parameters
    ----------
    A:
        State matrix, ``n x n``.
    B:
        Input matrix, ``n x m``.
    C:
        Output matrix, ``p x n``.
    noise:
        Additive measurement-noise source of dimension ``p``; defaults to
        the ideal (zero) noise model.

    Examples
    --------
    >>> sys = LTISystem(A=[[1.0, 1.0], [0.0, 1.0]],
    ...                 B=[[0.5], [1.0]],
    ...                 C=[[1.0, 0.0]])
    >>> sys.n, sys.m, sys.p
    (2, 1, 1)
    """

    def __init__(self, A, B, C, noise: Optional[MeasurementNoise] = None):
        self.A = np.atleast_2d(np.asarray(A, dtype=float))
        self.B = np.atleast_2d(np.asarray(B, dtype=float))
        self.C = np.atleast_2d(np.asarray(C, dtype=float))
        n = self.A.shape[0]
        if self.A.shape != (n, n):
            raise ValueError(f"A must be square, got {self.A.shape}")
        if self.B.shape[0] != n:
            raise ValueError(
                f"B must have {n} rows to match A, got {self.B.shape}"
            )
        if self.C.shape[1] != n:
            raise ValueError(
                f"C must have {n} columns to match A, got {self.C.shape}"
            )
        self.noise = noise if noise is not None else NoNoise(self.C.shape[0])
        if self.noise.dimension != self.p:
            raise ValueError(
                f"noise dimension {self.noise.dimension} does not match "
                f"output dimension {self.p}"
            )

    @property
    def n(self) -> int:
        """State dimension."""
        return self.A.shape[0]

    @property
    def m(self) -> int:
        """Input dimension."""
        return self.B.shape[1]

    @property
    def p(self) -> int:
        """Output dimension."""
        return self.C.shape[0]

    def step(self, x: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Advance the state one sample: ``x[k+1] = A x[k] + B u[k]``."""
        x = np.asarray(x, dtype=float).reshape(self.n)
        u = np.asarray(u, dtype=float).reshape(self.m)
        return self.A @ x + self.B @ u

    def output(self, x: np.ndarray, noisy: bool = True) -> np.ndarray:
        """Produce the measurement ``y[k] = C x[k] + v[k]``."""
        x = np.asarray(x, dtype=float).reshape(self.n)
        y = self.C @ x
        if noisy:
            y = y + self.noise.sample()
        return y

    def is_stable(self) -> bool:
        """Return True when all eigenvalues of ``A`` lie inside the unit circle."""
        return bool(np.all(np.abs(np.linalg.eigvals(self.A)) < 1.0))

    def dc_gain(self) -> np.ndarray:
        """Steady-state gain ``C (I - A)^-1 B`` (requires no pole at z=1)."""
        eye = np.eye(self.n)
        return self.C @ np.linalg.solve(eye - self.A, self.B)


def simulate_lti(
    system: LTISystem,
    x0: Sequence[float],
    inputs: Sequence[Sequence[float]],
    corruption: Optional[OutputCorruption] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run an open-loop simulation of ``system`` for ``len(inputs)`` steps.

    Parameters
    ----------
    system:
        The plant to simulate.
    x0:
        Initial state, length ``n``.
    inputs:
        Sequence of control inputs ``u[0..N-1]``, each of length ``m``.
    corruption:
        Optional hook ``(k, y) -> y'`` applied to each output sample,
        implementing the attacked-output model of Eqns 3-4.

    Returns
    -------
    (states, outputs):
        ``states`` has shape ``(N+1, n)`` (including ``x0``), ``outputs``
        has shape ``(N, p)``; ``outputs[k]`` is measured *before* the
        state advances to ``k+1``.
    """
    x = np.asarray(x0, dtype=float).reshape(system.n)
    u_arr = np.atleast_2d(np.asarray(inputs, dtype=float))
    if u_arr.shape[1] != system.m:
        raise ValueError(
            f"inputs must have {system.m} columns, got {u_arr.shape[1]}"
        )
    steps = u_arr.shape[0]
    states = np.empty((steps + 1, system.n))
    outputs = np.empty((steps, system.p))
    states[0] = x
    for k in range(steps):
        y = system.output(states[k])
        if corruption is not None:
            y = np.asarray(corruption(k, y), dtype=float).reshape(system.p)
        outputs[k] = y
        states[k + 1] = system.step(states[k], u_arr[k])
    return states, outputs
