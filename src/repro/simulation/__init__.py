"""Closed-loop car-following simulation (paper §6).

* :mod:`repro.simulation.scenario` — declarative description of one
  experiment (vehicles, radar, challenge schedule, attack, defense
  configuration), with factories for the paper's Figure 2/3 scenarios.
* :mod:`repro.simulation.engine` — the step loop that wires leader,
  follower, radar, attack, defense pipeline and ACC together.
* :mod:`repro.simulation.results` — trace containers and summaries.
* :mod:`repro.simulation.runner` — convenience drivers that run the
  (baseline / attacked / defended) triple each figure plots.
* :mod:`repro.simulation.batch` — parallel batch execution of
  independent runs (the substrate behind every ``workers=`` kwarg).
* :mod:`repro.simulation.vectorized` — the lock-step batch engine
  behind ``backend="vectorized"`` / ``"auto"`` (bit-identical to the
  scalar engine, one numpy pass per step for a homogeneous group).
* :mod:`repro.simulation.knobs` — shared validation of the
  ``workers=`` / ``cache=`` / ``backend=`` execution knobs.
* :mod:`repro.simulation.sweep` — adaptive variance-aware Monte-Carlo
  sweeps over scenario grids (early-stops converged cells, allocates
  seeds where the metric variance is highest).
"""

from repro.simulation.scenario import (
    Scenario,
    DefenseConfig,
    paper_challenge_times,
    fig2_scenario,
    fig3_scenario,
)
from repro.simulation.engine import CarFollowingSimulation
from repro.simulation.results import SimulationResult, ResultSummary
from repro.simulation.runner import FigureData, run_figure_scenario, run_single
from repro.simulation.platoon import (
    PlatoonScenario,
    PlatoonResult,
    PlatoonSimulation,
    run_platoon,
)
from repro.simulation.batch import (
    BatchResult,
    RunRecord,
    RunSpec,
    derive_seeds,
    execute_batch,
    run_many,
)
from repro.simulation.knobs import BACKENDS, resolve_backend
from repro.simulation.vectorized import (
    group_key,
    run_group_vectorized,
    vectorization_blocker,
)
from repro.simulation.io import (
    export_csv,
    export_json,
    load_json,
    result_from_dict,
    result_to_dict,
)
from repro.simulation.spec import (
    SPEC_VERSION,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.simulation.monte_carlo import (
    MonteCarloSummary,
    SeedOutcome,
    run_monte_carlo,
)
from repro.simulation.sweep import (
    SWEEP_METRICS,
    SWEEP_SCHEDULES,
    CellResult,
    SweepCell,
    SweepResult,
    run_sweep,
)

__all__ = [
    "Scenario",
    "DefenseConfig",
    "paper_challenge_times",
    "fig2_scenario",
    "fig3_scenario",
    "CarFollowingSimulation",
    "SimulationResult",
    "ResultSummary",
    "FigureData",
    "run_figure_scenario",
    "run_single",
    "PlatoonScenario",
    "PlatoonResult",
    "PlatoonSimulation",
    "run_platoon",
    "RunSpec",
    "RunRecord",
    "BatchResult",
    "execute_batch",
    "run_many",
    "derive_seeds",
    "BACKENDS",
    "resolve_backend",
    "vectorization_blocker",
    "group_key",
    "run_group_vectorized",
    "export_csv",
    "export_json",
    "load_json",
    "result_to_dict",
    "result_from_dict",
    "run_monte_carlo",
    "MonteCarloSummary",
    "SeedOutcome",
    "SweepCell",
    "CellResult",
    "SweepResult",
    "run_sweep",
    "SWEEP_METRICS",
    "SWEEP_SCHEDULES",
    "SPEC_VERSION",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
]
