#!/usr/bin/env python
"""Compare recovery estimators on the paper's hardest scenario.

Runs the Figure 2a DoS scenario defended by four different estimators:

* ``dead_reckoning`` — leader-velocity RLS + trusted-ego-speed gap
  integration (the library default);
* ``per_channel``   — the paper's literal §5.3: one independent RLS
  forecaster per radar channel;
* hold-last-value   — the trivial baseline;
* Kalman            — per-channel constant-velocity Kalman filters.

The per-channel forecasters run open loop during the 118 s attack, so
small level errors integrate into real gap drift; the dead-reckoning
estimator keeps the loop closed through the trusted ego speed.
"""

from repro import (
    CarFollowingSimulation,
    HoldLastValuePredictor,
    KalmanChannelPredictor,
    RadarChannelEstimator,
    fig2_scenario,
)
from repro.analysis import render_table, safety_metrics
from repro.simulation.scenario import DefenseConfig


def run_with_estimator(scenario, estimator=None):
    sim = CarFollowingSimulation(scenario, defended=True)
    if estimator is not None:
        sim.pipeline.estimator = estimator
    return sim.run()


def main() -> None:
    rows = []
    for seed in (2017, 7, 23):
        runs = {
            "dead_reckoning": run_with_estimator(
                fig2_scenario("dos", sensor_seed=seed)
            ),
            "per_channel (paper literal)": run_with_estimator(
                fig2_scenario(
                    "dos",
                    sensor_seed=seed,
                    defense=DefenseConfig(estimator_kind="per_channel"),
                )
            ),
            "hold-last-value": run_with_estimator(
                fig2_scenario("dos", sensor_seed=seed),
                RadarChannelEstimator(
                    HoldLastValuePredictor(), HoldLastValuePredictor()
                ),
            ),
            "kalman per-channel": run_with_estimator(
                fig2_scenario("dos", sensor_seed=seed),
                RadarChannelEstimator(
                    KalmanChannelPredictor(), KalmanChannelPredictor()
                ),
            ),
        }
        for name, result in runs.items():
            metrics = safety_metrics(result)
            rows.append(
                {
                    "estimator": name,
                    "seed": seed,
                    "min_gap_m": round(metrics.min_gap, 2),
                    "collided": metrics.collided,
                }
            )
    print(
        render_table(
            rows,
            title="Recovery estimator comparison — Figure 2a DoS scenario",
        )
    )
    print()
    print("All estimators share the same CRA detector (detection at k = 182 s);")
    print("only the measurement substitution during the attack differs.")


if __name__ == "__main__":
    main()
