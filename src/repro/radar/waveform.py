"""Triangular FMCW sweep and the CRA binary modulation (paper §4.1, §5.2).

The transmitted waveform sweeps linearly up over ``Ts`` seconds and back
down over the next ``Ts`` (a triangular modulation).  The CRA defense
multiplies the probe by a pseudo-random binary signal ``m(t) ∈ {0, 1}``:

    p'(t) = m(t) p(t)

so that at the secret challenge instants ``T_c`` (where ``m = 0``)
nothing is transmitted and an honest environment returns silence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.radar.params import FMCWParameters

__all__ = ["TriangularSweep", "BinaryModulator"]


class TriangularSweep:
    """The instantaneous-frequency trajectory of a triangular FMCW sweep.

    One full modulation period is ``2 Ts``: an up-sweep from
    ``fc - Bs/2`` to ``fc + Bs/2`` followed by the mirror down-sweep.
    """

    def __init__(self, params: FMCWParameters):
        self.params = params

    @property
    def period(self) -> float:
        """Full triangular period ``2 Ts``, seconds."""
        return 2.0 * self.params.sweep_time

    def instantaneous_frequency(self, t) -> np.ndarray:
        """Transmit frequency at time(s) ``t`` (seconds), hertz.

        Vectorized over ``t``; times are wrapped into one period.
        """
        params = self.params
        t = np.asarray(t, dtype=float)
        phase_time = np.mod(t, self.period)
        up = phase_time < params.sweep_time
        f_low = params.carrier_frequency - params.sweep_bandwidth / 2.0
        f_high = params.carrier_frequency + params.sweep_bandwidth / 2.0
        slope = params.sweep_slope
        freq = np.where(
            up,
            f_low + slope * phase_time,
            f_high - slope * (phase_time - params.sweep_time),
        )
        return freq

    def segment_of(self, t) -> np.ndarray:
        """Return ``+1`` for times in the up-sweep, ``-1`` for the down-sweep."""
        phase_time = np.mod(np.asarray(t, dtype=float), self.period)
        return np.where(phase_time < self.params.sweep_time, 1, -1)

    def sample_times(self) -> Tuple[np.ndarray, np.ndarray]:
        """Beat-signal sample instants for the up and down segments."""
        params = self.params
        n = params.samples_per_segment
        dt = 1.0 / params.sample_rate
        up_times = np.arange(n) * dt
        down_times = params.sweep_time + np.arange(n) * dt
        return up_times, down_times


class BinaryModulator:
    """The CRA pseudo-random on/off modulation ``m(t)`` applied per sample.

    The scheduler (:class:`repro.core.cra.ChallengeSchedule`) decides at
    which *discrete sample instants* ``k`` the probe is suppressed; this
    class is the waveform-level view: it gates a transmit envelope to
    zero for challenged samples.
    """

    def __init__(self, params: FMCWParameters):
        self.params = params

    def apply(self, envelope: np.ndarray, transmit: bool) -> np.ndarray:
        """Gate a transmit ``envelope`` with ``m = 1`` or ``m = 0``.

        Returns the envelope unchanged when ``transmit`` is True and an
        all-zero array of the same shape otherwise.
        """
        envelope = np.asarray(envelope, dtype=complex)
        if transmit:
            return envelope
        return np.zeros_like(envelope)

    def modulation_value(self, transmit: bool) -> int:
        """The binary modulation value ``m(t)`` for this instant."""
        return 1 if transmit else 0
