"""Ablation — CTH headway time τ_h.

The paper fixes τ_h = 3 s (Eqn 12).  The headway sets the standing gap
(d_des = d_0 + τ_h v_F) and therefore both throughput (shorter headway
= denser traffic) and the safety buffer the RLS recovery has to work
with during an attack.  This bench sweeps τ_h on the Figure 2a DoS
scenario.
"""

from conftest import emit
from repro import ACCParameters, fig2_scenario, run
from repro.analysis import render_table


def _evaluate(headway: float):
    scenario = fig2_scenario(
        "dos", acc_params=ACCParameters(headway_time=headway)
    )
    data = run(scenario, mode="figure")
    return {
        "headway_s": headway,
        "baseline_min_gap_m": round(data.baseline.min_gap(), 2),
        "attacked_min_gap_m": round(data.attacked.min_gap(), 1),
        "attacked_collided": data.attacked.collided,
        "defended_min_gap_m": round(data.defended.min_gap(), 2),
        "defended_collided": data.defended.collided,
        "detection_s": data.detection_time(),
    }


def bench_ablation_headway(benchmark):
    def sweep():
        return [_evaluate(h) for h in (1.5, 2.0, 3.0, 4.0)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape claims: detection is headway-independent (182 s everywhere);
    # the paper's 3 s headway survives the attack defended; larger
    # headways give larger defended margins.
    assert all(row["detection_s"] == 182.0 for row in rows)
    paper_row = next(row for row in rows if row["headway_s"] == 3.0)
    assert not paper_row["defended_collided"]
    defended_gaps = [r["defended_min_gap_m"] for r in rows]
    assert defended_gaps[-1] > defended_gaps[0]

    emit(
        "ablation_headway",
        render_table(
            rows,
            title="Headway-time ablation (Figure 2a DoS scenario; paper "
            "value τ_h = 3 s)",
        ),
    )
