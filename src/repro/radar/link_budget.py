"""Radar range equation and jammer link budget (paper Eqns 9-11).

Echo power at the radar receiver (Eqn 9, standard monostatic radar
range equation — the OCR text abbreviates ``G² λ²`` as ``G A_o``):

    P_r = Pt G² λ² σ / ((4π)³ d⁴ L)

Jamming signal power received by the radar from a self-screening jammer
(Eqn 10 — one-way propagation, hence ``d²``):

    P_jammer = P_J G_J λ² G B / ((4π)² d² B_J L_J)

and the attack-success criterion (Eqn 11): jamming swamps the echo when

    P_r / P_jammer = Pt G σ B_J L_J / (4π P_J G_J d² B L)  < 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.radar.params import FMCWParameters, _KT0
from repro.units import db_to_linear

__all__ = [
    "JammerParameters",
    "received_power",
    "jammer_received_power",
    "jamming_power_ratio",
    "jamming_succeeds",
    "thermal_noise_power",
    "beat_snr",
    "burn_through_range",
]

_FOUR_PI = 4.0 * math.pi


@dataclass(frozen=True)
class JammerParameters:
    """A self-screening noise jammer (paper §6.2 values as defaults).

    Attributes
    ----------
    peak_power:
        Jammer transmit power ``P_J``, watts (paper: 100 mW).
    antenna_gain_db:
        Jammer antenna gain ``G_J``, dBi (paper: 10 dBi).
    bandwidth:
        Jammer operating bandwidth ``B_J``, hertz (paper: 155 MHz).
    loss_db:
        Jammer losses ``L_J``, dB (paper: 0.10 dB).
    """

    peak_power: float = 100e-3
    antenna_gain_db: float = 10.0
    bandwidth: float = 155e6
    loss_db: float = 0.10

    def __post_init__(self) -> None:
        if self.peak_power <= 0.0:
            raise ConfigurationError(f"peak_power must be positive, got {self.peak_power}")
        if self.bandwidth <= 0.0:
            raise ConfigurationError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.loss_db < 0.0:
            raise ConfigurationError(f"loss_db must be >= 0, got {self.loss_db}")

    @property
    def antenna_gain(self) -> float:
        """Jammer antenna gain as a linear ratio."""
        return db_to_linear(self.antenna_gain_db)

    @property
    def loss(self) -> float:
        """Jammer losses as a linear ratio (>= 1)."""
        return db_to_linear(self.loss_db)


def received_power(
    params: FMCWParameters, distance: float, rcs: Optional[float] = None
) -> float:
    """Echo power ``P_r`` at the radar receiver (Eqn 9), watts."""
    if distance <= 0.0:
        raise ValueError(f"distance must be positive, got {distance}")
    sigma = params.default_rcs if rcs is None else rcs
    if sigma <= 0.0:
        raise ValueError(f"radar cross-section must be positive, got {sigma}")
    gain = params.antenna_gain
    numerator = params.transmit_power * gain * gain * params.wavelength**2 * sigma
    # d⁴ as (d·d)·(d·d): plain IEEE multiplies reproduce bit-for-bit on
    # numpy arrays, unlike pow (libm pow and numpy's vector power round
    # a handful of ULPs apart).
    distance_sq = distance * distance
    denominator = _FOUR_PI**3 * (distance_sq * distance_sq) * params.system_loss
    return numerator / denominator


def jammer_received_power(
    params: FMCWParameters, jammer: JammerParameters, distance: float
) -> float:
    """Jamming power received inside the radar band (Eqn 10), watts.

    The ``B / B_J`` factor accounts for the fraction of the jammer's
    noise bandwidth that falls inside the radar's sweep bandwidth.
    """
    if distance <= 0.0:
        raise ValueError(f"distance must be positive, got {distance}")
    band_fraction = min(1.0, params.sweep_bandwidth / jammer.bandwidth)
    numerator = (
        jammer.peak_power
        * jammer.antenna_gain
        * params.wavelength**2
        * params.antenna_gain
        * band_fraction
    )
    denominator = _FOUR_PI**2 * (distance * distance) * jammer.loss
    return numerator / denominator


def jamming_power_ratio(
    params: FMCWParameters,
    jammer: JammerParameters,
    distance: float,
    rcs: Optional[float] = None,
) -> float:
    """The paper's attack-success ratio ``P_r / P_jammer`` (Eqn 11)."""
    return received_power(params, distance, rcs) / jammer_received_power(
        params, jammer, distance
    )


def jamming_succeeds(
    params: FMCWParameters,
    jammer: JammerParameters,
    distance: float,
    rcs: Optional[float] = None,
) -> bool:
    """True when the jamming attack succeeds, i.e. Eqn 11's ratio < 1."""
    return jamming_power_ratio(params, jammer, distance, rcs) < 1.0


def burn_through_range(
    params: FMCWParameters,
    jammer: JammerParameters,
    rcs: Optional[float] = None,
) -> float:
    """Distance below which the echo out-powers the jammer ("burn-through").

    Solves ``P_r(d) = P_jammer(d)`` for ``d``; jamming succeeds for all
    targets farther than this range.  Since ``P_r ∝ d⁻⁴`` and
    ``P_jammer ∝ d⁻²`` the ratio scales as ``d⁻²``:

        d_bt = sqrt(ratio(d0)) * d0    for any reference d0.
    """
    reference = 1.0
    ratio_at_reference = jamming_power_ratio(params, jammer, reference, rcs)
    return math.sqrt(ratio_at_reference) * reference


def thermal_noise_power(params: FMCWParameters, bandwidth: Optional[float] = None) -> float:
    """Thermal noise power ``k T0 F B`` over ``bandwidth``, watts.

    Defaults to the sampled beat bandwidth (the radar's ``sample_rate``),
    which is what the synthesized baseband noise is scaled to.
    """
    band = params.sample_rate if bandwidth is None else bandwidth
    if band <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {band}")
    return _KT0 * params.noise_figure * band


def beat_snr(
    params: FMCWParameters, distance: float, rcs: Optional[float] = None
) -> float:
    """Echo-to-noise linear power ratio in the sampled beat bandwidth."""
    return received_power(params, distance, rcs) / thermal_noise_power(params)
