"""Pipeline-facing estimator built on secure state reconstruction.

:class:`SecureReconstructionEstimator` plugs the subset-search solver of
:mod:`repro.defense.reconstruction` into the
:class:`~repro.core.predictor.MeasurementEstimator` slot of
:class:`~repro.core.pipeline.SafeMeasurementPipeline`.  It models the
*follower-relative* state ``x = [gap, Δv, a_L]`` (``Δv = v_L − v_F``,
``a_L`` the leader's acceleration held constant between samples — the
standard constant-acceleration target model) with the trusted follower
acceleration as input:

    gap[k+1] = gap[k] + T·Δv[k] + T²/2·(a_L[k] − a_F[k])
    Δv[k+1]  = Δv[k]  + T·a_L[k] − T·a_F[k]
    a_L[k+1] = a_L[k]

Estimating ``a_L`` from the window is what lets the model extrapolate a
braking leader through a long attack; leader *jerk* remains the
unmodelled disturbance (where the dead-reckoning RLS baseline, which
refits the trend at every trusted sample, can still win — the
defense-comparison bench quantifies this).

Every trusted sample extends a sliding window; each window is solved
twice — once with the **full** sensor set (consistency check / noise
smoothing) and once under the configured ``sparsity`` assumption (the
defense proper, plus the structural-guarantee report).  When the full
set is self-consistent its least-squares state is adopted; otherwise
the best *consistent, observable* sparse candidate is, and when even
that fails the previous state simply rolls forward on the model.

Forecasts report ``gap − margin_gain·σ_gap(t)`` where ``σ_gap`` is the
least-squares covariance of the reconstructed state propagated through
the model.  Noise in the window's ``Δv``/``a_L`` fit integrates into
gap error linearly/quadratically with the forecast horizon, so over a
minutes-long attack an *unbiased* estimate still drifts by many
metres; the margin turns that known uncertainty into conservatism
(shorter reported gap → earlier braking), mirroring the dead-reckoning
baseline's uncertainty band.

Honest caveat, surfaced via :attr:`guarantee_holds`: the radar's two
channels with ``s = 1`` are **not** 2-sparse observable — the
velocity-only subset cannot observe the gap — so unique recovery is not
structurally guaranteed for this plant (it needs redundant sensors; see
the tests for a 4-sensor double integrator where the guarantee holds).
The reconstruction still adds value as a model-consistency layer, and
the per-candidate reports say exactly what is and is not identifiable.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.predictor import MeasurementEstimator
from repro.defense.reconstruction import (
    IncrementalWindowSolver,
    ReconstructionResult,
    SecureStateReconstruct,
    SSProblem,
    TransitionCache,
)
from repro.exceptions import ConfigurationError, EstimatorNotTrainedError
from repro.telemetry import core as _telemetry
from repro.types import RadarMeasurement

__all__ = ["follower_relative_system", "SecureReconstructionEstimator"]

#: Solver modes: ``incremental`` reuses cached window geometry across
#: steps (the default — bit-identical results, ~an order of magnitude
#: faster; see ``bench_defense_runtime``); ``from_scratch`` rebuilds the
#: solver every window (the pre-PR-10 behaviour, kept as the benchmark
#: baseline and as a cross-check in tests).
SOLVER_MODES = ("incremental", "from_scratch")


def follower_relative_system(
    sample_period: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(A, B, C)`` of the follower-relative gap model.

    State ``[gap, Δv, a_L]``, input ``a_F`` (trusted follower
    acceleration), the two radar channels measured directly
    (``C = [[1,0,0],[0,1,0]]`` — the leader acceleration is never
    measured, only inferred).  Discretized exactly for
    piecewise-constant accelerations over one ``sample_period``.
    """
    if sample_period <= 0.0:
        raise ConfigurationError(
            f"sample_period must be positive, got {sample_period}"
        )
    T = float(sample_period)
    A = np.array(
        [
            [1.0, T, 0.5 * T * T],
            [0.0, 1.0, T],
            [0.0, 0.0, 1.0],
        ]
    )
    B = np.array([[-0.5 * T * T], [-T], [0.0]])
    C = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    return A, B, C


def _transition_builder(dt: float) -> Tuple[np.ndarray, np.ndarray]:
    """Exact ``(A, B)`` for one interval — module-level so estimator
    snapshots (deep copies) never capture a bound-method cycle."""
    A, B, _ = follower_relative_system(dt)
    return A, B


class SecureReconstructionEstimator(MeasurementEstimator):
    """Sliding-window secure state reconstruction as an estimator.

    Parameters
    ----------
    sample_period:
        Radar sampling period ``T``, seconds.
    window:
        Sliding-window length in samples (``≥ 2``).
    sparsity:
        Assumed maximum number of attacked sensors ``s`` for the sparse
        solve (``0 ≤ s < 2`` for the two radar channels).
    residual_threshold:
        RMS residual (measurement units) above which a candidate is
        rejected as inconsistent with the model.
    rank_tolerance:
        Singular-value tolerance of the observability checks.
    margin_gain:
        Multiple of the propagated gap standard deviation subtracted
        from forecast gaps (0 disables the margin).
    noise_floor:
        Lower bound on the measurement-noise scale used for the
        covariance (guards against near-zero residuals on very short
        windows).
    solver_mode:
        ``"incremental"`` (default) reuses cached window geometry via
        :class:`IncrementalWindowSolver`; ``"from_scratch"`` rebuilds
        :class:`SecureStateReconstruct` every window.  Both produce
        bit-identical estimates — the mode only trades runtime.
    transition_cache_size:
        LRU bound on the memoized per-``dt`` discretizations (distinct
        quantized interval durations; jittered sampling cannot grow the
        cache past this).
    """

    def __init__(
        self,
        sample_period: float = 1.0,
        window: int = 8,
        sparsity: int = 1,
        residual_threshold: float = 1.0,
        rank_tolerance: float = 1e-10,
        margin_gain: float = 2.0,
        noise_floor: float = 0.1,
        solver_mode: str = "incremental",
        transition_cache_size: int = 64,
    ):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if solver_mode not in SOLVER_MODES:
            raise ConfigurationError(
                f"solver_mode must be one of {SOLVER_MODES!r}, "
                f"got {solver_mode!r}"
            )
        if not 0 <= sparsity < 2:
            raise ConfigurationError(
                f"sparsity must leave an honest radar channel, got {sparsity}"
            )
        if residual_threshold <= 0.0:
            raise ConfigurationError(
                f"residual_threshold must be positive, got {residual_threshold}"
            )
        if margin_gain < 0.0:
            raise ConfigurationError(
                f"margin_gain must be >= 0, got {margin_gain}"
            )
        self.sample_period = float(sample_period)
        self.window = int(window)
        self.sparsity = int(sparsity)
        self.residual_threshold = float(residual_threshold)
        self.rank_tolerance = float(rank_tolerance)
        self.margin_gain = float(margin_gain)
        self.noise_floor = float(noise_floor)
        self.solver_mode = solver_mode
        self.A, self.B, self.C = follower_relative_system(self.sample_period)
        self._transition_cache = TransitionCache(
            _transition_builder, maxsize=transition_cache_size
        )
        self._solver = IncrementalWindowSolver(
            self.A,
            self.B,
            self.C,
            residual_threshold=self.residual_threshold,
            rank_tolerance=self.rank_tolerance,
            transition=self._transition_cache,
        )
        # Window rows: (time, gap, Δv, follower speed).
        self._samples: List[Tuple[float, float, float, float]] = []
        # Current reconstructed state: (time, x = [gap, Δv, a_L]).
        self._state: Optional[Tuple[float, np.ndarray]] = None
        # Covariance of the reconstructed state, rolled with it.
        self._cov: Optional[np.ndarray] = None
        # Most recent trusted/forecast ego speed, for input estimation.
        self._last_speed: Optional[Tuple[float, float]] = None
        #: Sparse-solve report for the latest window (None before data).
        self.last_result: Optional[ReconstructionResult] = None
        #: Windows where the full sensor set failed the consistency
        #: check (model disagreement — attack or unmodelled manoeuvre).
        self.inconsistent_windows = 0
        #: Windows where even the sparse search had no usable candidate.
        self.fallback_windows = 0
        #: Windows solved (both the s=0 and sparse passes count as one).
        self.windows_solved = 0
        #: Sensor-subset hypotheses examined / eliminated across all
        #: windows (aggregated from :class:`ReconstructionResult`).
        self.subsets_searched = 0
        self.subsets_pruned = 0

    # ------------------------------------------------------------------

    @property
    def trained(self) -> bool:
        return self._state is not None

    @property
    def guarantee_holds(self) -> Optional[bool]:
        """Latest window's 2s-sparse observability verdict (None = no data)."""
        return self.last_result.guaranteed if self.last_result else None

    def _transition(self, dt: float):
        """Exact ``(A, B)`` for one interval of duration ``dt``."""
        return self._transition_cache(dt)

    def _reconstruct(self) -> None:
        """Solve the current window and update the state estimate."""
        tele = _telemetry.current()
        started = perf_counter() if tele is not None else 0.0
        window = np.asarray(self._samples)
        ys = window[:, 1:3]
        times = window[:, 0]
        speeds = window[:, 3]
        # Trusted samples are not uniformly spaced (challenge instants
        # and alarm periods leave holes); each interval gets its exact
        # discretization or the fitted trend skews.
        dts = times[1:] - times[:-1]
        # Follower accelerations over the window, from trusted speeds.
        us = np.zeros((len(dts), 1))
        np.divide(
            speeds[1:] - speeds[:-1], dts, out=us[:, 0], where=dts > 1e-9
        )
        end_time = float(times[-1])
        sparsities = (0,) if self.sparsity == 0 else (0, self.sparsity)

        if self.solver_mode == "incremental":
            hits_before = self._solver.geometry_hits
            results = self._solver.solve_many(ys, us, dts, sparsities)
            cache_hit = self._solver.geometry_hits > hits_before
        else:
            cache_hit = False
            results = {
                s: SecureStateReconstruct(
                    SSProblem(
                        self.A, self.B, self.C, ys, us=us, s=s, dts=dts
                    ),
                    residual_threshold=self.residual_threshold,
                    rank_tolerance=self.rank_tolerance,
                    transition=self._transition_cache,
                ).solve()
                for s in sparsities
            }

        # Full-set consistency check (s = 0): both channels must agree
        # with the dynamics.  Its single candidate doubles as a
        # least-squares smoother when it passes.
        full = results[0]
        # Sparse solve: the defense proper, and the guarantee report.
        sparse = results[sparsities[-1]]
        self.last_result = sparse

        self.windows_solved += 1
        searched = sum(r.subsets_searched for r in results.values())
        pruned = sum(r.subsets_pruned for r in results.values())
        self.subsets_searched += searched
        self.subsets_pruned += pruned
        if tele is not None:
            tele.emit(
                "defense.reconstruct",
                perf_counter() - started,
                attrs={
                    "window": int(len(ys)),
                    "subsets": searched,
                    "cache_hit": cache_hit,
                },
            )
            tele.incr("defense.windows")
            tele.incr("defense.subsets", searched)
            tele.incr("defense.subsets_pruned", pruned)
            tele.incr(
                "defense.geometry_hits" if cache_hit else "defense.geometry_misses"
            )

        if full.best is not None:
            self._adopt(end_time, full.best)
            return
        self.inconsistent_windows += 1
        if sparse.best is not None:
            self._adopt(end_time, sparse.best)
            return
        self.fallback_windows += 1
        # No subset explains the window — keep the model-rolled state
        # (set by the roll in observe()); nothing else is trustworthy.

    def search_stats(self) -> Dict[str, int]:
        """Subset-search and cache counters for run-level reporting.

        Returned dict is JSON-serializable and flows into
        :attr:`repro.simulation.results.SimulationResult.defense_stats`
        (surfaced by the report's Defense comparison panel).
        """
        return {
            "windows_solved": self.windows_solved,
            "subsets_searched": self.subsets_searched,
            "subsets_pruned": self.subsets_pruned,
            "inconsistent_windows": self.inconsistent_windows,
            "fallback_windows": self.fallback_windows,
            "geometry_hits": self._solver.geometry_hits,
            "geometry_extensions": self._solver.geometry_extensions,
            "geometry_misses": self._solver.geometry_misses,
            "transition_hits": self._transition_cache.hits,
            "transition_misses": self._transition_cache.misses,
            "transition_evictions": self._transition_cache.evictions,
        }

    def _adopt(self, end_time: float, candidate) -> None:
        """Take a candidate's end-of-window state and its covariance."""
        self._state = (end_time, candidate.x_end.copy())
        if candidate.x_end_covariance is not None:
            sigma = max(candidate.residual, self.noise_floor)
            self._cov = candidate.x_end_covariance * sigma * sigma
        else:
            self._cov = None

    def observe(
        self, measurement: RadarMeasurement, follower_speed: Optional[float] = None
    ) -> None:
        """Ingest one trusted measurement plus the trusted ego speed."""
        if follower_speed is None:
            raise ValueError(
                "SecureReconstructionEstimator requires the trusted follower speed"
            )
        if self._state is not None:
            self._roll(measurement.time, follower_speed)
        self._samples.append(
            (
                measurement.time,
                measurement.distance,
                measurement.relative_velocity,
                follower_speed,
            )
        )
        del self._samples[: -self.window]
        self._last_speed = (measurement.time, follower_speed)
        if len(self._samples) >= 2:
            self._reconstruct()

    # ------------------------------------------------------------------

    def _roll(self, to_time: float, follower_speed: float) -> None:
        """Propagate the reconstructed state to ``to_time`` on the model."""
        assert self._state is not None
        time, x = self._state
        if to_time <= time + 1e-9:
            return
        if self._last_speed is not None and to_time > self._last_speed[0] + 1e-9:
            accel = (follower_speed - self._last_speed[1]) / (
                to_time - self._last_speed[0]
            )
        else:
            accel = 0.0
        while time + 1e-9 < to_time:
            step = min(self.sample_period, to_time - time)
            if abs(step - self.sample_period) <= 1e-9:
                A, B = self.A, self.B
            else:
                A, B, _ = follower_relative_system(step)
            x = A @ x + B[:, 0] * accel
            if self._cov is not None:
                self._cov = A @ self._cov @ A.T
            time += step
        x = x.copy()
        x[0] = max(0.0, x[0])
        self._state = (time, x)

    def forecast(
        self, time: float, follower_speed: Optional[float] = None
    ) -> Tuple[float, float]:
        """Model-rolled ``(gap, Δv)`` from the last reconstructed state."""
        if follower_speed is None:
            raise ValueError(
                "SecureReconstructionEstimator requires the trusted follower speed"
            )
        if not self.trained:
            raise EstimatorNotTrainedError(
                "secure-reconstruction estimator has no solved window yet"
            )
        self._roll(time, follower_speed)
        self._last_speed = (time, follower_speed)
        x = self._state[1]
        gap = float(x[0]) - self.margin()
        return max(0.0, gap), float(x[1])

    def margin(self) -> float:
        """Current gap-uncertainty margin, metres (0 when disabled)."""
        if self._cov is None or self.margin_gain <= 0.0:
            return 0.0
        variance = max(0.0, float(self._cov[0, 0]))
        return self.margin_gain * float(np.sqrt(variance))
