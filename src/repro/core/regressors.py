"""Measurement-matrix (``h_k``) constructions for Algorithm 1.

The paper leaves the entries of the measurement matrix abstract ("h_k:
entries of measurement matrix").  Two standard choices are provided,
both usable by :class:`repro.core.predictor.ChannelPredictor`:

* :class:`PolynomialBasis` — ``h(t) = [1, τ, τ², ...]`` with a
  normalized time ``τ``; the RLS weights then describe a local
  polynomial trend of the channel, which extrapolates naturally during
  an attack.
* :class:`ARBasis` — ``h_k = [y_{k-1}, ..., y_{k-m}]``; the weights form
  an autoregressive one-step predictor, rolled forward recursively for
  multi-step forecasts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["RegressorBasis", "PolynomialBasis", "ARBasis"]


class RegressorBasis(ABC):
    """Builds the regressor ``h_k`` from the sample time and/or history."""

    @property
    @abstractmethod
    def n_params(self) -> int:
        """Length of the regressor / weight vector."""

    @property
    @abstractmethod
    def uses_history(self) -> bool:
        """True when regressors depend on past channel values."""

    @abstractmethod
    def regressor(
        self, normalized_time: float, history: Sequence[Tuple[float, float]]
    ) -> Optional[np.ndarray]:
        """Build ``h_k``, or return None when history is insufficient.

        Parameters
        ----------
        normalized_time:
            Sample time already normalized by the caller (dimensionless).
        history:
            Past ``(time, value)`` pairs, most recent last, *excluding*
            the sample the regressor is for.
        """


class PolynomialBasis(RegressorBasis):
    """Polynomial-in-time regressors ``h(τ) = [1, τ, ..., τ^degree]``.

    The caller is responsible for normalizing time so that ``τ`` stays
    of order one over the data window — this keeps the correlation
    matrix well-conditioned.
    """

    def __init__(self, degree: int = 1):
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        self.degree = int(degree)

    @property
    def n_params(self) -> int:
        return self.degree + 1

    @property
    def uses_history(self) -> bool:
        return False

    def regressor(
        self, normalized_time: float, history: Sequence[Tuple[float, float]]
    ) -> Optional[np.ndarray]:
        return np.power(float(normalized_time), np.arange(self.n_params))

    def __repr__(self) -> str:
        return f"PolynomialBasis(degree={self.degree})"


class ARBasis(RegressorBasis):
    """Autoregressive regressors ``h_k = [y_{k-1}, ..., y_{k-order}]``."""

    def __init__(self, order: int = 3):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = int(order)

    @property
    def n_params(self) -> int:
        return self.order

    @property
    def uses_history(self) -> bool:
        return True

    def regressor(
        self, normalized_time: float, history: Sequence[Tuple[float, float]]
    ) -> Optional[np.ndarray]:
        if len(history) < self.order:
            return None
        recent = [value for _, value in history[-self.order:]]
        # Most recent value first: h = [y_{k-1}, y_{k-2}, ...].
        return np.asarray(recent[::-1], dtype=float)

    def __repr__(self) -> str:
        return f"ARBasis(order={self.order})"
