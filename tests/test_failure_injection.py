"""Failure injection: sensor dropouts under and around attacks."""

import numpy as np
import pytest

from repro import FMCWRadarSensor, fig2_scenario, run
from repro.exceptions import ConfigurationError


class TestSensorDropouts:
    def test_dropout_rate_zero_by_default(self):
        sensor = FMCWRadarSensor(seed=0)
        outputs = [sensor.measure(float(k), 80.0, -1.0) for k in range(50)]
        assert all(not m.is_zero_output(1e-9) for m in outputs)

    def test_dropouts_produce_zero_outputs(self):
        sensor = FMCWRadarSensor(seed=0, dropout_rate=0.3)
        outputs = [sensor.measure(float(k), 80.0, -1.0) for k in range(200)]
        zeros = sum(m.is_zero_output(1e-9) for m in outputs)
        assert 30 < zeros < 90  # ~30%

    def test_jamming_energy_is_never_dropped(self):
        # A dropout models a faded echo; the jammer's energy still
        # arrives, so DoS corruption is unaffected.
        from repro.radar import JammerParameters
        from repro.radar.link_budget import jammer_received_power
        from repro.radar.sensor import AttackEffect

        sensor = FMCWRadarSensor(seed=0, dropout_rate=0.9)
        power = jammer_received_power(
            sensor.params, JammerParameters(), 80.0
        )
        effect = AttackEffect(jammer_noise_power=power)
        outputs = [
            sensor.measure(float(k), 80.0, -1.0, effect=effect) for k in range(50)
        ]
        assert all(not m.is_zero_output(1e-9) for m in outputs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FMCWRadarSensor(dropout_rate=1.0)
        with pytest.raises(ConfigurationError):
            FMCWRadarSensor(dropout_rate=-0.1)


class TestDefenseUnderDropouts:
    @pytest.fixture(scope="class")
    def dropout_scenario(self):
        return fig2_scenario("dos", dropout_rate=0.05)

    def test_no_false_positives_from_dropouts(self, dropout_scenario):
        """A dropout is a zero output — the same value an honest
        challenge produces — so it can never look like an attack."""
        result = run(dropout_scenario, attack_enabled=False, defended=True)
        assert all(not e.attack_detected for e in result.detection_events)

    def test_dropouts_bridged_by_estimates(self, dropout_scenario):
        result = run(dropout_scenario, attack_enabled=False, defended=True)
        # Some non-challenge instants were estimated (the dropouts)...
        schedule = dropout_scenario.schedule()
        estimated = result.array("estimated_flag")
        times = result.times
        non_challenge_estimated = sum(
            flag == 1.0
            for t, flag in zip(times, estimated)
            if not schedule.is_challenge(float(t))
        )
        assert non_challenge_estimated > 0
        # ...and the controller never saw a bogus zero distance.
        safe = result.array("safe_distance")
        in_track = times > 10.0
        assert np.min(safe[in_track]) > 1.0

    def test_detection_still_exact_under_dropouts(self, dropout_scenario):
        result = run(dropout_scenario, defended=True)
        assert result.detection_times == [182.0]

    def test_defended_run_safe_under_dropouts(self, dropout_scenario):
        for seed in (2017, 7):
            result = run(
                dropout_scenario.with_overrides(sensor_seed=seed), defended=True
            )
            assert not result.collided

    def test_undefended_tracker_coasts_through_dropouts(self, dropout_scenario):
        result = run(dropout_scenario, attack_enabled=False, defended=False)
        assert not result.collided
