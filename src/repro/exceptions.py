"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "RadarRangeError",
    "EstimatorNotTrainedError",
    "SimulationError",
    "SpectralEstimationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A parameter object was constructed with invalid values."""


class RadarRangeError(ReproError):
    """A target lies outside the radar's operating range envelope."""


class EstimatorNotTrainedError(ReproError):
    """A predictor was asked to forecast before observing any samples."""


class SimulationError(ReproError):
    """The closed-loop simulation reached an invalid state."""


class SpectralEstimationError(ReproError):
    """Root-MUSIC could not extract the requested number of frequencies."""
