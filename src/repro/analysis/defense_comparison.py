"""Head-to-head comparison of the defense strategies on one scenario.

Shared by the markdown report's "Defense comparison" panel and
``benchmarks/bench_defense_comparison.py`` so both always agree on what
was run.  For a given attack scenario the comparison executes:

* ``undefended`` — raw sensing through the coasting tracker;
* ``rls`` — the paper's CRA + per-channel RLS substitution;
* ``dead_reckoning`` — CRA + leader-velocity RLS dead reckoning;
* ``secure_reconstruction`` — CRA + sliding-window secure state
  reconstruction (:mod:`repro.defense`);
* ``safety_filter`` — the RLS pipeline plus the control-barrier clamp;
* ``safety_filter (detection off)`` — the clamp alone, with the CRA
  challenge schedule emptied: demonstrates that the actuation-layer
  guarantee does not depend on detection firing at all;
* ``combined`` — secure reconstruction feeding the safety filter.

Rows are plain dicts (markdown-table and JSON friendly), all floats at
full precision — rounding is the renderer's job.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.simulation.scenario import Scenario

__all__ = ["defense_variants", "compare_defenses"]


def defense_variants(
    scenario: Scenario,
) -> List[Tuple[str, Scenario, bool]]:
    """The ``(label, scenario, defended)`` runs the comparison executes."""
    defense = scenario.defense
    return [
        ("undefended", scenario, False),
        ("rls", scenario.with_overrides(
            defense=replace(
                defense, strategy="rls", estimator_kind="per_channel"
            )), True),
        ("dead_reckoning", scenario.with_overrides(
            defense=replace(
                defense, strategy="rls", estimator_kind="dead_reckoning"
            )), True),
        ("secure_reconstruction", scenario.with_overrides(
            defense=replace(defense, strategy="secure_reconstruction")), True),
        ("safety_filter", scenario.with_overrides(
            defense=replace(defense, strategy="safety_filter")), True),
        ("safety_filter (detection off)", scenario.with_overrides(
            challenge_times=(),
            defense=replace(defense, strategy="safety_filter")), True),
        ("combined", scenario.with_overrides(
            defense=replace(defense, strategy="combined")), True),
    ]


def _estimate_error(result) -> Optional[float]:
    """Mean |estimated gap − true gap| over the substituted steps, m."""
    estimated = result.array("estimated_flag") > 0.5
    if not np.any(estimated):
        return None
    error = (
        result.array("safe_distance")[estimated]
        - result.array("true_distance")[estimated]
    )
    return float(np.mean(np.abs(error)))


def compare_defenses(
    scenario: Scenario,
    *,
    workers: int = 1,
    cache: Any = "off",
    backend: Optional[str] = None,
) -> List[dict]:
    """Run every defense variant on ``scenario`` and tabulate the outcome.

    ``workers`` / ``cache`` / ``backend`` follow :func:`repro.run`.
    ``backend="vectorized"`` is downgraded to ``"auto"``: the stateful
    strategies are scalar-only by design (the blocker names them), so a
    hard vectorized demand could never run the full table.
    """
    from repro.facade import run

    if backend == "vectorized":
        backend = "auto"
    if cache is None:
        cache = "off"
    rows: List[dict] = []
    for label, variant, defended in defense_variants(scenario):
        result = run(
            variant,
            mode="single",
            workers=workers,
            attack_enabled=True,
            defended=defended,
            cache=cache,
            backend=backend,
        )
        detection_times = result.detection_times
        stats = result.defense_stats or {}
        rows.append(
            {
                "defense": label,
                "min_gap_m": float(result.min_gap()),
                "collided": result.collided,
                "detection_s": (
                    float(detection_times[0]) if detection_times else None
                ),
                "estimate_error_m": _estimate_error(result),
                # Subset-search observability (secure reconstruction
                # strategies only; None for the others).
                "subsets_searched": stats.get("subsets_searched"),
                "subsets_pruned": stats.get("subsets_pruned"),
            }
        )
    return rows
