"""Shared validation of the execution knobs.

Every execution entrypoint — :func:`repro.run`,
:func:`repro.simulation.batch.execute_batch`,
:func:`repro.simulation.batch.run_many` and the CLI commands built on
them — accepts the same three knobs with the same semantics:

* ``workers=`` — process count for the scalar engine's fan-out;
* ``cache=`` — run-store policy (normalized by
  :func:`repro.store.cache.resolve_cache`);
* ``backend=`` — which simulation engine executes the runs.

This module is the single source of truth for what the ``workers`` and
``backend`` knobs accept; a bad value raises
:class:`~repro.exceptions.ConfigurationError` naming the knob and the
allowed values, at every layer identically.  (``cache=`` validation
lives with the store in :mod:`repro.store.cache`, same error contract.)

Backends
--------
``"scalar"``
    The per-run python step loop
    (:class:`~repro.simulation.engine.CarFollowingSimulation`), fanned
    out over a process pool when ``workers > 1``.  The default.
``"vectorized"``
    The lock-step batch engine
    (:mod:`repro.simulation.vectorized`) — every spec must be
    vectorizable or the batch raises up front, naming the blocker.
``"auto"``
    Homogeneous groups of two or more vectorizable specs run on the
    vectorized engine; everything else degrades to the scalar engine
    (recorded per run in ``RunRecord.backend_used``, never an error).

``backend=None`` resolves to the :envvar:`REPRO_BACKEND` environment
variable when set, else ``"scalar"`` — so CI can re-run an unmodified
test suite on another backend.
"""

from __future__ import annotations

import operator
import os
from typing import Any, Optional

from repro.exceptions import ConfigurationError

__all__ = ["BACKENDS", "BACKEND_ENV_VAR", "resolve_backend", "validate_workers"]

#: Accepted string values of the ``backend=`` argument.
BACKENDS = ("auto", "scalar", "vectorized")

#: Environment variable consulted when ``backend=None`` (unset → scalar).
BACKEND_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: Optional[str]) -> str:
    """Normalize a ``backend=`` argument to one of :data:`BACKENDS`.

    ``None`` (the universal default) reads :data:`BACKEND_ENV_VAR`,
    falling back to ``"scalar"`` when the variable is unset or empty.
    Anything that is not one of the accepted strings — whether passed
    explicitly or smuggled in via the environment — raises
    :class:`~repro.exceptions.ConfigurationError` naming the knob and
    the allowed values.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "scalar"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {', '.join(BACKENDS)}; got {backend!r}"
        )
    return backend


def validate_workers(workers: Any) -> int:
    """Validate the ``workers=`` knob: a genuine integer >= 1.

    Numpy integer scalars are fine; booleans, floats and strings are
    not.  Raises :class:`~repro.exceptions.ConfigurationError` naming
    the knob and the constraint, identically at every entrypoint.
    """
    try:
        value = operator.index(workers)
    except TypeError:
        raise ConfigurationError(
            f"workers must be an integer >= 1, got {workers!r} "
            f"({type(workers).__name__})"
        ) from None
    if value < 1:
        raise ConfigurationError(f"workers must be an integer >= 1, got {value}")
    return value
