"""The control-barrier safety filter (repro.defense.safety_filter).

Unit-level: the CBF clamp math, the one-sided certified-gap track and
its jump rejection.  Engine-level: the actuation-layer guarantee — with
the challenge schedule emptied so detection never fires, the filter
alone keeps the DoS'd follower clear of the barrier's standstill
margin — and exact transparency on clean data.
"""

from dataclasses import replace

import numpy as np
import pytest

import repro
from repro.defense import SafetyFilter
from repro.exceptions import ConfigurationError


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_period": 0.0},
            {"headway": -1.0},
            {"minimum_gap": -1.0},
            {"gamma": 0.0},
            {"gamma": 1.5},
            {"leader_accel_bound": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            SafetyFilter(**kwargs)


class TestClampMath:
    def make(self, **kwargs):
        kwargs.setdefault("sample_period", 1.0)
        kwargs.setdefault("headway", 1.5)
        kwargs.setdefault("minimum_gap", 5.0)
        kwargs.setdefault("gamma", 0.5)
        return SafetyFilter(**kwargs)

    def test_barrier_none_before_first_sample(self):
        f = self.make()
        assert f.barrier(10.0) is None
        assert f.certified_gap is None

    def test_bound_formula(self):
        f = self.make()
        v_f, gap, rel_v = 10.0, 40.0, -2.0
        out = f.clamp(5.0, v_f, gap, rel_v)
        h = gap - 5.0 - 1.5 * v_f  # = 20
        expected_bound = (0.5 * h + 1.0 * rel_v) / (1.5 * 1.0 + 0.5)
        assert f.last_bound == pytest.approx(expected_bound)
        assert out == pytest.approx(expected_bound)  # 5.0 was above it
        assert f.interventions == 1

    def test_transparent_when_desired_is_admissible(self):
        f = self.make()
        out = f.clamp(0.2, 10.0, 80.0, 0.0)
        assert out == 0.2
        assert f.interventions == 0

    def test_actuator_floor_respected(self):
        f = self.make()
        # Deep barrier violation: bound far below the actuator floor.
        out = f.clamp(0.0, 30.0, 6.0, -10.0)
        assert out == f.min_acceleration

    def test_cbf_decrease_condition(self):
        # h(k+1) >= (1 - gamma) h(k) under the one-step kinematics when
        # the command sits exactly on the bound.
        f = self.make()
        v_f, gap, rel_v = 15.0, 60.0, -3.0
        u = f.clamp(99.0, v_f, gap, rel_v)  # forced onto the bound
        h0 = f.barrier(v_f)
        T = f.sample_period
        gap1 = gap + T * rel_v - 0.5 * T * T * u
        v_f1 = v_f + T * u
        h1 = gap1 - f.minimum_gap - f.headway * v_f1
        assert h1 >= (1.0 - f.gamma) * h0 - 1e-9


class TestCertifiedTrack:
    def make(self):
        return SafetyFilter(
            sample_period=1.0, leader_accel_bound=2.0, headway=1.0
        )

    def test_clean_track_follows_measurements(self):
        f = self.make()
        v_f = 10.0
        # Leader pulling away within the physical bound: the track
        # re-anchors to the sensor every step.
        for k, gap in enumerate([30.0, 30.5, 31.0, 31.5]):
            f.clamp(0.0, v_f, gap, 0.5)
        assert f.certified_gap == 31.5
        assert f.rejected_jumps == 0

    def test_jump_spoof_rejected(self):
        f = self.make()
        v_f = 10.0
        f.clamp(0.0, v_f, 30.0, 0.0)
        # +6 m delay-attack style jump: physically impossible in one
        # step, so the track ignores it (cap = T*max(0, rel_v) +
        # a_L*T^2/2 = 1.0 above the current 30 m).
        f.clamp(0.0, v_f, 36.0, 0.0)
        assert f.rejected_jumps == 1
        assert f.certified_gap == pytest.approx(31.0)

    def test_track_falls_freely(self):
        f = self.make()
        f.clamp(0.0, 10.0, 30.0, 0.0)
        f.clamp(0.0, 10.0, 12.0, -5.0)
        # Pessimism is safe: a collapse is accepted at once.
        assert f.certified_gap == 12.0
        assert f.rejected_jumps == 0

    def test_leader_speed_rise_rate_limited(self):
        f = self.make()
        v_f = 10.0
        f.clamp(0.0, v_f, 40.0, 0.0)  # leader speed certified at 10
        # Spoofed rel_v implies the leader gained 20 m/s in one second;
        # the certified leader speed may rise at most a_L*T = 2.
        f.clamp(0.0, v_f, 40.0, 20.0)
        assert f._certified_leader_speed == pytest.approx(12.0)

    def test_gap_never_negative(self):
        f = self.make()
        f.clamp(0.0, 10.0, -3.0, 0.0)
        assert f.certified_gap == 0.0


class TestEngineIntegration:
    def filter_scenario(self, factory, attack, **overrides):
        scenario = factory(attack)
        return scenario.with_overrides(
            defense=replace(scenario.defense, strategy="safety_filter"),
            **overrides,
        )

    @pytest.mark.parametrize("factory", [repro.fig2_scenario, repro.fig3_scenario])
    def test_dos_safe_without_detection(self, factory):
        # The actuation-layer guarantee: challenge schedule emptied, so
        # the CRA never fires, the attack is never detected, and the
        # spoofed measurements go straight to the controller — yet the
        # clamp keeps the follower clear of the standstill margin.
        scenario = self.filter_scenario(factory, "dos", challenge_times=())
        result = repro.run(scenario, attack_enabled=True, defended=True)
        assert not result.detection_times
        assert not result.collided
        assert result.min_gap() >= scenario.defense.filter_minimum_gap

    def test_clean_run_bit_equal_on_cruise(self):
        # On attack-free data with healthy margins the filter is exactly
        # transparent: every trace of the filtered run is bit-identical
        # to the unfiltered defended run.
        base = repro.fig3_scenario("dos")
        filtered = self.filter_scenario(repro.fig3_scenario, "dos")
        r_base = repro.run(base, attack_enabled=False, defended=True)
        r_filt = repro.run(filtered, attack_enabled=False, defended=True)
        for name in ("true_distance", "safe_distance", "follower_velocity"):
            np.testing.assert_array_equal(
                r_base.array(name), r_filt.array(name)
            )

    def test_filter_rescues_undefended_collision(self):
        # fig2a undefended collides; the same raw pipeline with only the
        # clamp added does not.
        scenario = self.filter_scenario(
            repro.fig2_scenario, "dos", challenge_times=()
        )
        undefended = repro.run(
            repro.fig2_scenario("dos"), attack_enabled=True, defended=False
        )
        assert undefended.collided
        defended = repro.run(scenario, attack_enabled=True, defended=True)
        assert not defended.collided
