"""Results ¶ (run-time) — Algorithm 1 wall-clock over the attack window.

The paper reports RLS run-times of 1.2e7 ns (jamming) and 1.3e7 ns
(delay injection) for estimating the k = 182..300 s attack window.  We
measure the same quantity — the total time Algorithm 1 spends training
on the 182 trusted samples plus forecasting the 118 attacked samples —
on our implementation and hardware.  Absolute numbers differ across
machines; the shape claim is that the per-window cost stays in the
millisecond class (real-time capable at 1 Hz sampling), and that the
cost scales as O(n²) in the number of RLS parameters.
"""

import time

import numpy as np

from conftest import emit
from repro.analysis import render_table
from repro.core import ChannelPredictor, PolynomialBasis, RLSEstimator


def _run_window(predictor: ChannelPredictor) -> float:
    """Train on 182 trusted samples, forecast 118 attacked ones."""
    rng = np.random.default_rng(0)
    for k in range(182):
        predictor.observe(float(k), 29.06 - 0.1082 * k + rng.normal(0, 0.12))
    for k in range(182, 300):
        predictor.forecast(float(k))
    return 0.0


def bench_results_rls_runtime(benchmark):
    def measure():
        rows = []
        for label in ("jamming window", "delay-injection window"):
            start = time.perf_counter_ns()
            _run_window(ChannelPredictor(basis=PolynomialBasis(1)))
            elapsed = time.perf_counter_ns() - start
            rows.append(
                {
                    "workload": label,
                    "measured_ns": elapsed,
                    "paper_ns": 1.2e7 if "jamming" in label else 1.3e7,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=3, iterations=1)

    # Real-time shape claim: well under one sample period (1 s).
    assert all(row["measured_ns"] < 1e9 for row in rows)

    # O(n²) scaling of one Algorithm 1 update.
    scaling_rows = []
    rng = np.random.default_rng(1)
    for n_params in (2, 4, 8, 16, 32):
        rls = RLSEstimator(n_params=n_params)
        h = rng.standard_normal(n_params)
        start = time.perf_counter_ns()
        for _ in range(2000):
            rls.update(h, 1.0)
        per_update = (time.perf_counter_ns() - start) / 2000
        scaling_rows.append({"n_params": n_params, "ns_per_update": round(per_update)})

    emit(
        "results_rls_runtime",
        "\n\n".join(
            [
                render_table(
                    rows,
                    title=(
                        "RLS run-time over one attack window "
                        "(paper: 1.2e7 / 1.3e7 ns in MATLAB; ours is the full "
                        "train+forecast loop in Python)"
                    ),
                ),
                render_table(
                    scaling_rows, title="Algorithm 1 per-update cost vs parameters"
                ),
            ]
        ),
    )
