"""Unified experiment facade: ``repro.run()``.

Historically the library grew one runner per experiment shape —
``run_single`` (one closed-loop run), ``run_figure_scenario`` (the
baseline / attacked / defended triple a figure panel overlays),
``run_monte_carlo`` (a seed sweep) and ``PlatoonSimulation`` (the
N-follower chain).  :func:`run` puts them behind one entrypoint:

>>> import repro
>>> result = repro.run(repro.fig2_scenario("dos"))                # single
>>> data = repro.run(repro.fig2_scenario("dos"), mode="figure")   # triple
>>> mc = repro.run(repro.fig2_scenario("dos"), mode="monte_carlo",
...                seeds=range(16), workers=4)                    # sweep

Accepted inputs
---------------
``scenario_or_spec`` may be:

* a :class:`~repro.simulation.scenario.Scenario` (modes ``"single"``,
  ``"figure"``, ``"monte_carlo"``);
* a :class:`~repro.simulation.platoon.PlatoonScenario` (mode
  ``"platoon"``, selected automatically);
* a ``dict`` in the declarative spec format of
  :mod:`repro.simulation.spec`;
* a path (``str`` / ``pathlib.Path``) to a JSON spec file.

Overrides
---------
To vary a scenario, derive it first:
``scenario.with_overrides(sensor_seed=7, horizon=250.0)`` returns a
copy with the given fields replaced — the facade deliberately takes a
finished scenario rather than a bag of kwargs.

Parallelism
-----------
``workers`` fans independent runs (the figure triple, Monte-Carlo
seeds) out over a process pool via :mod:`repro.simulation.batch`;
results are bit-identical to ``workers=1``.  Modes with a single run
ignore it.

Backends
--------
``backend=`` selects the engine executing the runs — ``"scalar"`` (the
per-run step loop, default), ``"vectorized"`` (homogeneous groups
advance in lock-step through :mod:`repro.simulation.vectorized`, with
bit-identical results) or ``"auto"`` (vectorize what qualifies, scalar
for the rest).  ``None`` reads the :envvar:`REPRO_BACKEND` environment
variable, falling back to scalar.

Deprecated aliases
------------------
The pre-existing names (``run_single``, ``run_figure_scenario``,
``run_monte_carlo``, ``run_platoon``) remain as thin aliases that
delegate here but are **deprecated** and emit ``DeprecationWarning``;
migrate::

    run_single(s, attack_enabled=a, defended=d)  →  run(s, attack_enabled=a, defended=d)
    run_figure_scenario(s, workers=w)            →  run(s, mode="figure", workers=w)
    run_monte_carlo(s, seeds, ...)               →  run(s, mode="monte_carlo", seeds=seeds, ...)
    run_platoon(p, attack_enabled=a)             →  run(p, attack_enabled=a)
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro import telemetry as _telemetry
from repro.exceptions import ConfigurationError
from repro.simulation import batch as _batch
from repro.simulation import monte_carlo as _monte_carlo
from repro.simulation import platoon as _platoon
from repro.simulation import runner as _runner
from repro.simulation import sweep as _sweep
from repro.simulation.knobs import resolve_backend, validate_workers
from repro.simulation.monte_carlo import MonteCarloSummary
from repro.simulation.platoon import PlatoonResult, PlatoonScenario
from repro.simulation.results import SimulationResult
from repro.simulation.runner import FigureData
from repro.simulation.scenario import Scenario
from repro.simulation.sweep import SweepCell, SweepResult

__all__ = [
    "run",
    "run_single",
    "run_figure_scenario",
    "run_monte_carlo",
    "run_platoon",
]

_MODES = ("single", "figure", "monte_carlo", "platoon", "sweep")


def _resolve_scenario(
    scenario_or_spec: Any,
) -> Union[Scenario, PlatoonScenario]:
    """Accept a scenario object, a spec dict, or a spec-file path."""
    if isinstance(scenario_or_spec, (Scenario, PlatoonScenario)):
        return scenario_or_spec
    if isinstance(scenario_or_spec, dict):
        from repro.simulation.spec import scenario_from_dict

        return scenario_from_dict(scenario_or_spec)
    if isinstance(scenario_or_spec, (str, Path)):
        from repro.simulation.spec import load_scenario

        return load_scenario(scenario_or_spec)
    raise ConfigurationError(
        "scenario_or_spec must be a Scenario, PlatoonScenario, spec dict "
        f"or spec path, got {type(scenario_or_spec).__name__}"
    )


def _cache_active(cache: Any) -> bool:
    """Whether a ``cache=`` argument engages the run store at all."""
    return cache is not None and cache != "off"


def run(
    scenario_or_spec: Any,
    *,
    mode: str = "single",
    workers: int = 1,
    seeds: Union[int, Sequence[int], None] = None,
    attack_enabled: bool = True,
    defended: bool = True,
    defense: Optional[str] = None,
    cache: Any = "off",
    backend: Optional[str] = None,
    sweep: Optional[dict] = None,
) -> Union[
    SimulationResult, FigureData, MonteCarloSummary, PlatoonResult, SweepResult
]:
    """Run an experiment described by a scenario or a declarative spec.

    Parameters
    ----------
    scenario_or_spec:
        A :class:`Scenario` / :class:`PlatoonScenario`, a spec dict, or
        a path to a JSON spec file.  Use
        :meth:`Scenario.with_overrides` to vary fields before running.
    mode:
        * ``"single"`` — one closed-loop run → :class:`SimulationResult`.
        * ``"figure"`` — the (baseline, attacked, defended) triple →
          :class:`FigureData`.
        * ``"monte_carlo"`` — a seed sweep → :class:`MonteCarloSummary`;
          requires ``seeds``.
        * ``"platoon"`` — the N-follower chain → :class:`PlatoonResult`;
          selected automatically for :class:`PlatoonScenario` inputs.
        * ``"sweep"`` — an adaptive variance-aware Monte-Carlo sweep →
          :class:`~repro.simulation.sweep.SweepResult`; configured via
          ``sweep``.
    workers:
        Process count for modes with independent runs (``"figure"``,
        ``"monte_carlo"``); results are identical to ``workers=1``.
    seeds:
        Monte-Carlo seeds: an explicit sequence, or an ``int`` N to
        derive N seeds deterministically from the scenario's
        ``sensor_seed`` (via :func:`repro.simulation.derive_seeds`).
    attack_enabled, defended:
        Run toggles for ``"single"`` and ``"monte_carlo"`` (the figure
        triple runs all combinations; platoon defense is configured on
        the scenario itself).
    defense:
        Convenience override of the scenario's defense *strategy*
        (:data:`~repro.simulation.scenario.DEFENSE_STRATEGIES`:
        ``"rls"``, ``"secure_reconstruction"``, ``"safety_filter"``,
        ``"combined"``); equivalent to deriving the scenario with a
        replaced ``defense.strategy`` first.  ``None`` (default) keeps
        the scenario's configured strategy.  Not applicable to platoon
        scenarios.
    cache:
        Run-store policy: ``"off"`` (default, pre-store behavior),
        ``"readonly"`` (serve fingerprint hits from the persistent
        store, never write), or ``"readwrite"`` (serve hits, store
        computed misses).  A :class:`repro.store.RunStore` or
        :class:`repro.store.CacheBinding` selects an explicit store.
        Cached replays are bit-identical to fresh runs.  Platoon runs
        are uncacheable and always compute.
    backend:
        Engine selection, shared verbatim with
        :func:`repro.simulation.batch.execute_batch`: ``"scalar"``,
        ``"vectorized"``, ``"auto"``, or ``None`` (default — read
        :envvar:`REPRO_BACKEND`, else scalar).  Results are
        bit-identical across backends.  ``"vectorized"`` raises
        :class:`~repro.exceptions.ConfigurationError` for runs the
        vectorized engine cannot take (platoons, IDM followers, ...);
        ``"auto"`` runs those on the scalar engine instead.
    sweep:
        Options for ``mode="sweep"``, forwarded to
        :func:`repro.simulation.sweep.run_sweep` (``metric``,
        ``target_ci``, ``min_runs``, ``max_runs``, ``round_size``,
        ``schedule``, ``base_seed``, ``confidence``).  ``cells`` may
        name an explicit grid of
        :class:`~repro.simulation.sweep.SweepCell`; without it the
        sweep runs a single cell built from the scenario and the
        ``attack_enabled`` / ``defended`` toggles.  ``workers`` /
        ``cache`` / ``backend`` come from the facade arguments, not
        the dict.
    """
    scenario = _resolve_scenario(scenario_or_spec)
    workers = validate_workers(workers)
    backend = resolve_backend(backend)

    if defense is not None:
        from dataclasses import replace as _replace

        from repro.simulation.scenario import DEFENSE_STRATEGIES

        if isinstance(scenario, PlatoonScenario):
            raise ConfigurationError(
                "defense= does not apply to platoon scenarios; configure "
                "the platoon's defense on the scenario itself"
            )
        if defense not in DEFENSE_STRATEGIES:
            raise ConfigurationError(
                f"defense must be one of {', '.join(DEFENSE_STRATEGIES)}; "
                f"got {defense!r}"
            )
        scenario = scenario.with_overrides(
            defense=_replace(scenario.defense, strategy=defense)
        )

    if isinstance(scenario, PlatoonScenario) and mode == "single":
        mode = "platoon"
    if mode not in _MODES:
        raise ConfigurationError(
            f"mode must be one of {', '.join(_MODES)}; got {mode!r}"
        )
    if isinstance(scenario, PlatoonScenario) != (mode == "platoon"):
        raise ConfigurationError(
            f"mode {mode!r} does not fit scenario type "
            f"{type(scenario).__name__}"
        )
    if mode == "platoon" and backend == "vectorized":
        raise ConfigurationError(
            "backend='vectorized' cannot run platoon scenarios (the "
            "N-follower chain couples its runs); use backend='scalar' "
            "or 'auto'"
        )
    if sweep is not None and mode != "sweep":
        raise ConfigurationError(
            f"the sweep= argument only applies to mode='sweep' (got "
            f"mode={mode!r})"
        )

    # PlatoonScenario has no name field; fall back to the type name.
    label = getattr(scenario, "name", type(scenario).__name__)
    with _telemetry.span("facade.run", mode=mode, scenario=label):
        if mode == "single":
            if _cache_active(cache) or backend == "vectorized":
                (result,) = _batch.run_many(
                    [
                        _batch.RunSpec(
                            scenario,
                            attack_enabled=attack_enabled,
                            defended=defended,
                            tag=scenario.name,
                        )
                    ],
                    cache=cache if _cache_active(cache) else None,
                    backend=backend,
                )
                return result
            # "auto" keeps a lone run on the scalar engine (a vector
            # group of one has no lock-step win), so the scalar path
            # handles both "scalar" and "auto".
            return _runner.run_single(
                scenario, attack_enabled=attack_enabled, defended=defended
            )
        if mode == "figure":
            return _runner.run_figure_scenario(
                scenario,
                workers=workers,
                cache=cache if _cache_active(cache) else None,
                backend=backend,
            )
        if mode == "monte_carlo":
            if seeds is None:
                raise ConfigurationError("mode='monte_carlo' requires seeds")
            if isinstance(seeds, int):
                seeds = _batch.derive_seeds(scenario.sensor_seed, seeds)
            return _monte_carlo.run_monte_carlo(
                scenario,
                seeds,
                attack_enabled=attack_enabled,
                defended=defended,
                workers=workers,
                cache=cache if _cache_active(cache) else None,
                backend=backend,
            )
        if mode == "sweep":
            options = dict(sweep or {})
            for reserved in ("workers", "cache", "backend"):
                if reserved in options:
                    raise ConfigurationError(
                        f"pass {reserved}= as a run() argument, not inside "
                        f"the sweep dict"
                    )
            cells = options.pop("cells", None)
            if cells is None:
                cells = [
                    SweepCell(
                        key=label,
                        scenario=scenario,
                        attack_enabled=attack_enabled,
                        defended=defended,
                    )
                ]
            return _sweep.run_sweep(
                cells,
                workers=workers,
                cache=cache if _cache_active(cache) else None,
                backend=backend,
                **options,
            )
        return _platoon.run_platoon(scenario, attack_enabled=attack_enabled)


def _warn_deprecated_alias(name: str, replacement: str) -> None:
    """One ``DeprecationWarning`` per alias call, pointing at the caller."""
    warnings.warn(
        f"repro.{name}() is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_single(
    scenario: Scenario, attack_enabled: bool = True, defended: bool = True
) -> SimulationResult:
    """Deprecated alias for ``run(scenario, ...)`` (original API).

    .. deprecated:: 1.1
       Use ``repro.run(scenario, attack_enabled=..., defended=...)``.
    """
    _warn_deprecated_alias("run_single", "repro.run(scenario, ...)")
    return run(
        scenario, mode="single", attack_enabled=attack_enabled, defended=defended
    )


def run_figure_scenario(
    scenario: Scenario, *, workers: int = 1, cache: Any = "off"
) -> FigureData:
    """Deprecated alias for ``run(scenario, mode='figure', ...)``.

    .. deprecated:: 1.1
       Use ``repro.run(scenario, mode="figure", ...)``.
    """
    _warn_deprecated_alias(
        "run_figure_scenario", 'repro.run(scenario, mode="figure", ...)'
    )
    return run(scenario, mode="figure", workers=workers, cache=cache)


def run_monte_carlo(
    scenario: Scenario,
    seeds: Sequence[int],
    attack_enabled: bool = True,
    defended: bool = True,
    workers: int = 1,
    cache: Any = "off",
) -> MonteCarloSummary:
    """Deprecated alias for ``run(scenario, mode='monte_carlo', ...)``.

    .. deprecated:: 1.1
       Use ``repro.run(scenario, mode="monte_carlo", seeds=...)``.
    """
    _warn_deprecated_alias(
        "run_monte_carlo", 'repro.run(scenario, mode="monte_carlo", seeds=...)'
    )
    return run(
        scenario,
        mode="monte_carlo",
        seeds=seeds,
        attack_enabled=attack_enabled,
        defended=defended,
        workers=workers,
        cache=cache,
    )


def run_platoon(
    scenario: PlatoonScenario, attack_enabled: bool = True
) -> PlatoonResult:
    """Deprecated alias for ``run(scenario, mode='platoon', ...)``.

    .. deprecated:: 1.1
       Use ``repro.run(scenario, ...)`` (platoon mode is auto-selected).
    """
    _warn_deprecated_alias("run_platoon", "repro.run(scenario, ...)")
    return run(scenario, mode="platoon", attack_enabled=attack_enabled)
