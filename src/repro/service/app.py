"""The simulation service: routes, request handling, and the ``serve``
entry point.

Endpoint contract (see ``docs/service_api.md`` for the full schema):

``POST /v1/runs``
    Submit a declarative scenario spec (``spec_version=1`` dict, flat
    or wrapped under ``"scenario"``, plus ``attack_enabled`` /
    ``defended`` / ``backend`` / ``cache`` knobs).  A store hit
    answers ``200`` with the result summary immediately; a miss
    enqueues and answers ``202`` with a job id — identical concurrent
    requests coalesce onto one execution.  ``?wait=1`` (or
    ``"wait": true`` in the body) blocks until the run finishes and
    answers like a hit.
``GET /v1/jobs/{id}``
    Job status (``queued`` / ``running`` / ``done`` / ``failed``) with
    ``backend_used`` / ``degraded_reason`` provenance.
``GET /v1/runs/{fingerprint}``
    The stored result: summary always, the full bit-exact trace
    payload with ``?trace=1``.
``GET /v1/store/stats``
    The run store's :meth:`~repro.store.runstore.StoreStats.as_dict`
    — the same serialization ``repro cache stats --json`` prints.
``GET /healthz``
    Liveness plus job-table counts.

Every request runs inside a ``service.request`` telemetry span
(method, route, status) and bumps the ``service.requests`` counter;
submissions additionally count ``service.cache_hit`` /
``service.coalesced`` / ``service.executed`` (see
:mod:`repro.service.jobs`).  All responses are JSON; errors carry an
``"error"`` message and the appropriate 4xx/5xx status.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import time
from typing import Any, Dict, Optional, Tuple

from repro import telemetry as _telemetry
from repro.exceptions import ConfigurationError
from repro.service.http import HTTPError, Request, read_request, write_json
from repro.service.jobs import Job, JobManager
from repro.simulation.io import result_to_dict
from repro.store.runstore import RunStore

__all__ = ["ServiceApp", "serve", "serve_async"]

#: Request-body keys that are execution knobs, not scenario fields —
#: stripped before the remainder is treated as a flat spec dict.
_KNOB_KEYS = ("scenario", "spec", "attack_enabled", "defended", "backend",
              "cache", "workers", "wait")

Reply = Tuple[int, Any]


def _split_request(body: Any) -> Tuple[dict, Dict[str, Any]]:
    """Split a ``POST /v1/runs`` body into (spec dict, knobs).

    Accepts the wrapped form (``{"scenario": {...}, "backend": ...}``)
    and the flat form (the spec dict itself with knob keys mixed in).
    """
    if not isinstance(body, dict):
        raise HTTPError(400, "request body must be a JSON object")
    knobs = {key: body[key] for key in _KNOB_KEYS if key in body}
    spec = knobs.pop("scenario", knobs.pop("spec", None))
    if spec is None:
        spec = {k: v for k, v in body.items() if k not in _KNOB_KEYS}
    if not isinstance(spec, dict) or not spec:
        raise HTTPError(
            400,
            "no scenario spec in request body (pass the spec_version=1 "
            "dict flat, or under a 'scenario' key)",
        )
    return spec, knobs


class ServiceApp:
    """The HTTP application: a :class:`JobManager` behind JSON routes.

    Construct from inside a running event loop (the job manager owns
    asyncio primitives).  The app does not own ``store`` — the caller
    (usually :func:`serve_async`) closes it.
    """

    def __init__(
        self,
        store: RunStore,
        *,
        workers: int = 2,
        backend: Optional[str] = None,
        executor: str = "process",
        runner: Optional[Any] = None,
        max_retained_jobs: Optional[int] = None,
    ) -> None:
        self.store = store
        kwargs = (
            {} if max_retained_jobs is None
            else {"max_retained_jobs": max_retained_jobs}
        )
        self.jobs = JobManager(
            store, workers=workers, backend=backend,
            executor=executor, runner=runner, **kwargs,
        )
        self.started_at = time.time()
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and start serving; returns the ``asyncio`` server."""
        self._server = await asyncio.start_server(self._on_client, host, port)
        return self._server

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting connections and cancel outstanding jobs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.jobs.close()

    # -- connection handling -------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        route = "?"
        try:
            try:
                request = await read_request(reader)
                if request is None:  # client connected and went away
                    return
                route = f"{request.method} {request.path}"
                with _telemetry.span("service.request", route=route) as span:
                    status, payload = await self.handle(request)
                    span.set(status=status)
            except HTTPError as exc:
                status, payload = exc.status, {"error": exc.message}
            except ConfigurationError as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:  # keep the loop alive, report 500
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
                _telemetry.incr("service.errors")
            _telemetry.incr("service.requests")
            await write_json(writer, status, payload)
        except (ConnectionError, OSError):  # client vanished mid-reply
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # -- routing -------------------------------------------------------

    async def handle(self, request: Request) -> Reply:
        """Route one parsed request to its handler."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return self._healthz()
        if path == "/v1/runs":
            if method != "POST":
                return 405, {"error": "use POST to submit a run"}
            return await self._post_run(request)
        if path == "/v1/store/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.store.stats().as_dict()
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "use GET"}
            return self._get_job(path[len("/v1/jobs/"):])
        if path.startswith("/v1/runs/"):
            if method != "GET":
                return 405, {"error": "use GET"}
            return self._get_run(path[len("/v1/runs/"):], request.flag("trace"))
        return 404, {"error": f"no route for {method} {path}"}

    # -- handlers ------------------------------------------------------

    def _healthz(self) -> Reply:
        return 200, {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "store": str(self.store.path),
            "jobs": self.jobs.job_counts(),
            "executed_runs": self.jobs.executed_runs,
            "evicted_jobs": self.jobs.evicted_jobs,
            "max_retained_jobs": self.jobs.max_retained_jobs,
            "degraded_reason": self.jobs.degraded_reason,
        }

    async def _post_run(self, request: Request) -> Reply:
        spec, knobs = _split_request(request.json())
        submission = self.jobs.submit(
            spec,
            attack_enabled=bool(knobs.get("attack_enabled", True)),
            defended=bool(knobs.get("defended", True)),
            backend=knobs.get("backend"),
            cache=knobs.get("cache", "readwrite"),
        )
        if submission.cache_hit:
            result = submission.result
            return 200, {
                "status": "done",
                "cache_hit": True,
                "fingerprint": submission.fingerprint,
                "result": result.summary().as_dict(),
                "links": {"result": f"/v1/runs/{submission.fingerprint}"},
            }
        job = submission.job
        if request.flag("wait") or bool(knobs.get("wait", False)):
            await job.done.wait()
            status = 200 if job.status == "done" else 500
            payload = job.as_dict()
            payload["cache_hit"] = False
            payload["links"] = {"result": f"/v1/runs/{job.fingerprint}"}
            return status, payload
        return 202, {
            "status": job.status,
            "cache_hit": False,
            "coalesced": submission.coalesced,
            "job_id": job.job_id,
            "fingerprint": job.fingerprint,
            "links": {
                "job": f"/v1/jobs/{job.job_id}",
                "result": f"/v1/runs/{job.fingerprint}",
            },
        }

    def _get_job(self, job_id: str) -> Reply:
        job = self.jobs.get_job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, job.as_dict()

    def _get_run(self, fingerprint: str, with_trace: bool) -> Reply:
        result = self.store.get(fingerprint)
        if result is None:
            return 404, {"error": f"no stored run {fingerprint!r}"}
        payload: Dict[str, Any] = {
            "fingerprint": fingerprint,
            "name": result.name,
            "summary": result.summary().as_dict(),
        }
        if with_trace:
            payload["payload"] = result_to_dict(result)
        return 200, payload


# ----------------------------------------------------------------------
# blocking entry point (the CLI's `repro serve`)
# ----------------------------------------------------------------------


async def serve_async(
    host: str = "127.0.0.1",
    port: int = 8077,
    *,
    store_path: Optional[str] = None,
    store_shards: Optional[int] = None,
    workers: int = 2,
    backend: Optional[str] = None,
    executor: str = "process",
    max_retained_jobs: Optional[int] = None,
    out=None,
    err=None,
) -> int:
    """Run the service until SIGINT/SIGTERM (or cancellation).

    Prints the base URL as the first line on ``out`` (machine-readable
    — scripts parse it to find an ephemeral ``--port 0`` binding) and
    human diagnostics on ``err``.  With ``store_shards`` the service
    binds a :class:`~repro.store.sharded.ShardedRunStore` (at
    ``store_path`` if given, else the default shard directory) instead
    of a single database file; ``GET /v1/store/stats`` then includes
    the per-shard breakdown.
    """
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    if store_shards is not None:
        from repro.store.sharded import (
            ShardedRunStore,
            default_sharded_store_path,
        )

        store = ShardedRunStore(
            store_path if store_path is not None else default_sharded_store_path(),
            shards=store_shards,
        )
    else:
        store = RunStore(store_path)
    app = ServiceApp(
        store,
        workers=workers,
        backend=backend,
        executor=executor,
        max_retained_jobs=max_retained_jobs,
    )
    server = await app.start(host, port)
    bound = server.sockets[0].getsockname()
    print(f"http://{bound[0]}:{bound[1]}", file=out, flush=True)
    print(
        f"repro.service listening on {bound[0]}:{bound[1]} "
        f"(store {store.path}, workers {app.jobs.workers}, "
        f"backend {app.jobs.backend}); Ctrl-C to stop",
        file=err,
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            registered.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-unix loops: rely on KeyboardInterrupt in serve()
    try:
        await stop.wait()
    finally:
        for sig in registered:
            loop.remove_signal_handler(sig)
        await app.close()
        store.close()
        print("repro.service stopped", file=err, flush=True)
    return 0


def serve(
    host: str = "127.0.0.1",
    port: int = 8077,
    *,
    store_path: Optional[str] = None,
    store_shards: Optional[int] = None,
    workers: int = 2,
    backend: Optional[str] = None,
    executor: str = "process",
    max_retained_jobs: Optional[int] = None,
    out=None,
    err=None,
) -> int:
    """Blocking wrapper around :func:`serve_async`; returns exit code."""
    try:
        return asyncio.run(
            serve_async(
                host,
                port,
                store_path=store_path,
                store_shards=store_shards,
                workers=workers,
                backend=backend,
                executor=executor,
                max_retained_jobs=max_retained_jobs,
                out=out,
                err=err,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - unix uses the handler
        return 0
