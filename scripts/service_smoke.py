#!/usr/bin/env python
"""End-to-end smoke test of ``repro serve`` as a real subprocess.

Exercises the deployment surface CI cares about, with no test
harness in the loop:

1. start ``python -m repro serve --port 0`` against a temporary store
   and read the bound base URL from its first stdout line;
2. ``GET /healthz`` answers ok;
3. ``POST /v1/runs`` with a small fig2a spec returns 202 and the job
   polls through to ``done``;
4. re-POSTing the identical spec returns 200 with ``cache_hit`` true
   and the same fingerprint;
5. ``GET /v1/store/stats`` counts the stored run;
6. SIGINT shuts the server down cleanly (exit code 0).

Exits non-zero with a diagnostic on any failure.  Uses only the
standard library on the client side (urllib) so it doubles as an
integration check that the service speaks plain HTTP/JSON.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, SRC)

from repro import fig2_scenario  # noqa: E402
from repro.simulation.spec import scenario_to_dict  # noqa: E402

POLL_DEADLINE_S = 60.0


def request(method, url, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def fail(message, server=None):
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    if server is not None:
        server.kill()
        server.wait()
    return 1


def main():
    spec = scenario_to_dict(fig2_scenario("dos", horizon=60.0))
    with tempfile.TemporaryDirectory() as tmp:
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
                "--store",
                os.path.join(tmp, "smoke.sqlite"),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONUNBUFFERED": "1",
                "PYTHONPATH": SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
            },
        )
        base = server.stdout.readline().strip()
        if not base.startswith("http://"):
            return fail(f"expected base URL on stdout, got {base!r}", server)
        print(f"serving at {base}")

        status, health = request("GET", base + "/healthz")
        if status != 200 or health.get("status") != "ok":
            return fail(f"healthz: {status} {health}", server)

        status, queued = request("POST", base + "/v1/runs", spec)
        if status != 202 or queued.get("cache_hit") is not False:
            return fail(f"cold POST: {status} {queued}", server)
        job_url = base + f"/v1/jobs/{queued['job_id']}"

        deadline = time.monotonic() + POLL_DEADLINE_S
        while True:
            status, job = request("GET", job_url)
            if status != 200:
                return fail(f"job poll: {status} {job}", server)
            if job["status"] in ("done", "failed"):
                break
            if time.monotonic() > deadline:
                return fail(f"job never finished: {job}", server)
            time.sleep(0.1)
        if job["status"] != "done":
            return fail(f"job failed: {job}", server)
        print(f"job {queued['job_id']} done (backend={job['backend_used']})")

        status, hit = request("POST", base + "/v1/runs", spec)
        if status != 200 or hit.get("cache_hit") is not True:
            return fail(f"warm POST was not a cache hit: {status} {hit}", server)
        if hit["fingerprint"] != queued["fingerprint"]:
            return fail("fingerprint changed between identical POSTs", server)
        print(f"cache hit on {hit['fingerprint'][:12]}...")

        status, stats = request("GET", base + "/v1/store/stats")
        if status != 200 or stats.get("entries") != 1:
            return fail(f"store stats: {status} {stats}", server)

        server.send_signal(signal.SIGINT)
        code = server.wait(timeout=30)
        if code != 0:
            return fail(f"server exited {code} on SIGINT")
        print("service smoke: OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
