"""Perf bench — incremental secure-reconstruction solver runtime.

PR 10 replaced the defense's per-window, per-subset python solve with
batched subset kernels (one stacked build per window geometry, one
vectorized data pass over all C(p, p-s) subsets) and an incremental
window solver that caches those kernels across the sliding window
(:mod:`repro.defense.reconstruction`).  This bench pins the claim:

* on the fig2a closed-loop configuration (1 s sampling, window 8,
  s = 1) the ``incremental`` estimator runs each trusted-sample step
  >= 5x faster than the ``from_scratch`` baseline that rebuilds
  :class:`SecureStateReconstruct` every window;
* the two modes are **bit-identical** — every candidate of every
  window (x0, x_end, residual, covariance, subset bookkeeping)
  compares equal with ``==``/``array_equal``, no tolerance — including
  across the non-uniform windows left by challenge-instant holes;
* subset-search scaling at p = 2/4/6 sensors, including the historical
  pre-batching ``solve_naive`` loop as a third column.

The table is written to ``BENCH_defense_runtime.json`` at the repo
root (committed, like ``BENCH_defense.json``).  Set
``REPRO_BENCH_SMOKE`` to shrink the workloads and skip the timing
floor (CI runs the smoke mode; the equivalence assertions always run).
"""

import gc
import json
import os
import time
from math import comb
from pathlib import Path

import numpy as np

from conftest import emit
from repro import fig2_scenario
from repro.analysis import render_table
from repro.defense.estimator import SecureReconstructionEstimator
from repro.defense.reconstruction import (
    IncrementalWindowSolver,
    SecureStateReconstruct,
    SSProblem,
)
from repro.types import RadarMeasurement

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_defense_runtime.json"
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SPEEDUP_FLOOR = 5.0
#: Trusted-sample steps in the closed-loop stream / timing repeats.
N_STEPS = 60 if SMOKE else 400
REPEATS = 1 if SMOKE else 5
#: Sensor counts of the subset-search scaling sweep.
SENSOR_COUNTS = (2, 4, 6)
SCALING_STEPS = 20 if SMOKE else 120
MPH = 0.44704


def _fig2a_stream(n_steps, sample_period, *, hole_every=None):
    """A deterministic trusted-sample stream shaped like fig2a.

    Leader at 65 mph braking at the panel's -0.1082 m/s², follower at
    67 mph closing under a constant-time-headway law from the 100 m
    initial gap; a small deterministic ripple stands in for sensor
    noise so residuals are non-trivial.  ``hole_every`` drops every
    k-th sample the way CRA challenge instants do, producing the
    non-uniform windows the incremental solver must handle.
    """
    gap, v_l, v_f = 100.0, 65.0 * MPH, 67.0 * MPH
    samples = []
    k = 0
    while len(samples) < n_steps:
        k += 1
        a_l = -0.1082
        a_f = float(
            np.clip(0.05 * (gap - 1.5 * v_f - 10.0) + 0.5 * (v_l - v_f), -3.0, 2.0)
        )
        gap += sample_period * (v_l - v_f) + 0.5 * sample_period**2 * (a_l - a_f)
        gap = max(gap, 1.0)
        v_l = max(v_l + sample_period * a_l, 0.0)
        v_f = max(v_f + sample_period * a_f, 0.0)
        if hole_every and k % hole_every == 0:
            continue  # challenge instant — no trusted sample this step
        t = k * sample_period
        measurement = RadarMeasurement(
            time=t,
            distance=gap + 0.05 * np.sin(1.7 * k),
            relative_velocity=(v_l - v_f) + 0.02 * np.cos(2.3 * k),
        )
        samples.append((measurement, v_f + 0.01 * np.sin(0.9 * k)))
    return samples


def _make_estimator(scenario, mode):
    """Mirror the engine's estimator construction for the scenario."""
    defense = scenario.defense
    return SecureReconstructionEstimator(
        sample_period=scenario.sample_period,
        window=defense.secure_window,
        sparsity=defense.secure_sparsity,
        residual_threshold=defense.secure_residual_threshold,
        margin_gain=defense.margin_gain,
        solver_mode=mode,
    )


def _time_observe(scenario, mode, samples, repeats):
    """Best-of-N mean per-step observe() time, seconds."""
    best = float("inf")
    for _ in range(repeats):
        estimator = _make_estimator(scenario, mode)
        # Collections triggered by earlier phases' garbage would land
        # mid-loop and smear the per-step numbers.
        gc.collect()
        start = time.perf_counter()
        for measurement, speed in samples:
            estimator.observe(measurement, speed)
        best = min(best, time.perf_counter() - start)
    return best / len(samples), estimator


def _results_equal(a, b):
    """Bitwise equality of two ReconstructionResults (no tolerance)."""
    if a is None or b is None:
        return a is b
    if (
        a.guaranteed != b.guaranteed
        or a.subsets_searched != b.subsets_searched
        or a.subsets_pruned != b.subsets_pruned
        or a.unobservable_subsets != b.unobservable_subsets
        or len(a.candidates) != len(b.candidates)
    ):
        return False
    for ca, cb in zip(a.candidates, b.candidates):
        if (
            ca.sensors != cb.sensors
            or ca.attacked != cb.attacked
            or ca.residual != cb.residual
            or ca.observable != cb.observable
            or not np.array_equal(ca.x0, cb.x0)
            or not np.array_equal(ca.x_end, cb.x_end)
        ):
            return False
        if (ca.x_end_covariance is None) != (cb.x_end_covariance is None):
            return False
        if ca.x_end_covariance is not None and not np.array_equal(
            ca.x_end_covariance, cb.x_end_covariance
        ):
            return False
    return True


def _assert_modes_identical(scenario, samples):
    """Lock-step both solver modes; every window must match bitwise."""
    incremental = _make_estimator(scenario, "incremental")
    from_scratch = _make_estimator(scenario, "from_scratch")
    for measurement, speed in samples:
        incremental.observe(measurement, speed)
        from_scratch.observe(measurement, speed)
        assert _results_equal(
            incremental.last_result, from_scratch.last_result
        ), f"solver modes diverged at t={measurement.time}"
        a, b = incremental._state, from_scratch._state
        assert (a is None) == (b is None)
        if a is not None:
            assert a[0] == b[0] and np.array_equal(a[1], b[1])
    return incremental


def _scaling_row(p, s, steps):
    """Per-step solve time at ``p`` sensors: batched incremental vs
    batched from-scratch vs the historical per-subset python loop."""
    n, m, T = 4, 1, 8
    rng = np.random.default_rng(1000 * p + s)
    A = np.eye(n) + 0.05 * rng.standard_normal((n, n))
    B = 0.1 * rng.standard_normal((n, m))
    C = rng.standard_normal((p, n))
    ys = rng.standard_normal((steps + T, p))
    us = 0.1 * rng.standard_normal((steps + T - 1, m))
    threshold = 10.0  # generous: timing, not gating, is the point here

    solver = IncrementalWindowSolver(A, B, C, residual_threshold=threshold)
    start = time.perf_counter()
    for k in range(steps):
        last_inc = solver.solve(ys[k : k + T], us[k : k + T - 1], None, s)
    t_inc = (time.perf_counter() - start) / steps

    def scratch(k):
        return SecureStateReconstruct(
            SSProblem(A, B, C, ys[k : k + T], us=us[k : k + T - 1], s=s),
            residual_threshold=threshold,
        )

    start = time.perf_counter()
    for k in range(steps):
        last_scratch = scratch(k).solve()
    t_scratch = (time.perf_counter() - start) / steps

    naive_steps = max(1, steps // 4)
    start = time.perf_counter()
    for k in range(naive_steps):
        scratch(k).solve_naive()
    t_naive = (time.perf_counter() - start) / naive_steps

    # The batched paths are bit-identical; the subset count is C(p, p-s).
    assert _results_equal(last_inc, last_scratch)
    assert last_inc.subsets_searched == comb(p, p - s)
    return {
        "sensors_p": p,
        "sparsity_s": s,
        "subsets": comb(p, p - s),
        "from_scratch_us": round(t_scratch * 1e6, 1),
        "incremental_us": round(t_inc * 1e6, 1),
        "naive_loop_us": round(t_naive * 1e6, 1),
        "speedup": round(t_scratch / t_inc, 2) if t_inc > 0 else None,
    }


def bench_defense_runtime(benchmark):
    scenario = fig2_scenario("dos")

    def build():
        # Correctness first: bit-identical modes across the non-uniform
        # windows a challenge schedule leaves (holes every 7th step).
        holed = _fig2a_stream(
            N_STEPS // 2, scenario.sample_period, hole_every=7
        )
        _assert_modes_identical(scenario, holed)

        # Steady-state per-step cost on the uniform closed-loop stream.
        uniform = _fig2a_stream(N_STEPS, scenario.sample_period)
        t_scratch, _ = _time_observe(
            scenario, "from_scratch", uniform, REPEATS
        )
        t_inc, estimator = _time_observe(
            scenario, "incremental", uniform, REPEATS
        )
        stats = estimator.search_stats()
        rows = [
            _scaling_row(p, max(1, p // 3), SCALING_STEPS)
            for p in SENSOR_COUNTS
        ]
        return t_scratch, t_inc, stats, rows

    t_scratch, t_inc, stats, scaling = benchmark.pedantic(
        build, rounds=1, iterations=1
    )

    # Uniform windows hit the geometry cache on (almost) every step:
    # one miss to seed, window-1 extensions while the window grows.
    assert stats["geometry_misses"] <= 2, stats
    assert stats["geometry_hits"] >= stats["windows_solved"] - (
        scenario.defense.secure_window + 1
    ), stats

    speedup = t_scratch / t_inc if t_inc > 0 else float("inf")
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x per-step speedup from the "
            f"incremental solver on the fig2a closed loop, measured "
            f"{speedup:.2f}x ({t_scratch * 1e6:.1f} -> {t_inc * 1e6:.1f} us)"
        )
        for row in scaling:
            assert row["speedup"] > 1.0, row

    record = {
        "smoke": SMOKE,
        "closed_loop": {
            "scenario": "fig2a",
            "steps": N_STEPS,
            "window": scenario.defense.secure_window,
            "sparsity": scenario.defense.secure_sparsity,
            "from_scratch_us_per_step": round(t_scratch * 1e6, 1),
            "incremental_us_per_step": round(t_inc * 1e6, 1),
            "speedup": round(speedup, 2),
            "speedup_floor": SPEEDUP_FLOOR,
            "bit_identical": True,
            "search_stats": stats,
        },
        "subset_scaling": scaling,
    }
    if not SMOKE:  # the committed JSON records the full workload
        RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        "defense_runtime",
        render_table(
            [
                {
                    "configuration": "from_scratch (baseline)",
                    "us_per_step": round(t_scratch * 1e6, 1),
                    "speedup": 1.0,
                },
                {
                    "configuration": "incremental (cached geometry)",
                    "us_per_step": round(t_inc * 1e6, 1),
                    "speedup": round(speedup, 2),
                },
            ],
            title=f"Secure-reconstruction solver: fig2a closed loop, "
            f"{N_STEPS} trusted steps (bit-identical candidates asserted)",
        )
        + "\n\n"
        + render_table(
            scaling,
            title="Subset-search scaling (synthetic n=4 plant, window 8)",
        ),
    )
