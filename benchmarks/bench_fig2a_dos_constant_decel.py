"""Figure 2a — DoS attack, leader at constant -0.1082 m/s² deceleration.

Regenerates the three series the paper overlays (radar data without
attack, with attack, estimated) and checks the panel's shape: large
spurious readings after the k = 182 s attack onset, detection exactly at
the k = 182 challenge, and safe recovery under estimation.
"""

import numpy as np

from conftest import (
    assert_figure_shape,
    emit,
    figure_ascii,
    figure_series_table,
    figure_summary,
    figure_velocity_table,
)


def bench_fig2a(benchmark, figure_data):
    data = benchmark.pedantic(figure_data, args=("fig2a",), rounds=1, iterations=1)

    assert_figure_shape(data, attacked_should_collide=True)

    # DoS-specific shape: spurious high readings dominate the attacked
    # stream after onset (the paper's plot spikes toward 200+ m).
    times = data.attacked.times
    corrupted = data.attacked.array("measured_distance")[times > 182.0]
    assert np.max(corrupted) > 150.0
    assert np.std(corrupted) > 30.0

    emit(
        "fig2a_dos_constant_decel",
        "\n\n".join(
            [
                "Figure 2a: DoS attack, constant leader deceleration "
                "(-0.1082 m/s^2); attack window [182, 300] s",
                figure_ascii(data, "distance series (clipped to 260 m)"),
                "Distance series:\n" + figure_series_table(data),
                "Relative-velocity series:\n" + figure_velocity_table(data),
                "Run summaries:\n" + figure_summary(data),
                f"Detection time: k = {data.detection_time():.0f} s "
                "(paper: 182 s)",
            ]
        ),
    )
