"""FMCW parameter sets (repro.radar.params)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.radar import BOSCH_LRR2, FMCWParameters, bosch_lrr2


class TestBoschLRR2Preset:
    def test_paper_values(self):
        # §4.1 and §6.2 of the paper.
        assert BOSCH_LRR2.carrier_frequency == 77e9
        assert BOSCH_LRR2.sweep_bandwidth == 150e6
        assert BOSCH_LRR2.sweep_time == pytest.approx(2e-3)
        assert BOSCH_LRR2.wavelength == pytest.approx(3.89e-3)
        assert BOSCH_LRR2.transmit_power == pytest.approx(10e-3)
        assert BOSCH_LRR2.antenna_gain_db == 28.0
        assert BOSCH_LRR2.system_loss_db == pytest.approx(0.10)
        assert BOSCH_LRR2.min_range == 2.0
        assert BOSCH_LRR2.max_range == 200.0

    def test_sweep_slope(self):
        assert BOSCH_LRR2.sweep_slope == pytest.approx(150e6 / 2e-3)

    def test_factory_returns_preset(self):
        assert bosch_lrr2() is BOSCH_LRR2

    def test_factory_overrides(self):
        radar = bosch_lrr2(default_rcs=5.0)
        assert radar.default_rcs == 5.0
        assert radar.sweep_bandwidth == BOSCH_LRR2.sweep_bandwidth

    def test_noise_floor_positive(self):
        assert BOSCH_LRR2.noise_floor > 0.0


class TestValidation:
    def test_rejects_nonpositive_scalars(self):
        for field in (
            "carrier_frequency",
            "sweep_bandwidth",
            "sweep_time",
            "wavelength",
            "transmit_power",
            "default_rcs",
            "sample_rate",
        ):
            with pytest.raises(ConfigurationError):
                FMCWParameters(**{field: 0.0})

    def test_rejects_bad_range_envelope(self):
        with pytest.raises(ConfigurationError):
            FMCWParameters(min_range=10.0, max_range=5.0)
        with pytest.raises(ConfigurationError):
            FMCWParameters(min_range=0.0)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            FMCWParameters(samples_per_segment=4)

    def test_rejects_negative_losses(self):
        with pytest.raises(ConfigurationError):
            FMCWParameters(system_loss_db=-1.0)
        with pytest.raises(ConfigurationError):
            FMCWParameters(noise_figure_db=-1.0)

    def test_rejects_aliasing_configuration(self):
        # Max range beat frequency must stay below Nyquist.
        with pytest.raises(ConfigurationError):
            FMCWParameters(sample_rate=50e3)

    def test_with_overrides_keeps_validation(self):
        with pytest.raises(ConfigurationError):
            BOSCH_LRR2.with_overrides(sweep_time=-1.0)

    def test_linear_conversions(self):
        radar = FMCWParameters()
        assert radar.antenna_gain == pytest.approx(630.957, rel=1e-4)
        assert radar.system_loss == pytest.approx(1.0233, rel=1e-3)
        assert radar.noise_figure == pytest.approx(10.0)
