"""Challenge-response authentication scheduling (paper §5.2).

The CRA defense modifies the active sensor's modulation unit with a
pseudo-random binary signal ``m(t)``: at the secret challenge instants
``T_c`` (``m = 0``) the probe is suppressed.  Security rests on the
attacker not being able to predict ``T_c``, so the schedule is driven
by a pseudo-random bit generator (a maximal-length LFSR here, the
classic PRBS construction) or, for exact reproduction of the paper's
experiments, by an explicit list of instants (k = 15, 50, 175, 182, …).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

__all__ = ["PRBSGenerator", "ChallengeSchedule"]


class PRBSGenerator:
    """Maximal-length 16-bit LFSR pseudo-random binary sequence.

    A Fibonacci LFSR for the maximal polynomial
    ``x^16 + x^14 + x^13 + x^11 + 1`` (period ``2^16 - 1``).  The seed
    selects the starting state and must be non-zero modulo ``2^16``.
    """

    #: Feedback bit positions (from the LSB) for x^16 + x^14 + x^13 + x^11 + 1.
    _TAP_BITS = (0, 2, 3, 5)
    _WIDTH = 16

    def __init__(self, seed: int = 0xACE1):
        state = seed % (1 << self._WIDTH)
        if state == 0:
            raise ValueError("LFSR seed must be non-zero modulo 2^16")
        self._state = state

    def next_bit(self) -> int:
        """Advance the register and return the output bit (0 or 1).

        The feedback includes the shifted-out bit 0, which keeps the map
        invertible (the zero state is unreachable from any non-zero
        seed) and the cycle maximal.
        """
        feedback = 0
        for bit in self._TAP_BITS:
            feedback ^= (self._state >> bit) & 1
        output = self._state & 1
        self._state = (self._state >> 1) | (feedback << (self._WIDTH - 1))
        return output

    def next_word(self, n_bits: int) -> int:
        """Concatenate ``n_bits`` output bits into an integer."""
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        word = 0
        for _ in range(n_bits):
            word = (word << 1) | self.next_bit()
        return word

    def bernoulli(self, probability: float, resolution_bits: int = 16) -> bool:
        """Draw a pseudo-random Bernoulli(p) decision from the bit stream.

        For full-register draws (``resolution_bits >= 16``) the LFSR
        never emits the all-zeros word, so the word is uniform on
        ``[1, 2^b - 1]`` rather than ``[0, 2^b - 1]``; the naive
        ``word < p * 2^b`` threshold is therefore biased at the
        endpoints (any ``p`` below ``2 / 2^b`` could never fire).  The
        word is shifted onto ``[0, 2^b - 2]`` and compared against
        ``p * (2^b - 1)``, which makes the per-period fire count exactly
        ``floor(p * (2^b - 1))`` — in particular ``p = 0`` never fires
        and ``p = 1`` always fires.  Shorter draws can legitimately
        produce zero words and keep the plain comparison.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        word = self.next_word(resolution_bits)
        if resolution_bits >= self._WIDTH:
            threshold = int(probability * ((1 << resolution_bits) - 1))
            return (word - 1) < threshold
        threshold = int(probability * (1 << resolution_bits))
        return word < threshold


class ChallengeSchedule:
    """The set of challenge instants ``T_c`` over a simulation horizon.

    Construct either from an explicit list (to reproduce the paper's
    k = 15, 50, 175, 182, … experiments exactly) or pseudo-randomly
    from a PRBS at a given challenge rate.
    """

    def __init__(self, times: Iterable[float]):
        self._times: FrozenSet[float] = frozenset(float(t) for t in times)
        if any(t < 0.0 for t in self._times):
            raise ValueError("challenge times must be non-negative")

    @classmethod
    def from_times(cls, times: Iterable[float]) -> "ChallengeSchedule":
        """Schedule with the given explicit challenge instants."""
        return cls(times)

    @classmethod
    def random(
        cls,
        horizon: float,
        rate: float,
        sample_period: float = 1.0,
        seed: int = 0xACE1,
        min_gap: float = 0.0,
        exclude_start: float = 1.0,
    ) -> "ChallengeSchedule":
        """PRBS-driven schedule: each instant challenged with prob ``rate``.

        Parameters
        ----------
        horizon:
            Simulation length, seconds.
        rate:
            Per-sample challenge probability in [0, 1].
        sample_period:
            Spacing of the candidate instants, seconds.
        seed:
            LFSR seed (attacker-unpredictable secret).
        min_gap:
            Minimum spacing between consecutive challenges, seconds.
        exclude_start:
            No challenges before this time (the radar needs some initial
            unchallenged samples to acquire the target).
        """
        if horizon <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if sample_period <= 0.0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        prbs = PRBSGenerator(seed)
        times: List[float] = []
        t = 0.0
        last = -float("inf")
        while t <= horizon:
            eligible = t >= exclude_start and (t - last) >= min_gap
            if prbs.bernoulli(rate) and eligible:
                times.append(t)
                last = t
            t += sample_period
        return cls(times)

    def is_challenge(self, time: float, tolerance: float = 1e-9) -> bool:
        """True when ``time`` is a challenge instant."""
        if time in self._times:
            return True
        if tolerance > 0.0:
            return any(abs(time - t) <= tolerance for t in self._times)
        return False

    @property
    def times(self) -> Sequence[float]:
        """Challenge instants, sorted ascending."""
        return tuple(sorted(self._times))

    def __len__(self) -> int:
        return len(self._times)

    def __contains__(self, time: float) -> bool:
        return self.is_challenge(time)

    def next_challenge_at_or_after(self, time: float) -> Optional[float]:
        """Earliest challenge instant >= ``time``, or None.

        This is the soonest an attack starting at ``time`` can be
        detected — the structural bound on detection latency.
        """
        later = [t for t in self._times if t >= time]
        return min(later) if later else None
