"""Ablation — RLS forgetting factor λ, initialization δ, and VFF.

DESIGN.md calls out three estimation design choices:

* the forgetting factor trades tracking speed against slope noise that
  integrates quadratically over the forecast horizon;
* the paper's δ = 1 prior (``P_0 = δ I``) shrinks the fitted trend
  toward zero and biases long-horizon forecasts; δ = 100 removes it;
* variable-forgetting-factor (VFF) adaptation dumps memory when
  residuals spike, which is what survives a leader regime change
  shortly before the attack.

The λ/δ sweep runs with VFF off to isolate pure Algorithm 1; the VFF
rows contrast on/off on the paper scenario and on a harsh
emergency-brake variant.
"""

from conftest import emit
from repro import ConstantAccelerationProfile, fig2_scenario, run
from repro.analysis import estimation_rmse, render_table
from repro.simulation.scenario import DefenseConfig


def _evaluate(forgetting: float, delta: float):
    scenario = fig2_scenario(
        "dos",
        defense=DefenseConfig(
            forgetting=forgetting, delta=delta, adaptive_forgetting=False
        ),
    )
    data = run(scenario, mode="figure")
    rmse = estimation_rmse(
        data.defended,
        data.baseline,
        trace="safe_distance",
        reference_trace="true_distance",
        window=(183.0, 300.0),
    )
    return {
        "forgetting": forgetting,
        "delta": delta,
        "est_rmse_m": round(rmse, 2),
        "min_gap_m": round(data.defended.min_gap(), 2),
        "collided": data.defended.collided,
    }


def _evaluate_vff(adaptive: bool, hard_brake: bool):
    scenario = fig2_scenario(
        "dos", defense=DefenseConfig(adaptive_forgetting=adaptive)
    )
    if hard_brake:
        scenario = scenario.with_overrides(
            name="hard-brake",
            leader_profile=ConstantAccelerationProfile(-1.0, start_time=160.0),
        )
    data = run(scenario, mode="figure")
    return {
        "scenario": "emergency brake @160 s" if hard_brake else "paper fig2a",
        "vff": "on" if adaptive else "off",
        "min_gap_m": round(data.defended.min_gap(), 2),
        "collided": data.defended.collided,
        "detection_s": data.detection_time(),
    }


def bench_ablation_forgetting(benchmark):
    def sweep():
        lam_rows = [
            _evaluate(forgetting, delta=100.0)
            for forgetting in (0.85, 0.90, 0.95, 0.98, 1.0)
        ]
        lam_rows.append(_evaluate(0.95, delta=1.0))  # the paper's δ = 1
        vff_rows = [
            _evaluate_vff(adaptive, hard_brake)
            for hard_brake in (False, True)
            for adaptive in (False, True)
        ]
        return lam_rows, vff_rows

    lam_rows, vff_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_key = {(r["forgetting"], r["delta"]): r for r in lam_rows}
    # Shape claims: the default survives; a very short memory is noisier
    # than the default; the paper's δ = 1 prior degrades the estimate.
    assert not by_key[(0.95, 100.0)]["collided"]
    assert by_key[(0.85, 100.0)]["est_rmse_m"] >= by_key[(0.95, 100.0)]["est_rmse_m"]
    assert by_key[(0.95, 1.0)]["est_rmse_m"] > by_key[(0.95, 100.0)]["est_rmse_m"]

    # VFF shape claims: irrelevant on the stationary paper scenario,
    # decisive on the emergency-brake one.
    by_vff = {(r["scenario"], r["vff"]): r for r in vff_rows}
    assert not by_vff[("paper fig2a", "off")]["collided"]
    assert not by_vff[("paper fig2a", "on")]["collided"]
    assert by_vff[("emergency brake @160 s", "off")]["collided"]
    assert not by_vff[("emergency brake @160 s", "on")]["collided"]

    emit(
        "ablation_forgetting",
        "\n\n".join(
            [
                render_table(
                    lam_rows,
                    title="Forgetting factor / delta ablation (VFF off; "
                    "Figure 2a scenario, RMSE vs the clean gap over the attack)",
                ),
                render_table(
                    vff_rows,
                    title="Variable-forgetting-factor ablation (leader "
                    "regime change right before the attack)",
                ),
            ]
        ),
    )
