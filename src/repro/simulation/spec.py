"""Declarative scenario specifications (dict / JSON).

Lets a scenario live outside Python — checked into a repo, swept by a
shell script, or passed to ``python -m repro run-custom spec.json`` —
and round-trips through :func:`scenario_to_dict` /
:func:`scenario_from_dict`.

The spec is a plain nested dict.  Polymorphic pieces (leader profile,
attack) carry a ``"kind"`` discriminator::

    {
      "spec_version": 1,
      "name": "my-study",
      "leader_profile": {"kind": "constant", "acceleration": -0.1082},
      "attack": {"kind": "dos", "start": 182.0, "end": 300.0,
                 "jammer": {"peak_power": 0.1}},
      "defense": {"forgetting": 0.95, "margin_gain": 2.0},
      "horizon": 300.0
    }

Unspecified fields keep the library defaults (the paper's values).

``spec_version`` declares which revision of this format a spec was
written against.  :func:`scenario_to_dict` stamps the current
:data:`SPEC_VERSION`; :func:`scenario_from_dict` accepts specs carrying
the current version (or none at all — pre-versioning specs are version
1 by definition) and raises
:class:`~repro.exceptions.ConfigurationError` for anything else, so a
spec from a future format fails loudly instead of being silently
misread.  The version also travels through
:func:`repro.store.fingerprint.fingerprint_payload` (which serializes
scenarios via :func:`scenario_to_dict`), salting every run-store
fingerprint with the spec format revision.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.attacks import (
    Attack,
    AttackWindow,
    DelayInjectionAttack,
    DoSJammingAttack,
    PhantomTargetAttack,
)
from repro.exceptions import ConfigurationError
from repro.radar.link_budget import JammerParameters
from repro.radar.params import FMCWParameters
from repro.simulation.scenario import DefenseConfig, Scenario
from repro.vehicle.idm import IDMParameters
from repro.vehicle.leader import (
    ConstantAccelerationProfile,
    LeaderProfile,
    PiecewiseAccelerationProfile,
    StopAndGoProfile,
)
from repro.vehicle.params import ACCParameters

__all__ = [
    "SPEC_VERSION",
    "READABLE_SPEC_VERSIONS",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
]

PathLike = Union[str, Path]

#: Current revision of the declarative spec format.  Bump when the
#: dict schema changes shape (not when scenario defaults change);
#: readers reject unknown versions up front.
#:
#: Version history:
#:
#: * 1 — original format.
#: * 2 — ``defense`` gained the strategy knobs (``strategy``,
#:   ``secure_*``, ``filter_*``; see
#:   :class:`~repro.simulation.scenario.DefenseConfig`).  Version-1
#:   specs still read (the new fields default), but writers stamp 2 —
#:   which folds into every run-store fingerprint, so stores populated
#:   before the defense track never alias against runs after it.
SPEC_VERSION = 2

#: Spec revisions :func:`scenario_from_dict` accepts.
READABLE_SPEC_VERSIONS = (1, 2)


# ----------------------------------------------------------------------
# leader profiles
# ----------------------------------------------------------------------

def _profile_to_dict(profile: LeaderProfile) -> Dict[str, Any]:
    if isinstance(profile, ConstantAccelerationProfile):
        return {
            "kind": "constant",
            "acceleration": profile._acceleration,
            "start_time": profile.start_time,
        }
    if isinstance(profile, PiecewiseAccelerationProfile):
        return {
            "kind": "piecewise",
            "segments": [list(segment) for segment in profile.segments],
        }
    if isinstance(profile, StopAndGoProfile):
        return {
            "kind": "stop_and_go",
            "deceleration": profile.deceleration,
            "acceleration": profile.acceleration_value,
            "brake_time": profile.brake_time,
            "go_time": profile.go_time,
            "start_time": profile.start_time,
        }
    raise ConfigurationError(
        f"leader profile {type(profile).__name__} has no spec representation"
    )


def _profile_from_dict(data: Dict[str, Any]) -> LeaderProfile:
    kind = data.get("kind")
    if kind == "constant":
        return ConstantAccelerationProfile(
            data["acceleration"], start_time=data.get("start_time", 0.0)
        )
    if kind == "piecewise":
        return PiecewiseAccelerationProfile(
            [tuple(segment) for segment in data["segments"]]
        )
    if kind == "stop_and_go":
        return StopAndGoProfile(
            deceleration=data.get("deceleration", 1.0),
            acceleration=data.get("acceleration", 0.8),
            brake_time=data.get("brake_time", 20.0),
            go_time=data.get("go_time", 25.0),
            start_time=data.get("start_time", 0.0),
        )
    raise ConfigurationError(f"unknown leader profile kind {kind!r}")


# ----------------------------------------------------------------------
# attacks
# ----------------------------------------------------------------------

def _attack_to_dict(attack: Attack) -> Dict[str, Any]:
    window = {"start": attack.window.start, "end": attack.window.end}
    if isinstance(attack, DoSJammingAttack):
        return {
            "kind": "dos",
            **window,
            "jammer": dataclasses.asdict(attack.jammer),
        }
    if isinstance(attack, DelayInjectionAttack):
        return {
            "kind": "delay",
            **window,
            "distance_offset": attack.distance_offset,
            "velocity_offset": attack.velocity_offset,
            "ramp_time": attack.ramp_time,
        }
    if isinstance(attack, PhantomTargetAttack):
        return {
            "kind": "phantom",
            **window,
            "phantom_distance": attack.phantom_distance,
            "phantom_velocity": attack.phantom_velocity,
        }
    raise ConfigurationError(
        f"attack {type(attack).__name__} has no spec representation"
    )


def _attack_from_dict(data: Dict[str, Any]) -> Attack:
    kind = data.get("kind")
    window = AttackWindow(start=data["start"], end=data.get("end", float("inf")))
    if kind == "dos":
        jammer = JammerParameters(**data.get("jammer", {}))
        return DoSJammingAttack(window, jammer=jammer)
    if kind == "delay":
        return DelayInjectionAttack(
            window,
            distance_offset=data.get("distance_offset", 6.0),
            velocity_offset=data.get("velocity_offset", 0.0),
            ramp_time=data.get("ramp_time", 0.0),
        )
    if kind == "phantom":
        return PhantomTargetAttack(
            window,
            phantom_distance=data.get("phantom_distance", 10.0),
            phantom_velocity=data.get("phantom_velocity", -5.0),
        )
    raise ConfigurationError(f"unknown attack kind {kind!r}")


# ----------------------------------------------------------------------
# scenario
# ----------------------------------------------------------------------

#: Plain-float scenario fields copied verbatim between spec and object.
_SCALAR_FIELDS = (
    "name",
    "horizon",
    "sample_period",
    "initial_distance",
    "leader_initial_speed",
    "follower_initial_speed",
    "fidelity",
    "sensor_seed",
    "distance_noise_std",
    "velocity_noise_std",
    "follower_policy",
    "dropout_rate",
    "adaptive_challenge_period",
    "ego_speed_bias",
    "ego_speed_gain",
)


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Serialize a scenario to a JSON-compatible dict."""
    spec: Dict[str, Any] = {"spec_version": SPEC_VERSION}
    spec.update(
        (field, getattr(scenario, field)) for field in _SCALAR_FIELDS
    )
    spec["leader_profile"] = _profile_to_dict(scenario.leader_profile)
    if scenario.attack is not None:
        spec["attack"] = _attack_to_dict(scenario.attack)
    spec["challenge_times"] = list(scenario.challenge_times)
    spec["defense"] = dataclasses.asdict(scenario.defense)
    spec["acc_params"] = dataclasses.asdict(scenario.acc_params)
    spec["radar_params"] = dataclasses.asdict(scenario.radar_params)
    if scenario.idm_params is not None:
        spec["idm_params"] = dataclasses.asdict(scenario.idm_params)
    return spec


def scenario_from_dict(spec: Dict[str, Any]) -> Scenario:
    """Build a scenario from a spec dict; missing fields keep defaults.

    Raises :class:`~repro.exceptions.ConfigurationError` when the spec
    declares a ``spec_version`` this library does not read (missing
    means version 1 — the format before versioning was introduced).
    """
    version = spec.get("spec_version", SPEC_VERSION)
    if version not in READABLE_SPEC_VERSIONS:
        raise ConfigurationError(
            f"unsupported spec_version {version!r}; this library reads "
            f"versions {READABLE_SPEC_VERSIONS}"
        )
    if "leader_profile" not in spec:
        raise ConfigurationError("a scenario spec requires 'leader_profile'")
    kwargs: Dict[str, Any] = {
        field: spec[field] for field in _SCALAR_FIELDS if field in spec
    }
    kwargs.setdefault("name", "custom")
    kwargs["leader_profile"] = _profile_from_dict(spec["leader_profile"])
    if "attack" in spec and spec["attack"] is not None:
        kwargs["attack"] = _attack_from_dict(spec["attack"])
    if "challenge_times" in spec:
        kwargs["challenge_times"] = tuple(spec["challenge_times"])
    if "defense" in spec:
        kwargs["defense"] = DefenseConfig(**spec["defense"])
    if "acc_params" in spec:
        kwargs["acc_params"] = ACCParameters(**spec["acc_params"])
    if "radar_params" in spec:
        kwargs["radar_params"] = FMCWParameters(**spec["radar_params"])
    if "idm_params" in spec:
        kwargs["idm_params"] = IDMParameters(**spec["idm_params"])
    return Scenario(**kwargs)


def save_scenario(scenario: Scenario, path: PathLike) -> Path:
    """Write a scenario spec as JSON."""
    path = Path(path)
    path.write_text(json.dumps(scenario_to_dict(scenario), indent=2))
    return path


def load_scenario(path: PathLike) -> Scenario:
    """Load a scenario from a JSON spec file."""
    return scenario_from_dict(json.loads(Path(path).read_text()))
