"""Convenience drivers for the figure experiments.

Each of the paper's figure panels overlays three series: the radar data
without attack, the radar data with attack (undefended), and the
estimated data produced by the defense.  :func:`run_figure_scenario`
runs exactly that triple with a shared sensor seed so measurement noise
aligns across runs.  The three runs are independent, so they fan out
through :mod:`repro.simulation.batch` when ``workers > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.simulation.batch import RunSpec, run_many
from repro.simulation.engine import CarFollowingSimulation
from repro.simulation.results import SimulationResult
from repro.simulation.scenario import Scenario

__all__ = ["FigureData", "run_figure_scenario", "run_single"]


@dataclass(frozen=True)
class FigureData:
    """The three runs a figure panel overlays."""

    scenario: Scenario
    baseline: SimulationResult
    attacked: SimulationResult
    defended: SimulationResult

    def detection_time(self) -> float:
        """First detection instant of the defended run.

        Raises if nothing was detected — a figure scenario always
        contains an attack.
        """
        times = self.defended.detection_times
        if not times:
            raise RuntimeError(
                f"defended run of {self.scenario.name!r} detected nothing"
            )
        return times[0]


def run_single(
    scenario: Scenario, attack_enabled: bool = True, defended: bool = True
) -> SimulationResult:
    """Run one configuration of a scenario."""
    return CarFollowingSimulation(
        scenario, attack_enabled=attack_enabled, defended=defended
    ).run()


def run_figure_scenario(
    scenario: Scenario,
    *,
    workers: int = 1,
    cache: Any = None,
    backend: Optional[str] = None,
) -> FigureData:
    """Run the (baseline, attacked, defended) triple of a figure panel.

    The runs share the scenario's sensor seed so noise aligns across
    the overlay; ``workers`` lets them execute in parallel (they are
    independent), with results identical to the serial path.  ``cache``
    selects the run-store policy (see
    :func:`repro.simulation.batch.execute_batch`): store hits replay
    bit-identically instead of simulating.  ``backend`` selects the
    engine (scalar / vectorized / auto — same knob as
    :func:`~repro.simulation.batch.execute_batch`); the triple's runs
    differ in their toggles, so ``"auto"`` keeps them scalar while
    ``"vectorized"`` runs each as its own group.
    """
    specs = [
        RunSpec(scenario, attack_enabled=False, defended=False, tag="baseline"),
        RunSpec(scenario, attack_enabled=True, defended=False, tag="attacked"),
        RunSpec(scenario, attack_enabled=True, defended=True, tag="defended"),
    ]
    baseline, attacked, defended = run_many(
        specs, workers=workers, cache=cache, backend=backend
    )
    return FigureData(
        scenario=scenario,
        baseline=baseline,
        attacked=attacked,
        defended=defended,
    )
