"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Print the experiment registry (every reproduced table/figure and
    the bench that regenerates it).
``run <experiment-id>``
    Run a figure experiment end-to-end and print its summary, detection
    results and an ASCII rendering of the panel.  Non-figure experiment
    ids print the pytest command for their bench instead.
``run-custom <spec.json>``
    Run the (baseline / attacked / defended) triple for a declarative
    scenario spec (see :mod:`repro.simulation.spec`).  Pass ``-`` as
    the path to read the JSON spec from stdin (shell pipelines).
``report``
    Run all four figure panels and print the consolidated
    paper-vs-measured summary; ``--markdown PATH`` writes a live
    markdown report instead (``--seeds N`` adds a robustness section).
``cache``
    Manage the persistent run store (:mod:`repro.store`):
    ``cache stats``, ``cache clear``, ``cache export PATH`` and
    ``cache path``, each accepting ``--store PATH`` to address a
    non-default store — a single ``.sqlite`` file or a sharded store
    directory (auto-detected via its ``shards.json`` manifest).
    ``cache stats --json`` emits the machine-readable form (the same
    serialization the service's ``GET /v1/store/stats`` endpoint
    returns), including the per-shard breakdown for sharded stores.
    ``cache merge SOURCE --store DEST`` copies every run of one store
    into another (any combination of single-file and sharded
    geometries; replays stay bit-identical).
``serve``
    Run the async simulation service (:mod:`repro.service`): an
    HTTP/JSON frontend over the run store with single-flight
    dedup-coalescing of identical requests.  ``--host`` / ``--port``
    pick the binding (``--port 0`` for an ephemeral port; the bound
    base URL is the first stdout line), ``--workers`` bounds the
    process pool, ``--store`` addresses a non-default store file
    (``--store-shards N`` serves a sharded store instead),
    ``--backend`` picks the default engine for executed runs and
    ``--max-jobs N`` bounds the finished-jobs table (oldest evicted;
    eviction counts surface in ``/healthz``).
``sweep``
    Adaptive Monte-Carlo sweeps (:mod:`repro.simulation.sweep`):
    ``sweep run --cells fig2a,fig2b`` estimates a metric over the
    named figure scenarios, early-stopping converged cells and
    allocating seeds where the metric variance is highest; ``--json``
    emits the machine-readable result.
``trace``
    Inspect JSONL telemetry traces (:mod:`repro.telemetry`):
    ``trace summary FILE`` prints the per-stage timing table,
    ``trace export FILE DEST`` writes the aggregate as JSON.

``run`` and ``run-custom`` accept ``--defense
{rls,secure_reconstruction,safety_filter,combined}`` to override the
defense strategy of the defended runs (see :mod:`repro.defense`).

``run``, ``run-custom`` and ``report`` accept ``--workers N`` to fan
their independent runs out over a process pool (see
:mod:`repro.simulation.batch`); output is identical to serial.  They
also accept ``--cache`` / ``--no-cache`` (default: no cache) to serve
previously computed runs from the store and persist new ones —
cached output is byte-identical to uncached — or ``--store-shards N``
to cache through an N-shard store whose shards the pool workers write
concurrently — and ``--backend
{auto,scalar,vectorized}`` to pick the simulation engine (default:
the ``REPRO_BACKEND`` environment variable, else scalar; output is
bit-identical across backends) — plus ``--profile`` (print the
per-stage telemetry table after the command output) and ``--trace
PATH`` (write the JSONL telemetry trace to PATH).

Every diagnostic (bad experiment id, unloadable spec, unreadable
trace file) goes to **stderr**, so piped stdout stays machine-readable
even when a command exits non-zero.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import ascii_plot, detection_confusion, render_table
from repro.analysis.experiments import REGISTRY, experiments_table, get_experiment
from repro.facade import run as run_experiment
from repro.simulation import fig2_scenario, fig3_scenario
from repro.simulation.knobs import BACKENDS

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for ``--workers``: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


_FIGURE_FACTORIES = {
    "fig2a": lambda: fig2_scenario("dos"),
    "fig2b": lambda: fig2_scenario("delay"),
    "fig3a": lambda: fig3_scenario("dos"),
    "fig3b": lambda: fig3_scenario("delay"),
}


def _add_defense_arg(parser: argparse.ArgumentParser) -> None:
    """``--defense`` strategy override shared by run / run-custom."""
    from repro.simulation.scenario import DEFENSE_STRATEGIES

    parser.add_argument(
        "--defense",
        choices=DEFENSE_STRATEGIES,
        default=None,
        help="override the scenario's defense strategy for the defended "
        "runs (default: the scenario's configured strategy, usually rls)",
    )


def _add_worker_and_cache_args(parser: argparse.ArgumentParser) -> None:
    """The execution knobs shared by run / run-custom / report."""
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes for the independent runs (default: serial)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=False,
        help="serve runs from the persistent run store and save new ones "
        "(output is byte-identical to uncached)",
    )
    cache_group.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="bypass the run store (default)",
    )
    parser.add_argument(
        "--store-shards",
        dest="store_shards",
        type=_positive_int,
        metavar="N",
        default=None,
        help="cache runs (readwrite) through an N-shard run store — "
        "worker processes write their own shards concurrently "
        "(default location: the runstore-shards directory next to the "
        "single-file store; overrides --cache/--no-cache)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="simulation engine for the runs (default: $REPRO_BACKEND, "
        "else scalar; output is bit-identical across backends)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        default=False,
        help="run with telemetry enabled and print the per-stage "
        "timing table after the command output",
    )
    parser.add_argument(
        "--trace",
        dest="trace_out",
        metavar="PATH",
        default=None,
        help="write a JSONL telemetry trace of the command to PATH "
        "(inspect it with 'repro trace summary PATH')",
    )


def _cache_mode(args: argparse.Namespace):
    """Resolve the shared cache knobs to a ``cache=`` argument.

    ``--store-shards N`` binds a readwrite N-shard store (at
    ``--store`` if the command has one, else the default sharded
    location); otherwise ``--cache`` maps to ``"readwrite"`` and the
    default is ``"off"``.
    """
    shards = getattr(args, "store_shards", None)
    if shards is not None:
        from repro.store import (
            CacheBinding,
            ShardedRunStore,
            default_sharded_store_path,
        )

        path = getattr(args, "store", None) or default_sharded_store_path()
        return CacheBinding(
            store=ShardedRunStore(path, shards=shards),
            mode="readwrite",
            owns_store=True,
        )
    return "readwrite" if getattr(args, "cache", False) else "off"


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Estimation of Safe Sensor Measurements of "
            "Autonomous System Under Attack' (DAC 2017)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all reproduced experiments")

    run_parser = subparsers.add_parser("run", help="run one figure experiment")
    run_parser.add_argument("experiment", help="experiment id (e.g. fig2a)")
    run_parser.add_argument(
        "--seed", type=int, default=2017, help="sensor noise seed"
    )
    run_parser.add_argument(
        "--no-plot", action="store_true", help="skip the ASCII figure"
    )
    _add_defense_arg(run_parser)
    _add_worker_and_cache_args(run_parser)

    custom_parser = subparsers.add_parser(
        "run-custom", help="run a scenario from a JSON spec file"
    )
    custom_parser.add_argument(
        "spec", help="path to the scenario spec JSON ('-' reads stdin)"
    )
    _add_defense_arg(custom_parser)
    _add_worker_and_cache_args(custom_parser)

    report_parser = subparsers.add_parser(
        "report", help="run all figure panels and print the summary"
    )
    report_parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="write a markdown report to PATH instead of printing a table",
    )
    report_parser.add_argument(
        "--seeds",
        type=int,
        default=0,
        help="extra sensor seeds for a robustness section (markdown only)",
    )
    _add_worker_and_cache_args(report_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or manage the persistent run store"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "print entry and byte counts of the run store"),
        ("clear", "evict every cached run and compact the store"),
        ("export", "write the store inventory (metadata + summaries) as JSON"),
        ("path", "print the store's database path"),
    ):
        sub = cache_sub.add_parser(name, help=help_text)
        sub.add_argument(
            "--store",
            metavar="PATH",
            default=None,
            help="run-store database file (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro/runstore.sqlite)",
        )
        if name == "export":
            sub.add_argument("dest", help="output JSON path")
        if name == "stats":
            sub.add_argument(
                "--json",
                dest="as_json",
                action="store_true",
                default=False,
                help="emit machine-readable JSON (same serialization as "
                "the service's GET /v1/store/stats)",
            )
    merge_parser = cache_sub.add_parser(
        "merge",
        help="copy every run of SOURCE into the --store destination "
        "(single-file and sharded stores mix freely)",
    )
    merge_parser.add_argument(
        "source", help="source store: a .sqlite file or a shard directory"
    )
    merge_parser.add_argument(
        "--store",
        metavar="PATH",
        required=True,
        help="destination store (created if missing)",
    )
    merge_parser.add_argument(
        "--shards",
        type=_positive_int,
        metavar="N",
        default=None,
        help="create the destination as an N-shard store (default: "
        "single-file, or the existing geometry)",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="adaptive variance-aware Monte-Carlo sweeps"
    )
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run",
        help="estimate a metric over figure-scenario cells, "
        "early-stopping converged cells",
    )
    sweep_run.add_argument(
        "--cells",
        default="fig2a,fig2b",
        help="comma-separated figure scenario ids "
        f"({', '.join(sorted(_FIGURE_FACTORIES))}; default: fig2a,fig2b)",
    )
    sweep_run.add_argument(
        "--metric",
        default="detection_rate",
        help="per-run metric to estimate (detection_rate, min_gap, "
        "collision_rate; default: detection_rate)",
    )
    sweep_run.add_argument(
        "--target-ci",
        dest="target_ci",
        type=float,
        default=0.1,
        help="confidence-interval halfwidth at which a cell stops "
        "(default: 0.1)",
    )
    sweep_run.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level of the interval (default: 0.95)",
    )
    sweep_run.add_argument(
        "--min-runs",
        dest="min_runs",
        type=_positive_int,
        default=8,
        help="seeds every cell runs before convergence checks (default: 8)",
    )
    sweep_run.add_argument(
        "--max-runs",
        dest="max_runs",
        type=_positive_int,
        default=64,
        help="per-cell budget cap / fixed-grid size (default: 64)",
    )
    sweep_run.add_argument(
        "--round-size",
        dest="round_size",
        type=_positive_int,
        default=8,
        help="runs allocated per adaptive round (default: 8)",
    )
    sweep_run.add_argument(
        "--schedule",
        choices=("adaptive", "fixed"),
        default="adaptive",
        help="adaptive (early stop + variance-weighted allocation) or "
        "fixed (every cell runs max-runs)",
    )
    sweep_run.add_argument(
        "--base-seed",
        dest="base_seed",
        type=int,
        default=2017,
        help="root of the deterministic per-cell seed tree (default: 2017)",
    )
    sweep_run.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="override the scenario horizon in seconds (shorter = faster)",
    )
    sweep_run.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="shard directory for --store-shards (default: the "
        "runstore-shards directory next to the single-file store)",
    )
    sweep_run.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        default=False,
        help="emit the machine-readable sweep result",
    )
    _add_worker_and_cache_args(sweep_run)

    serve_parser = subparsers.add_parser(
        "serve", help="run the async simulation service (HTTP/JSON)"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8077,
        help="TCP port (0 binds an ephemeral port; the bound base URL "
        "is printed as the first stdout line)",
    )
    serve_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="worker processes executing cache-miss runs (default: 2)",
    )
    serve_parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="run-store database file, or shard directory with "
        "--store-shards (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/runstore.sqlite)",
    )
    serve_parser.add_argument(
        "--store-shards",
        dest="store_shards",
        type=_positive_int,
        metavar="N",
        default=None,
        help="serve against an N-shard run store instead of a single "
        "database file",
    )
    serve_parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="default engine for executed runs (default: $REPRO_BACKEND, "
        "else scalar)",
    )
    serve_parser.add_argument(
        "--max-jobs",
        dest="max_jobs",
        type=_positive_int,
        metavar="N",
        default=None,
        help="retain at most N finished jobs in the jobs table, evicting "
        "the oldest (default: 4096; evictions are counted in /healthz)",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="inspect JSONL telemetry traces"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="print the per-stage timing table of a trace"
    )
    trace_summary.add_argument("trace_file", help="JSONL trace path")
    trace_export = trace_sub.add_parser(
        "export", help="aggregate a trace and write the summary as JSON"
    )
    trace_export.add_argument("trace_file", help="JSONL trace path")
    trace_export.add_argument("dest", help="output JSON path")
    return parser


def _run_figure(
    identifier: str,
    seed: int,
    show_plot: bool,
    out,
    workers: int = 1,
    cache: str = "off",
    backend: Optional[str] = None,
    defense: Optional[str] = None,
) -> int:
    scenario = _FIGURE_FACTORIES[identifier]().with_overrides(sensor_seed=seed)
    data = run_experiment(
        scenario,
        mode="figure",
        workers=workers,
        cache=cache,
        backend=backend,
        defense=defense,
    )
    rows = [
        data.baseline.summary().as_dict(),
        data.attacked.summary().as_dict(),
        data.defended.summary().as_dict(),
    ]
    experiment = get_experiment(identifier)
    print(f"{identifier}: {experiment.title}", file=out)
    print(f"paper claim: {experiment.paper_claim}", file=out)
    print(file=out)
    print(render_table(rows, precision=2), file=out)
    confusion = detection_confusion(data.defended.detection_events, scenario.attack)
    print(file=out)
    print(
        f"detection at k = {data.detection_time():.0f} s "
        f"({confusion.false_positives} FP / {confusion.false_negatives} FN "
        f"over {confusion.total} challenges)",
        file=out,
    )
    if show_plot:
        import numpy as np

        times = data.defended.times
        window = times >= 100.0
        print(file=out)
        print(
            ascii_plot(
                {
                    "no attack": (
                        times[window],
                        np.clip(
                            data.baseline.array("measured_distance")[window], 0, 260
                        ),
                    ),
                    "with attack": (
                        times[window],
                        np.clip(
                            data.attacked.array("measured_distance")[window], 0, 260
                        ),
                    ),
                    "estimated": (
                        times[window],
                        np.clip(data.defended.array("safe_distance")[window], 0, 260),
                    ),
                },
                title="radar distance (clipped to 260 m)",
                y_label="m",
                width=100,
                height=20,
            ),
            file=out,
        )
    return 0


def _run_report(
    out, workers: int = 1, cache: str = "off", backend: Optional[str] = None
) -> int:
    rows = []
    for identifier in ("fig2a", "fig2b", "fig3a", "fig3b"):
        scenario = _FIGURE_FACTORIES[identifier]()
        data = run_experiment(
            scenario, mode="figure", workers=workers, cache=cache, backend=backend
        )
        confusion = detection_confusion(
            data.defended.detection_events, scenario.attack
        )
        rows.append(
            {
                "panel": identifier,
                "detection_s": data.detection_time(),
                "FP": confusion.false_positives,
                "FN": confusion.false_negatives,
                "attacked_min_gap_m": round(data.attacked.min_gap(), 1),
                "attacked_collided": data.attacked.collided,
                "defended_min_gap_m": round(data.defended.min_gap(), 1),
                "defended_collided": data.defended.collided,
            }
        )
    print(
        render_table(
            rows,
            title=(
                "Paper-vs-measured summary (paper: detection at 182 s, "
                "zero FP/FN, safe recovery)"
            ),
        ),
        file=out,
    )
    return 0


def _open_store(path, shards: Optional[int] = None):
    """Open a store path as the right geometry.

    A directory (or a path carrying a ``shards.json`` manifest) opens
    as a :class:`~repro.store.ShardedRunStore`; anything else — or
    ``None``, the default single-file location — opens as a plain
    :class:`~repro.store.RunStore`.  ``shards`` forces a sharded store
    (creating the geometry when the path does not exist yet).
    """
    from pathlib import Path

    from repro.store import RunStore, ShardedRunStore
    from repro.store.sharded import MANIFEST_NAME

    if shards is not None:
        return ShardedRunStore(path, shards=shards)
    if path is not None:
        candidate = Path(path)
        if candidate.is_dir() or (candidate / MANIFEST_NAME).exists():
            return ShardedRunStore(candidate)
    return RunStore(path)


def _run_cache(args: argparse.Namespace, out, err) -> int:
    """The ``repro cache`` command group (run-store management)."""
    if args.cache_command == "merge":
        from repro.store import merge_stores

        source = _open_store(args.source)
        dest = _open_store(args.store, shards=args.shards)
        try:
            written = merge_stores(source, dest)
            print(
                f"merged {written} runs from {source.path} into {dest.path} "
                f"({len(dest)} total)",
                file=out,
            )
            return 0
        finally:
            source.close()
            dest.close()

    store = _open_store(args.store)
    try:
        if args.cache_command == "path":
            print(store.path, file=out)
            return 0
        if args.cache_command == "stats":
            stats = store.stats()
            if args.as_json:
                import json

                print(json.dumps(stats.as_dict(), indent=2), file=out)
                return 0
            print(
                render_table(
                    stats.as_rows(), title=f"run store at {stats.path}"
                ),
                file=out,
            )
            return 0
        if args.cache_command == "clear":
            removed = store.clear()
            print(f"evicted {removed} cached runs from {store.path}", file=out)
            return 0
        if args.cache_command == "export":
            dest = store.export(args.dest)
            print(f"exported {len(store)} entries to {dest}", file=out)
            return 0
        raise AssertionError(
            f"unhandled cache command {args.cache_command!r}"
        )  # pragma: no cover
    finally:
        store.close()


def _run_sweep(args: argparse.Namespace, out, err) -> int:
    """The ``repro sweep`` command group (adaptive Monte-Carlo sweeps)."""
    from repro.simulation.sweep import SweepCell, run_sweep

    keys = [key.strip() for key in args.cells.split(",") if key.strip()]
    unknown = [key for key in keys if key not in _FIGURE_FACTORIES]
    if unknown:
        print(
            f"unknown sweep cells: {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(_FIGURE_FACTORIES))})",
            file=err,
        )
        return 2
    if not keys:
        print("no sweep cells given (--cells is empty)", file=err)
        return 2
    cells = []
    for key in keys:
        scenario = _FIGURE_FACTORIES[key]()
        if args.horizon is not None:
            scenario = scenario.with_overrides(horizon=args.horizon)
        cells.append(SweepCell(key=key, scenario=scenario))
    from repro.exceptions import ConfigurationError

    try:
        result = run_sweep(
            cells,
            metric=args.metric,
            base_seed=args.base_seed,
            target_ci=args.target_ci,
            confidence=args.confidence,
            min_runs=args.min_runs,
            max_runs=args.max_runs,
            round_size=args.round_size,
            schedule=args.schedule,
            workers=args.workers,
            cache=_cache_mode(args),
            backend=args.backend,
        )
    except ConfigurationError as exc:
        print(str(exc), file=err)
        return 2
    if args.as_json:
        import json

        print(json.dumps(result.as_dict(), indent=2), file=out)
        return 0
    print(
        render_table(
            result.as_rows(),
            title=f"{result.metric} sweep ({result.schedule} schedule)",
        ),
        file=out,
    )
    print(
        f"executed {result.executed_runs} of {result.fixed_grid_runs} "
        f"fixed-grid runs in {result.rounds} round(s) "
        f"(saved {result.savings_fraction:.0%})",
        file=out,
    )
    return 0


def _run_trace(args: argparse.Namespace, out, err) -> int:
    """The ``repro trace`` command group (JSONL trace inspection)."""
    from repro.telemetry import load_trace

    try:
        summary = load_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"could not read trace {args.trace_file}: {exc}", file=err)
        return 2
    if args.trace_command == "summary":
        print(summary.render(), file=out)
        return 0
    if args.trace_command == "export":
        import json
        from pathlib import Path

        document = {"trace": str(args.trace_file), **summary.as_dict()}
        Path(args.dest).write_text(json.dumps(document, indent=2))
        print(f"exported {summary.events} span events to {args.dest}", file=out)
        return 0
    raise AssertionError(
        f"unhandled trace command {args.trace_command!r}"
    )  # pragma: no cover


def main(argv: Optional[List[str]] = None, out=None, err=None) -> int:
    """CLI entry point; returns the process exit code.

    ``out`` receives command output; ``err`` (default ``sys.stderr``)
    receives diagnostics, so piping stdout stays clean on failures.
    """
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    args = build_parser().parse_args(argv)

    profiling = getattr(args, "profile", False) or getattr(args, "trace_out", None)
    if not profiling:
        return _dispatch(args, out, err)

    from repro import telemetry

    tele = telemetry.enable(args.trace_out)
    try:
        code = _dispatch(args, out, err)
    finally:
        telemetry.disable()
    if args.profile:
        print(file=out)
        print(tele.summary().render(), file=out)
    if args.trace_out:
        print(f"wrote telemetry trace to {args.trace_out}", file=err)
    return code


def _dispatch(args: argparse.Namespace, out, err) -> int:
    """Route a parsed command line to its implementation."""
    if args.command == "list":
        print(experiments_table(), file=out)
        return 0

    if args.command == "run":
        try:
            experiment = get_experiment(args.experiment)
        except KeyError as exc:
            print(str(exc), file=err)
            return 2
        if args.experiment in _FIGURE_FACTORIES:
            return _run_figure(
                args.experiment,
                args.seed,
                not args.no_plot,
                out,
                args.workers,
                _cache_mode(args),
                args.backend,
                args.defense,
            )
        print(
            f"{experiment.identifier} is regenerated by its benchmark:\n"
            f"  pytest benchmarks/{experiment.bench} --benchmark-only",
            file=out,
        )
        return 0

    if args.command == "run-custom":
        import json

        from repro.simulation import load_scenario, scenario_from_dict

        try:
            if args.spec == "-":
                scenario = scenario_from_dict(json.load(sys.stdin))
            else:
                scenario = load_scenario(args.spec)
        except Exception as exc:  # surface any spec problem as exit code 2
            source = "<stdin>" if args.spec == "-" else args.spec
            print(f"could not load {source}: {exc}", file=err)
            return 2
        data = run_experiment(
            scenario,
            mode="figure",
            workers=args.workers,
            cache=_cache_mode(args),
            backend=args.backend,
            defense=args.defense,
        )
        rows = [
            data.baseline.summary().as_dict(),
            data.attacked.summary().as_dict(),
            data.defended.summary().as_dict(),
        ]
        print(render_table(rows, title=f"scenario {scenario.name!r}"), file=out)
        if data.defended.detection_times:
            print(
                f"detection at k = {data.defended.detection_times[0]:.0f} s",
                file=out,
            )
        return 0

    if args.command == "report":
        if args.markdown is not None:
            from pathlib import Path

            from repro.analysis.report import build_report

            seeds = list(range(args.seeds)) if args.seeds else None
            Path(args.markdown).write_text(
                build_report(
                    seeds=seeds,
                    workers=args.workers,
                    cache=_cache_mode(args),
                    backend=args.backend,
                )
            )
            print(f"wrote {args.markdown}", file=out)
            return 0
        return _run_report(out, args.workers, _cache_mode(args), args.backend)

    if args.command == "cache":
        return _run_cache(args, out, err)

    if args.command == "sweep":
        return _run_sweep(args, out, err)

    if args.command == "serve":
        from repro.service import serve

        return serve(
            args.host,
            args.port,
            store_path=args.store,
            store_shards=args.store_shards,
            workers=args.workers,
            backend=args.backend,
            max_retained_jobs=args.max_jobs,
            out=out,
            err=err,
        )

    if args.command == "trace":
        return _run_trace(args, out, err)

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
