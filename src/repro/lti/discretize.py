"""Discretization helpers for the continuous-time pieces of the paper.

The ACC lower-level closed loop (paper Eqn 14) is the first-order lag

    a_F(s) / a_des(s) = K_L / (T_L s + 1)

which we discretize exactly under a zero-order hold, and the vehicle
kinematics (Eqns 15-17) form a double integrator.  ``zoh_discretize``
provides the general matrix-exponential ZOH conversion used by both.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.linalg import expm

__all__ = [
    "first_order_lag_discrete",
    "zoh_discretize",
    "double_integrator_discrete",
]


def zoh_discretize(A_c, B_c, dt: float) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-order-hold discretization of ``x' = A_c x + B_c u``.

    Uses the standard augmented matrix-exponential construction

        exp([[A_c, B_c], [0, 0]] dt) = [[A_d, B_d], [0, I]].

    Parameters
    ----------
    A_c, B_c:
        Continuous-time state and input matrices.
    dt:
        Sample period in seconds, must be positive.

    Returns
    -------
    (A_d, B_d):
        Discrete-time state and input matrices.
    """
    if dt <= 0.0:
        raise ValueError(f"sample period must be positive, got {dt}")
    A_c = np.atleast_2d(np.asarray(A_c, dtype=float))
    B_c = np.atleast_2d(np.asarray(B_c, dtype=float))
    n = A_c.shape[0]
    m = B_c.shape[1]
    if A_c.shape != (n, n):
        raise ValueError(f"A_c must be square, got {A_c.shape}")
    if B_c.shape[0] != n:
        raise ValueError(f"B_c must have {n} rows, got {B_c.shape}")
    aug = np.zeros((n + m, n + m))
    aug[:n, :n] = A_c
    aug[:n, n:] = B_c
    exp_aug = expm(aug * dt)
    return exp_aug[:n, :n], exp_aug[:n, n:]


def first_order_lag_discrete(gain: float, time_constant: float, dt: float) -> Tuple[float, float]:
    """Exact ZOH discretization of ``K / (T s + 1)`` (paper Eqn 14).

    Returns ``(alpha, beta)`` such that

        a_F[k+1] = alpha * a_F[k] + beta * a_des[k]

    with ``alpha = exp(-dt/T)`` and ``beta = K (1 - alpha)``, so the
    discrete map inherits the continuous DC gain ``K`` exactly.
    """
    if time_constant <= 0.0:
        raise ValueError(f"time constant must be positive, got {time_constant}")
    if dt <= 0.0:
        raise ValueError(f"sample period must be positive, got {dt}")
    alpha = float(np.exp(-dt / time_constant))
    beta = gain * (1.0 - alpha)
    return alpha, beta


def double_integrator_discrete(dt: float) -> Tuple[np.ndarray, np.ndarray]:
    """Discrete double integrator for position/velocity kinematics.

    State ``[position, velocity]``, input acceleration — the matrix form
    of the paper's Eqns 15 and 17:

        x[k+1] = x[k] + v[k] dt + 0.5 a[k] dt^2
        v[k+1] = v[k] + a[k] dt
    """
    if dt <= 0.0:
        raise ValueError(f"sample period must be positive, got {dt}")
    A = np.array([[1.0, dt], [0.0, 1.0]])
    B = np.array([[0.5 * dt * dt], [dt]])
    return A, B
