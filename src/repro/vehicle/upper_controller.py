"""Upper-level ACC controller — CTH policy (paper Eqns 12-13).

The upper level turns the radar measurement ``(d, Δv)`` and the
follower's own speed ``v_F`` into a desired acceleration ``a_des``.

*Speed-control mode* (no relevant target): proportional tracking of the
set speed, ``a_des = k_v (v_set - v_F)``.

*Spacing-control mode*: the constant-time-headway law.  The paper's
Eqn 13 is OCR-garbled (see DESIGN.md §2); we implement the standard CTH
output-feedback form it describes — desired velocity proportional to the
clearance and inversely proportional to the headway time:

    v_des(k+1) = v_F(k) + (T / (τ_h K_L)) (Δd(k) + λ_v Δv(k))
    a_des(k)   = (v_des(k+1) - v_F(k)) / T
               = (Δd(k) + λ_v Δv(k)) / (τ_h K_L)

with clearance error ``Δd = d - d_des`` (Eqn 12: ``d_des = d_0 + τ_h
v_F``) and relative speed ``Δv = v_L - v_F``.  The controller arbitrates
the two modes by taking the smaller acceleration (a target demanding
less acceleration than cruise always wins), which yields the mode switch
the paper describes with hysteresis-free chatter immunity.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.vehicle.params import ACCParameters

__all__ = ["ControlMode", "UpperLevelOutput", "UpperLevelController"]


class ControlMode(Enum):
    """Which ACC objective is currently binding."""

    SPEED = "speed"
    SPACING = "spacing"


@dataclass(frozen=True)
class UpperLevelOutput:
    """Everything the upper level computed for one sample.

    ``desired_acceleration`` is the arbitration result; the per-mode
    commands and the CTH intermediate quantities are exposed for
    plotting and tests.
    """

    desired_acceleration: float
    mode: ControlMode
    desired_distance: float
    clearance_error: float
    speed_command: float
    spacing_command: Optional[float]
    desired_velocity: float


class UpperLevelController:
    """Stateless CTH upper-level controller (all state lives in the plant)."""

    def __init__(self, params: ACCParameters):
        self.params = params

    def speed_mode_command(self, follower_speed: float) -> float:
        """Speed-control acceleration: track ``v_set`` proportionally."""
        return self.params.speed_gain * (self.params.set_speed - follower_speed)

    def spacing_mode_command(
        self, follower_speed: float, distance: float, relative_velocity: float
    ) -> Tuple[float, float, float]:
        """CTH spacing acceleration.

        Returns ``(a_des, d_des, Δd)`` for the given measurement.
        """
        params = self.params
        desired_distance = params.desired_distance(follower_speed)
        clearance_error = distance - desired_distance
        command = (
            clearance_error + params.relative_velocity_weight * relative_velocity
        ) / (params.headway_time * params.system_gain)
        return command, desired_distance, clearance_error

    def compute(
        self,
        follower_speed: float,
        measurement: Optional[Tuple[float, float]],
    ) -> UpperLevelOutput:
        """Compute the desired acceleration for one sample.

        Parameters
        ----------
        follower_speed:
            The trusted own-speed measurement ``v_F`` (the paper assumes
            the follower's speed sensor is not under attack).
        measurement:
            The (possibly estimated) radar measurement ``(d, Δv)``, or
            None when no target is visible.
        """
        params = self.params
        speed_command = self.speed_mode_command(follower_speed)

        if measurement is None:
            a_des = min(
                params.max_acceleration, max(params.min_acceleration, speed_command)
            )
            return UpperLevelOutput(
                desired_acceleration=a_des,
                mode=ControlMode.SPEED,
                desired_distance=params.desired_distance(follower_speed),
                clearance_error=float("inf"),
                speed_command=speed_command,
                spacing_command=None,
                desired_velocity=follower_speed + a_des * params.sample_period,
            )

        distance, relative_velocity = measurement
        spacing_command, desired_distance, clearance_error = self.spacing_mode_command(
            follower_speed, distance, relative_velocity
        )
        # A distant, fast target relaxes the spacing demand above the
        # cruise demand; the stricter (smaller) of the two governs.
        if spacing_command < speed_command:
            mode = ControlMode.SPACING
            command = spacing_command
        else:
            mode = ControlMode.SPEED
            command = speed_command
        a_des = min(params.max_acceleration, max(params.min_acceleration, command))
        return UpperLevelOutput(
            desired_acceleration=a_des,
            mode=mode,
            desired_distance=desired_distance,
            clearance_error=clearance_error,
            speed_command=speed_command,
            spacing_command=spacing_command,
            desired_velocity=follower_speed + a_des * params.sample_period,
        )
