"""Declarative scenario specs (repro.simulation.spec)."""

import io
import json

import pytest

from repro import fig2_scenario, fig3_scenario, run
from repro.attacks import (
    AttackWindow,
    DelayInjectionAttack,
    DoSJammingAttack,
    PhantomTargetAttack,
)
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.simulation import (
    SPEC_VERSION,
    RunSpec,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.store.fingerprint import fingerprint_payload, run_fingerprint
from repro.vehicle import (
    ConstantAccelerationProfile,
    PiecewiseAccelerationProfile,
    StopAndGoProfile,
)


class TestRoundTrip:
    @pytest.mark.parametrize("factory,attack", [
        (fig2_scenario, "dos"),
        (fig2_scenario, "delay"),
        (fig3_scenario, "dos"),
    ])
    def test_paper_scenarios_round_trip(self, factory, attack):
        original = factory(attack)
        rebuilt = scenario_from_dict(scenario_to_dict(original))
        assert rebuilt.name == original.name
        assert rebuilt.challenge_times == original.challenge_times
        assert rebuilt.attack.window.start == original.attack.window.start
        assert rebuilt.defense == original.defense
        assert rebuilt.acc_params == original.acc_params
        assert rebuilt.radar_params == original.radar_params

    def test_round_trip_preserves_behaviour(self):
        original = fig2_scenario("delay")
        rebuilt = scenario_from_dict(scenario_to_dict(original))
        a = run(original, defended=True)
        b = run(rebuilt, defended=True)
        assert a.detection_times == b.detection_times
        assert a.min_gap() == pytest.approx(b.min_gap())

    def test_phantom_and_stop_and_go_round_trip(self):
        scenario = fig2_scenario("dos").with_overrides(
            name="custom",
            leader_profile=StopAndGoProfile(deceleration=0.8),
            attack=PhantomTargetAttack(
                AttackWindow(100.0, 200.0), phantom_distance=12.0
            ),
            follower_policy="idm",
            dropout_rate=0.05,
            adaptive_challenge_period=2.0,
        )
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt.leader_profile.deceleration == 0.8
        assert rebuilt.attack.phantom_distance == 12.0
        assert rebuilt.follower_policy == "idm"
        assert rebuilt.dropout_rate == 0.05
        assert rebuilt.adaptive_challenge_period == 2.0

    def test_json_file_round_trip(self, tmp_path):
        path = save_scenario(fig2_scenario("dos"), tmp_path / "spec.json")
        loaded = load_scenario(path)
        assert loaded.attack.window.start == 182.0
        # The file itself is valid, human-editable JSON.
        spec = json.loads(path.read_text())
        assert spec["leader_profile"]["kind"] == "constant"


#: One instance of every leader-profile kind the spec schema knows.
PROFILE_CASES = {
    "constant": ConstantAccelerationProfile(-0.1082, start_time=5.0),
    "piecewise": PiecewiseAccelerationProfile([(0.0, -0.1), (150.0, 0.012)]),
    "stop_and_go": StopAndGoProfile(
        deceleration=0.9,
        acceleration=0.7,
        brake_time=15.0,
        go_time=30.0,
        start_time=2.0,
    ),
}

#: One instance of every attack kind the spec schema knows.
ATTACK_CASES = {
    "dos": DoSJammingAttack(AttackWindow(182.0, 300.0)),
    "delay": DelayInjectionAttack(
        AttackWindow(180.0, 300.0),
        distance_offset=6.0,
        velocity_offset=1.5,
        ramp_time=10.0,
    ),
    "phantom": PhantomTargetAttack(
        AttackWindow(100.0, 200.0),
        phantom_distance=12.0,
        phantom_velocity=-3.0,
    ),
}


class TestDictLevelRoundTrip:
    """``scenario_to_dict(scenario_from_dict(d)) == d`` for every kind.

    The spec dict is the run store's cache key (:mod:`repro.store`), so
    the round trip must be exact at the dict level — not merely
    behaviour-preserving — or cached runs would miss after a reload.
    """

    @pytest.mark.parametrize("profile_kind", sorted(PROFILE_CASES))
    @pytest.mark.parametrize("attack_kind", sorted(ATTACK_CASES))
    def test_every_profile_and_attack_kind(self, profile_kind, attack_kind):
        scenario = fig2_scenario("dos").with_overrides(
            name=f"{profile_kind}-{attack_kind}",
            leader_profile=PROFILE_CASES[profile_kind],
            attack=ATTACK_CASES[attack_kind],
        )
        spec = scenario_to_dict(scenario)
        assert spec["leader_profile"]["kind"] == profile_kind
        assert spec["attack"]["kind"] == attack_kind
        assert scenario_to_dict(scenario_from_dict(spec)) == spec

    @pytest.mark.parametrize("profile_kind", sorted(PROFILE_CASES))
    def test_no_attack_round_trips(self, profile_kind):
        scenario = fig2_scenario("dos").with_overrides(
            name=f"{profile_kind}-clean",
            leader_profile=PROFILE_CASES[profile_kind],
            attack=None,
        )
        spec = scenario_to_dict(scenario)
        assert "attack" not in spec or spec["attack"] is None
        assert scenario_to_dict(scenario_from_dict(spec)) == spec


class TestSpecValidation:
    def test_minimal_spec_gets_defaults(self):
        scenario = scenario_from_dict(
            {"leader_profile": {"kind": "constant", "acceleration": -0.1}}
        )
        assert scenario.horizon == 300.0
        assert scenario.attack is None
        assert scenario.name == "custom"

    def test_missing_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict({})

    def test_unknown_profile_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict({"leader_profile": {"kind": "warp"}})

    def test_unknown_attack_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict(
                {
                    "leader_profile": {"kind": "constant", "acceleration": 0.0},
                    "attack": {"kind": "emp", "start": 0.0},
                }
            )


class TestSpecVersion:
    """The declarative format is versioned (spec.SPEC_VERSION)."""

    def test_serializer_stamps_current_version(self):
        spec = scenario_to_dict(fig2_scenario("dos"))
        # v2 added the defense block; v1 specs stay readable.
        assert spec["spec_version"] == SPEC_VERSION == 2

    def test_current_version_round_trips(self):
        spec = scenario_to_dict(fig2_scenario("dos"))
        assert scenario_to_dict(scenario_from_dict(spec)) == spec

    def test_missing_version_means_version_one(self):
        # Pre-versioning specs carried no marker; they are v1 by fiat.
        spec = scenario_to_dict(fig2_scenario("dos"))
        del spec["spec_version"]
        scenario = scenario_from_dict(spec)
        assert scenario.name == fig2_scenario("dos").name

    @pytest.mark.parametrize("bad", [0, 3, 99, "1", None])
    def test_unknown_version_rejected(self, bad):
        spec = scenario_to_dict(fig2_scenario("dos"))
        spec["spec_version"] = bad
        with pytest.raises(ConfigurationError, match="spec_version"):
            scenario_from_dict(spec)

    def test_version_never_leaks_into_scenario(self):
        scenario = scenario_from_dict(scenario_to_dict(fig2_scenario("dos")))
        assert not hasattr(scenario, "spec_version")

    def test_version_salts_run_fingerprint(self):
        # The store serializes scenarios via scenario_to_dict, so the
        # format revision is part of every cache key.
        spec = RunSpec(fig2_scenario("dos", horizon=20.0))
        payload = fingerprint_payload(spec)
        assert payload["scenario"]["spec_version"] == SPEC_VERSION
        assert run_fingerprint(spec) is not None


class TestCLIRunCustom:
    def test_runs_spec_file(self, tmp_path):
        path = save_scenario(fig2_scenario("dos"), tmp_path / "spec.json")
        out = io.StringIO()
        code = main(["run-custom", str(path)], out=out)
        assert code == 0
        assert "detection at k = 182 s" in out.getvalue()

    def test_bad_file_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        out = io.StringIO()
        assert main(["run-custom", str(bad)], out=out) == 2

    def test_reads_spec_from_stdin(self, monkeypatch):
        spec = scenario_to_dict(fig2_scenario("dos"))
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(spec)))
        out = io.StringIO()
        assert main(["run-custom", "-"], out=out) == 0
        assert "detection at k = 182 s" in out.getvalue()

    def test_bad_stdin_exits_2(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("{not json"))
        out, err = io.StringIO(), io.StringIO()
        assert main(["run-custom", "-"], out=out, err=err) == 2
        assert out.getvalue() == ""  # diagnostics go to stderr
        assert "<stdin>" in err.getvalue()
