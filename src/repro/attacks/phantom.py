"""Phantom-target injection ("ghost braking") attack.

The delay-injection attack of §4.1 can only make the target appear
*farther* (injected delay adds range).  An active attacker that
synthesizes its own chirp-matched signal — rather than replaying the
echo — can place a counterfeit target at an arbitrary range, including
*closer* than the real one.  A phantom a few meters ahead triggers
maximal braking: the availability counterpart of the paper's
safety-violation attacks (the vehicle is harmless but undrivable, and a
trailing human driver may rear-end it).

Because the phantom generator, like the replay hardware, cannot
anticipate the CRA challenges, it keeps transmitting at challenge
instants and is caught exactly like the paper's two attacks.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackWindow
from repro.radar.sensor import AttackEffect
from repro.types import AttackLabel

__all__ = ["PhantomTargetAttack"]


class PhantomTargetAttack(Attack):
    """Inject a counterfeit target at an absolute range/velocity.

    Parameters
    ----------
    window:
        Activation interval.
    phantom_distance:
        Absolute range of the phantom, meters (typically much closer
        than the real target).
    phantom_velocity:
        Absolute relative velocity of the phantom, m/s (e.g. a strongly
        negative value mimics a hard-braking obstacle).
    counterfeit_power_gain:
        Phantom-to-echo power ratio (> 1 to capture the receiver).
    """

    def __init__(
        self,
        window: AttackWindow,
        phantom_distance: float = 10.0,
        phantom_velocity: float = -5.0,
        counterfeit_power_gain: float = 4.0,
    ):
        super().__init__(window)
        if phantom_distance <= 0.0:
            raise ValueError(
                f"phantom_distance must be positive, got {phantom_distance}"
            )
        if counterfeit_power_gain <= 1.0:
            raise ValueError(
                "counterfeit_power_gain must exceed 1 for the phantom to "
                f"capture the receiver, got {counterfeit_power_gain}"
            )
        self.phantom_distance = float(phantom_distance)
        self.phantom_velocity = float(phantom_velocity)
        self.counterfeit_power_gain = float(counterfeit_power_gain)

    @property
    def label(self) -> AttackLabel:
        # The phantom is a spoofing attack; ground-truth metrics group it
        # with the delay family.
        return AttackLabel.DELAY

    def _effect(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float = 0.0,
    ) -> AttackEffect:
        # The sensor API expresses spoofing as offsets from the true
        # scene; an absolute phantom is the difference.
        return AttackEffect(
            spoof_distance_offset=self.phantom_distance - true_distance,
            spoof_velocity_offset=self.phantom_velocity - true_relative_velocity,
            replace_echo=True,
            counterfeit_power_gain=self.counterfeit_power_gain,
        )
