"""Eqn 11 — jamming feasibility sweep.

The paper's attack-success criterion is ``P_r / P_jammer < 1``.  This
bench sweeps jammer power and target distance, locates the burn-through
crossover, and verifies the paper's own jammer (100 mW, 10 dBi,
155 MHz) swamps the echo everywhere inside the LRR2 envelope.
"""

import numpy as np

from conftest import emit
from repro import BOSCH_LRR2, JammerParameters, jamming_power_ratio, jamming_succeeds
from repro.analysis import render_table
from repro.radar.link_budget import burn_through_range


def bench_jammer_feasibility(benchmark):
    def sweep():
        rows = []
        for power_mw in (1e-6, 1e-4, 1e-2, 1.0, 100.0):
            jammer = JammerParameters(peak_power=power_mw * 1e-3)
            d_bt = burn_through_range(BOSCH_LRR2, jammer)
            rows.append(
                {
                    "jammer_power_mW": power_mw,
                    "burn_through_m": round(d_bt, 2),
                    "ratio_at_35m": f"{jamming_power_ratio(BOSCH_LRR2, jammer, 35.0):.2e}",
                    "ratio_at_100m": f"{jamming_power_ratio(BOSCH_LRR2, jammer, 100.0):.2e}",
                    "succeeds_at_35m": jamming_succeeds(BOSCH_LRR2, jammer, 35.0),
                    "succeeds_at_100m": jamming_succeeds(BOSCH_LRR2, jammer, 100.0),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape claims: burn-through range shrinks with jammer power, the
    # crossover exists, and the paper's jammer wins everywhere in-envelope.
    burn_throughs = [row["burn_through_m"] for row in rows]
    assert all(a > b for a, b in zip(burn_throughs, burn_throughs[1:]))
    paper_jammer = JammerParameters()
    # Burn-through sits at ~2.3 m — essentially the bumper; jamming wins
    # everywhere a car-following scenario can live.
    assert burn_through_range(BOSCH_LRR2, paper_jammer) < 3.0
    for distance in np.linspace(5.0, BOSCH_LRR2.max_range, 20):
        assert jamming_succeeds(BOSCH_LRR2, paper_jammer, float(distance))

    crossover = next(row for row in rows if not row["succeeds_at_100m"])
    emit(
        "jammer_feasibility",
        "\n\n".join(
            [
                render_table(
                    rows,
                    title="Eqn 11 sweep: P_r/P_jammer and burn-through range "
                    "vs jammer power",
                ),
                f"Paper's 100 mW jammer: burn-through at "
                f"{burn_through_range(BOSCH_LRR2, paper_jammer):.3f} m — jamming "
                f"succeeds over essentially the entire LRR2 envelope.",
                f"Crossover: a {crossover['jammer_power_mW']} mW jammer no longer "
                "swamps a 100 m echo.",
            ]
        ),
    )
