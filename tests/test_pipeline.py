"""Algorithm 2 pipeline (repro.core.pipeline)."""

import pytest

from repro.core import (
    ChallengeSchedule,
    ChannelPredictor,
    CRADetector,
    DeadReckoningEstimator,
    RadarChannelEstimator,
    SafeMeasurementPipeline,
)
from repro.types import RadarMeasurement, SensorStatus


SCHEDULE = ChallengeSchedule.from_times([15.0, 50.0, 175.0, 182.0, 195.0, 209.0])


def make_pipeline(estimator=None, rollback=True):
    return SafeMeasurementPipeline(
        detector=CRADetector(SCHEDULE),
        estimator=estimator,
        rollback_on_detection=rollback,
    )


def sensor_stream(horizon=300, attack_start=None, spoof=6.0):
    """Clean linear scene with an optional distance spoof."""
    for k in range(horizon):
        time = float(k)
        true_d = 100.0 - 0.2 * k
        true_dv = -0.2
        if SCHEDULE.is_challenge(time):
            if attack_start is not None and time >= attack_start:
                yield RadarMeasurement(
                    time=time,
                    distance=true_d + spoof,
                    relative_velocity=true_dv,
                    status=SensorStatus.CHALLENGE,
                )
            else:
                yield RadarMeasurement(
                    time=time,
                    distance=0.0,
                    relative_velocity=0.0,
                    status=SensorStatus.CHALLENGE,
                )
        elif attack_start is not None and time >= attack_start:
            yield RadarMeasurement(
                time=time, distance=true_d + spoof, relative_velocity=true_dv
            )
        else:
            yield RadarMeasurement(time=time, distance=true_d, relative_velocity=true_dv)


class TestCleanOperation:
    def test_passthrough_of_trusted_samples(self):
        pipeline = make_pipeline()
        out = pipeline.process(
            RadarMeasurement(time=0.0, distance=100.0, relative_velocity=-1.0)
        )
        assert not out.estimated
        assert out.distance == 100.0
        assert not out.attack_active

    def test_challenge_bridged_by_estimate(self):
        pipeline = make_pipeline()
        for m in sensor_stream(horizon=50):
            out = pipeline.process(m)
        # At the k = 15 challenge the controller never saw a zero.
        bridged = [o for o in pipeline.outputs if o.time == 15.0][0]
        assert bridged.estimated
        assert bridged.distance == pytest.approx(100.0 - 0.2 * 15.0, abs=1.0)

    def test_no_alarm_without_attack(self):
        pipeline = make_pipeline()
        for m in sensor_stream(horizon=300):
            pipeline.process(m)
        assert not pipeline.attack_active
        assert all(not e.attack_detected for e in pipeline.detection_events)

    def test_bookkeeping_lists(self):
        pipeline = make_pipeline()
        for m in sensor_stream(horizon=60):
            pipeline.process(m)
        assert len(pipeline.raw_measurements) == 60
        assert len(pipeline.outputs) == 60
        estimated = pipeline.estimated_outputs
        assert {o.time for o in estimated} == {15.0, 50.0}


class TestAttackHandling:
    def test_detection_and_substitution(self):
        pipeline = make_pipeline()
        for m in sensor_stream(horizon=300, attack_start=180.0):
            pipeline.process(m)
        assert pipeline.detector.first_detection_time == 182.0
        # Every output from detection on is estimated.
        late = [o for o in pipeline.outputs if o.time >= 182.0]
        assert all(o.estimated for o in late)
        assert all(o.attack_active for o in late)

    def test_estimates_ignore_spoofed_values(self):
        pipeline = make_pipeline()
        for m in sensor_stream(horizon=300, attack_start=180.0):
            pipeline.process(m)
        at_250 = [o for o in pipeline.outputs if o.time == 250.0][0]
        truth = 100.0 - 0.2 * 250.0
        spoofed = truth + 6.0
        assert abs(at_250.distance - truth) < abs(at_250.distance - spoofed)

    def test_rollback_removes_pre_detection_pollution(self):
        # Attack starts at 180; samples 180-181 are corrupted and
        # ingested; rollback discards them at the 182 detection.
        with_rollback = make_pipeline(rollback=True)
        without = make_pipeline(rollback=False)
        for m in sensor_stream(horizon=300, attack_start=180.0, spoof=30.0):
            with_rollback.process(m)
        for m in sensor_stream(horizon=300, attack_start=180.0, spoof=30.0):
            without.process(m)
        truth = 100.0 - 0.2 * 185.0
        est_rb = [o for o in with_rollback.outputs if o.time == 185.0][0].distance
        est_no = [o for o in without.outputs if o.time == 185.0][0].distance
        assert abs(est_rb - truth) < abs(est_no - truth)

    def test_recovery_after_attack_ends(self):
        pipeline = make_pipeline()
        for k in range(300):
            time = float(k)
            attacked = 180.0 <= time < 200.0
            is_challenge = SCHEDULE.is_challenge(time)
            true_d = 100.0 - 0.2 * k
            if is_challenge and not attacked:
                m = RadarMeasurement(
                    time=time, distance=0.0, relative_velocity=0.0,
                    status=SensorStatus.CHALLENGE,
                )
            elif attacked:
                m = RadarMeasurement(
                    time=time, distance=true_d + 6.0, relative_velocity=-0.2
                )
            else:
                m = RadarMeasurement(time=time, distance=true_d, relative_velocity=-0.2)
            pipeline.process(m)
        # The 209 clean challenge clears the alarm; later samples pass through.
        assert not pipeline.attack_active
        late = [o for o in pipeline.outputs if o.time == 250.0][0]
        assert not late.estimated
        assert late.distance == pytest.approx(100.0 - 0.2 * 250.0)


class TestEstimatorFallbacks:
    def test_untrained_estimator_holds_last_trusted(self):
        schedule = ChallengeSchedule.from_times([2.0])
        pipeline = SafeMeasurementPipeline(detector=CRADetector(schedule))
        pipeline.process(RadarMeasurement(time=0.0, distance=80.0, relative_velocity=-1.0))
        pipeline.process(RadarMeasurement(time=1.0, distance=79.0, relative_velocity=-1.0))
        out = pipeline.process(
            RadarMeasurement(
                time=2.0, distance=0.0, relative_velocity=0.0,
                status=SensorStatus.CHALLENGE,
            )
        )
        assert out.estimated
        assert out.distance == 79.0

    def test_nothing_trusted_yet_returns_zero(self):
        schedule = ChallengeSchedule.from_times([0.0])
        pipeline = SafeMeasurementPipeline(detector=CRADetector(schedule))
        out = pipeline.process(
            RadarMeasurement(
                time=0.0, distance=0.0, relative_velocity=0.0,
                status=SensorStatus.CHALLENGE,
            )
        )
        assert out.distance == 0.0

    def test_dead_reckoning_estimator_integration(self):
        pipeline = make_pipeline(
            estimator=DeadReckoningEstimator(
                leader_velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e8)
            )
        )
        vF = 20.0
        for m in sensor_stream(horizon=300, attack_start=180.0):
            pipeline.process(m, follower_speed=vF)
        at_250 = [o for o in pipeline.outputs if o.time == 250.0][0]
        assert at_250.estimated
        assert at_250.distance == pytest.approx(100.0 - 0.2 * 250.0, abs=2.0)
