"""Lightweight tracing/metrics for the run pipeline (``repro.telemetry``).

The pipeline this library executes — radar sensing → closed-loop
engine → batch fan-out → run store → report — is instrumented with
*spans* (timed regions) and *counters*.  All instrumentation routes
through a module-level gate that is **off by default**: with no active
session, every hook is a global read plus a ``None`` check, so the
simulation pays effectively nothing (asserted by
``benchmarks/bench_telemetry_overhead.py``).

Quick use::

    from repro import telemetry

    with telemetry.session("trace.jsonl") as tele:
        repro.run(repro.fig2_scenario("dos"), mode="figure")
        print(tele.summary().render())       # per-stage ASCII table

What gets recorded when a session is active:

* ``engine.sense`` / ``engine.estimate`` / ``engine.control`` — the
  step loop's per-run stage times (one span per stage per run);
* ``batch.run`` — one span per executed :class:`~repro.simulation.batch.RunSpec`
  with worker pid, queue wait, cache-hit flag and error status, plus a
  batch-scoped aggregate on ``BatchResult.telemetry``;
* ``store.*`` counters — run-store hits/misses/writes and payload
  bytes;
* ``report.panel`` / ``report.seed_sweep`` — the report builder's
  sections.

The CLI mirror is ``--profile`` / ``--trace PATH`` on ``repro run``,
``run-custom`` and ``report``, and ``repro trace {summary,export}``
for inspecting a written JSONL trace.
"""

from repro.telemetry.core import (
    NULL_SPAN,
    Span,
    Telemetry,
    current,
    disable,
    enable,
    enabled,
    incr,
    session,
    span,
)
from repro.telemetry.summary import (
    SpanStats,
    TelemetrySummary,
    load_events,
    load_trace,
    summarize,
)

__all__ = [
    "Telemetry",
    "Span",
    "NULL_SPAN",
    "current",
    "enabled",
    "enable",
    "disable",
    "session",
    "span",
    "incr",
    "SpanStats",
    "TelemetrySummary",
    "summarize",
    "load_trace",
    "load_events",
]
