"""Chirp-level mixing (repro.radar.dechirp) vs the direct beat model.

The direct beat synthesis used by the sensor is a shortcut; these tests
validate it against the actual FMCW mixing physics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.radar import FMCWParameters, RadarReceiver, beat_frequencies, root_music
from repro.radar.dechirp import chirp_phase, dechirp_scene, dechirped_echo

PARAMS = FMCWParameters()


class TestChirpPhase:
    def test_instantaneous_frequency_is_linear(self):
        fs = 10e6
        t = np.arange(1000) / fs
        phase = chirp_phase(t, start_frequency=1e5, slope=1e9)
        inst_freq = np.diff(phase) / (2.0 * np.pi) * fs
        assert inst_freq[0] == pytest.approx(1e5, rel=0.05)
        # Frequency grows linearly with slope S.
        assert np.diff(inst_freq).mean() == pytest.approx(1e9 / fs, rel=0.05)


class TestDechirpedEcho:
    @pytest.mark.parametrize(
        "distance,velocity", [(20.0, 0.0), (80.0, -3.0), (150.0, 10.0)]
    )
    def test_up_sweep_tone_matches_eqn5(self, distance, velocity):
        f_up, _ = beat_frequencies(PARAMS, distance, velocity)
        signal = dechirped_echo(PARAMS, distance, velocity, up_sweep=True)
        estimated = root_music(signal, 1, PARAMS.sample_rate)[0]
        assert estimated == pytest.approx(f_up, abs=50.0)

    @pytest.mark.parametrize(
        "distance,velocity", [(20.0, 0.0), (80.0, -3.0), (150.0, 10.0)]
    )
    def test_down_sweep_tone_matches_eqn6(self, distance, velocity):
        _, f_down = beat_frequencies(PARAMS, distance, velocity)
        signal = dechirped_echo(PARAMS, distance, velocity, up_sweep=False)
        estimated = root_music(signal, 1, PARAMS.sample_rate)[0]
        assert estimated == pytest.approx(f_down, abs=50.0)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            dechirped_echo(PARAMS, 0.0, 0.0)


class TestSceneRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=5.0, max_value=195.0),
        st.floats(min_value=-25.0, max_value=25.0),
    )
    def test_receiver_recovers_scene_from_mixed_chirps(self, distance, velocity):
        """Full physics path: chirp mixing → receiver → scene."""
        up, down = dechirp_scene(PARAMS, distance, velocity, amplitude=1.0)
        receiver = RadarReceiver(PARAMS, detection_threshold_factor=1.0 + 1e-9)
        output = receiver.process(up, down)
        assert output.present
        assert output.distance == pytest.approx(distance, abs=0.5)
        assert output.relative_velocity == pytest.approx(velocity, abs=0.3)

    def test_agrees_with_direct_beat_synthesis(self):
        """The sensor's shortcut and the physics path give the same scene."""
        from repro.radar.signal_synth import synthesize_beat_signal

        distance, velocity = 80.0, -3.0
        f_up, f_down = beat_frequencies(PARAMS, distance, velocity)
        direct_up = synthesize_beat_signal(
            f_up, 1.0, PARAMS.samples_per_segment, PARAMS.sample_rate, phase=0.0
        )
        physics_up = dechirped_echo(PARAMS, distance, velocity, up_sweep=True)
        f_direct = root_music(direct_up, 1, PARAMS.sample_rate)[0]
        f_physics = root_music(physics_up, 1, PARAMS.sample_rate)[0]
        assert f_physics == pytest.approx(f_direct, abs=20.0)
