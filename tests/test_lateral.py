"""Lateral dynamics extension (repro.vehicle.lateral)."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.vehicle.lateral import (
    ArcLane,
    BicycleKinematics,
    LaneKeepingController,
    LateralSimulation,
    LateralState,
    SinusoidalLane,
    StraightLane,
)


class TestBicycleKinematics:
    def test_straight_line_motion(self):
        model = BicycleKinematics()
        state = LateralState(x=0.0, y=0.0, heading=0.0, speed=20.0)
        state = model.step(state, steering=0.0, acceleration=0.0, dt=1.0)
        assert state.x == pytest.approx(20.0)
        assert state.y == pytest.approx(0.0)
        assert state.heading == pytest.approx(0.0)

    def test_turning_curvature(self):
        # Steady steering δ gives yaw rate v tan(δ)/L.
        model = BicycleKinematics(wheelbase=2.8)
        state = LateralState(x=0.0, y=0.0, heading=0.0, speed=10.0)
        delta = 0.1
        state2 = model.step(state, steering=delta, acceleration=0.0, dt=0.1)
        expected_rate = 10.0 * math.tan(delta) / 2.8
        assert state2.heading == pytest.approx(expected_rate * 0.1, rel=1e-6)

    def test_left_steer_moves_left(self):
        model = BicycleKinematics()
        state = LateralState(x=0.0, y=0.0, heading=0.0, speed=15.0)
        for _ in range(20):
            state = model.step(state, steering=0.05, acceleration=0.0, dt=0.1)
        assert state.y > 0.0

    def test_steering_saturation(self):
        model = BicycleKinematics(max_steering=0.3)
        assert model.clamp_steering(1.0) == 0.3
        assert model.clamp_steering(-1.0) == -0.3

    def test_speed_never_negative(self):
        model = BicycleKinematics()
        state = LateralState(x=0.0, y=0.0, heading=0.0, speed=1.0)
        state = model.step(state, 0.0, acceleration=-5.0, dt=1.0)
        assert state.speed == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BicycleKinematics(wheelbase=0.0)
        with pytest.raises(ConfigurationError):
            BicycleKinematics(max_steering=2.0)
        with pytest.raises(ValueError):
            BicycleKinematics().step(
                LateralState(0, 0, 0, 10.0), 0.0, 0.0, dt=0.0
            )
        with pytest.raises(ValueError):
            LateralState(0, 0, 0, speed=-1.0)


class TestLanePaths:
    def test_straight(self):
        lane = StraightLane(y0=1.0)
        assert lane.lateral_reference(100.0) == 1.0
        assert lane.heading_reference(100.0) == 0.0

    def test_arc(self):
        lane = ArcLane(curvature=1e-3)
        assert lane.lateral_reference(100.0) == pytest.approx(5.0)
        assert lane.heading_reference(100.0) == pytest.approx(math.atan(0.1))

    def test_arc_validation(self):
        with pytest.raises(ConfigurationError):
            ArcLane(curvature=0.5)

    def test_sinusoidal(self):
        lane = SinusoidalLane(amplitude=2.0, wavelength=400.0)
        assert lane.lateral_reference(0.0) == pytest.approx(0.0)
        assert lane.lateral_reference(100.0) == pytest.approx(2.0)
        assert lane.heading_reference(0.0) > 0.0

    def test_offset_of(self):
        lane = StraightLane()
        state = LateralState(x=10.0, y=-0.7, heading=0.0, speed=20.0)
        assert lane.offset_of(state) == pytest.approx(-0.7)


class TestLaneKeeping:
    def test_converges_from_initial_offset(self):
        sim = LateralSimulation(StraightLane())
        result = sim.run(
            LateralState(x=0.0, y=1.5, heading=0.0, speed=25.0), duration=60.0
        )
        assert abs(result.offsets[-1]) < 0.05
        # No severe overshoot.
        assert result.max_offset() < 2.0

    def test_tracks_arc(self):
        sim = LateralSimulation(ArcLane(curvature=1e-3))
        result = sim.run(
            LateralState(x=0.0, y=0.0, heading=0.0, speed=25.0), duration=40.0
        )
        assert result.max_offset(after=15.0) < 0.5

    def test_tracks_slalom(self):
        sim = LateralSimulation(SinusoidalLane(amplitude=1.5, wavelength=500.0))
        result = sim.run(
            LateralState(x=0.0, y=0.0, heading=0.0, speed=25.0), duration=60.0
        )
        assert result.max_offset(after=20.0) < 0.6

    def test_rejects_heading_disturbance(self):
        # Constant crosswind-style yaw bias: the PD holds a bounded offset.
        sim = LateralSimulation(
            StraightLane(), heading_disturbance=lambda t: 0.005
        )
        result = sim.run(
            LateralState(x=0.0, y=0.0, heading=0.0, speed=25.0), duration=80.0
        )
        assert result.max_offset(after=30.0) < 1.5

    def test_steering_stays_saturated_bounded(self):
        controller = LaneKeepingController(model=BicycleKinematics(max_steering=0.3))
        sim = LateralSimulation(StraightLane(), controller=controller)
        result = sim.run(
            LateralState(x=0.0, y=5.0, heading=0.5, speed=30.0), duration=30.0
        )
        assert max(abs(s) for s in result.steering) <= 0.3 + 1e-12

    def test_decelerating_profile(self):
        sim = LateralSimulation(
            StraightLane(), speed_profile=lambda t: -0.1082
        )
        result = sim.run(
            LateralState(x=0.0, y=0.5, heading=0.0, speed=29.0), duration=60.0
        )
        assert result.states[-1].speed < 29.0
        assert abs(result.offsets[-1]) < 0.2

    def test_offset_series(self):
        sim = LateralSimulation(StraightLane())
        result = sim.run(
            LateralState(x=0.0, y=0.2, heading=0.0, speed=20.0), duration=5.0
        )
        series = result.offset_series()
        assert len(series) == len(result.times)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LaneKeepingController(lateral_gain=0.0)
        with pytest.raises(ConfigurationError):
            LateralSimulation(StraightLane(), dt=0.0)
        with pytest.raises(ValueError):
            LateralSimulation(StraightLane()).run(
                LateralState(0, 0, 0, 10.0), duration=0.0
            )
