"""Result persistence (repro.simulation.io)."""

import csv

import numpy as np
import pytest

from repro import fig2_scenario, run
from repro.simulation.io import export_csv, export_json, load_json


@pytest.fixture(scope="module")
def result():
    return run(fig2_scenario("dos", horizon=60.0), defended=True)


class TestCSVExport:
    def test_writes_rectangular_table(self, result, tmp_path):
        path = export_csv(result, tmp_path / "run.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        header, data = rows[0], rows[1:]
        assert header[0] == "time"
        assert "true_distance" in header
        assert len(data) == len(result.times)
        assert all(len(row) == len(header) for row in data)

    def test_values_match_traces(self, result, tmp_path):
        path = export_csv(result, tmp_path / "run.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        header = rows[0]
        column = header.index("follower_velocity")
        values = np.array([float(row[column]) for row in rows[1:]])
        assert np.allclose(values, result.array("follower_velocity"))


class TestJSONRoundTrip:
    def test_metadata_preserved(self, result, tmp_path):
        path = export_json(result, tmp_path / "run.json")
        loaded = load_json(path)
        assert loaded.name == result.name
        assert loaded.attack_name == result.attack_name
        assert loaded.defended == result.defended
        assert loaded.collision_time == result.collision_time

    def test_traces_preserved(self, result, tmp_path):
        loaded = load_json(export_json(result, tmp_path / "run.json"))
        assert set(loaded.traces) == set(result.traces)
        for name in result.traces:
            assert np.allclose(loaded.array(name), result.array(name))

    def test_detection_events_preserved(self, result, tmp_path):
        loaded = load_json(export_json(result, tmp_path / "run.json"))
        assert len(loaded.detection_events) == len(result.detection_events)
        for a, b in zip(loaded.detection_events, result.detection_events):
            assert a.time == b.time
            assert a.attack_detected == b.attack_detected

    def test_derived_metrics_survive(self, result, tmp_path):
        loaded = load_json(export_json(result, tmp_path / "run.json"))
        assert loaded.min_gap() == pytest.approx(result.min_gap())
        assert loaded.detection_times == result.detection_times
        assert loaded.summary().as_dict() == result.summary().as_dict()
