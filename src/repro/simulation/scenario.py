"""Scenario definitions for the car-following experiments (paper §6.2).

Shared experimental constants (paper §6.2):

* leader initial speed 65 mph, follower initial speed = set speed 67 mph;
* initial inter-vehicle distance 100 m;
* scenario (i): leader decelerates constantly at −0.1082 m/s²;
* scenario (ii): leader decelerates at −0.1082 m/s², then accelerates at
  +0.012 m/s² (the switch time is not given in the paper; we use 150 s);
* DoS attack active on [182, 300] s with the §6.2 jammer;
* delay-injection attack active on [180, 300] s spoofing +6 m;
* CRA challenges at k = 15, 50, 175, … (the paper names those three; the
  full default schedule below includes them and continues at a similar
  cadence, with a challenge at 182 so both attacks are caught there, as
  the paper reports).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.attacks import Attack, AttackWindow, DelayInjectionAttack, DoSJammingAttack
from repro.core.cra import ChallengeSchedule
from repro.core.regressors import ARBasis, PolynomialBasis, RegressorBasis
from repro.exceptions import ConfigurationError
from repro.radar.link_budget import JammerParameters
from repro.radar.params import FMCWParameters
from repro.units import mph_to_mps
from repro.vehicle.leader import (
    ConstantAccelerationProfile,
    LeaderProfile,
    PiecewiseAccelerationProfile,
)
from repro.vehicle.params import ACCParameters

__all__ = [
    "DEFENSE_STRATEGIES",
    "DefenseConfig",
    "Scenario",
    "paper_challenge_times",
    "fig2_scenario",
    "fig3_scenario",
    "PAPER_DOS_ATTACK_START",
    "PAPER_DELAY_ATTACK_START",
    "PAPER_HORIZON",
]

#: Paper constants (§6.2).
PAPER_HORIZON = 300.0
PAPER_DOS_ATTACK_START = 182.0
PAPER_DELAY_ATTACK_START = 180.0
PAPER_DELAY_DISTANCE_OFFSET = 6.0
PAPER_LEADER_DECELERATION = -0.1082
PAPER_LEADER_ACCELERATION = 0.012
#: Switch time for scenario (ii); not stated in the paper.
FIG3_SWITCH_TIME = 150.0

#: Defense families selectable on :attr:`DefenseConfig.strategy`:
#:
#: * ``"rls"`` — the paper's defense: CRA detection + RLS-based
#:   measurement replacement (estimator per ``estimator_kind``);
#: * ``"secure_reconstruction"`` — CRA detection + window-based secure
#:   state reconstruction over the follower-relative LTI model
#:   (:mod:`repro.defense`) substituting attacked measurements;
#: * ``"safety_filter"`` — the RLS pipeline plus a control-barrier
#:   clamp on the commanded acceleration that keeps the gap above the
#:   safe distance even while detection lags;
#: * ``"combined"`` — secure reconstruction feeding the safety filter
#:   (the Tan et al. 2025 secure-safety-filter architecture).
DEFENSE_STRATEGIES = (
    "rls",
    "secure_reconstruction",
    "safety_filter",
    "combined",
)


def paper_challenge_times(horizon: float = PAPER_HORIZON) -> Tuple[float, ...]:
    """The default challenge schedule.

    Contains the instants the paper names (15, 50, 175) plus further
    pseudo-random-looking instants at a comparable cadence, including
    k = 182 where the paper reports both attacks being detected.
    """
    base = (
        15.0,
        50.0,
        85.0,
        112.0,
        137.0,
        159.0,
        175.0,
        182.0,
        195.0,
        209.0,
        222.0,
        236.0,
        251.0,
        264.0,
        278.0,
        291.0,
    )
    return tuple(t for t in base if t <= horizon)


@dataclass(frozen=True)
class DefenseConfig:
    """Configuration of the CRA + RLS defense pipeline.

    Attributes
    ----------
    forgetting:
        Algorithm 1's forgetting factor ``λ`` for both channels.
    delta:
        Initial correlation scale ``P_0 = δ I``.  The paper sets δ = 1;
        that acts as a ridge prior shrinking the fitted trend toward
        zero, which biases long-horizon forecasts (see the forgetting
        ablation bench).  Haykin's guidance is large δ for high SNR.
    basis_kind, basis_order:
        Regressor construction: ``"polynomial"`` of the given degree or
        ``"ar"`` of the given order.
    time_scale:
        Time normalization for polynomial bases, seconds.
    min_training_samples:
        Trusted samples required before the estimator may forecast.
    zero_tolerance:
        Detector tolerance on "zero" receiver outputs.
    estimator_kind:
        ``"dead_reckoning"`` (leader-velocity RLS + trusted-ego-speed gap
        integration, drift-free on long attacks; the default) or
        ``"per_channel"`` (the paper's literal independent per-channel
        RLS; see the estimator ablation bench for the contrast).
    margin_gain:
        Uncertainty-margin strength of the dead-reckoning estimator
        (ignored by the per-channel estimator).
    adaptive_forgetting, min_forgetting:
        Variable-forgetting-factor RLS: dump memory (down to
        ``min_forgetting``) when residuals spike, so the leader model
        re-converges within a few samples of a regime change (e.g. the
        leader starting an emergency brake just before the attack).
    rollback_on_detection:
        Roll the estimator back to the last clean-challenge snapshot
        when an alarm is raised (discards unauthenticated samples).
    strategy:
        Defense family — one of :data:`DEFENSE_STRATEGIES`.  ``"rls"``
        (the paper's pipeline, default), ``"secure_reconstruction"``
        (window-based secure state reconstruction substituting attacked
        measurements), ``"safety_filter"`` (RLS pipeline + CBF clamp on
        the commanded acceleration) or ``"combined"`` (reconstruction
        feeding the filter).  See :mod:`repro.defense` and
        ``docs/defenses.md``.
    secure_window:
        Trusted-sample window length of the secure reconstruction.
    secure_sparsity:
        Assumed maximum number of simultaneously attacked sensors
        ``s``; the recovery guarantee needs 2s-sparse observability.
    secure_residual_threshold:
        RMS residual (meters) above which a sensor subset is rejected
        as inconsistent during reconstruction.
    filter_headway, filter_minimum_gap:
        Safe-distance definition of the safety filter's barrier
        ``h = d - d_min - τ·v_F`` (seconds, meters).
    filter_gamma:
        Barrier decay rate ``γ`` in (0, 1]: the filter enforces
        ``h(k+1) >= (1 - γ)·h(k)`` — smaller is more conservative.
    filter_leader_accel_bound:
        Physical bound (m/s²) on how fast the filter's certified gap
        track may grow between accepted measurements; spoofs that
        inflate the gap faster than this are clamped.
    """

    forgetting: float = 0.95
    delta: float = 100.0
    basis_kind: str = "polynomial"
    basis_order: int = 1
    time_scale: float = 100.0
    min_training_samples: int = 5
    zero_tolerance: float = 1e-6
    estimator_kind: str = "dead_reckoning"
    margin_gain: float = 2.0
    adaptive_forgetting: bool = True
    min_forgetting: float = 0.5
    rollback_on_detection: bool = True
    strategy: str = "rls"
    secure_window: int = 8
    secure_sparsity: int = 1
    secure_residual_threshold: float = 1.0
    filter_headway: float = 1.5
    filter_minimum_gap: float = 5.0
    filter_gamma: float = 0.5
    filter_leader_accel_bound: float = 2.5

    def __post_init__(self) -> None:
        if self.basis_kind not in ("polynomial", "ar"):
            raise ConfigurationError(
                f"basis_kind must be 'polynomial' or 'ar', got {self.basis_kind!r}"
            )
        if self.estimator_kind not in ("dead_reckoning", "per_channel"):
            raise ConfigurationError(
                "estimator_kind must be 'dead_reckoning' or 'per_channel', "
                f"got {self.estimator_kind!r}"
            )
        if self.strategy not in DEFENSE_STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {', '.join(DEFENSE_STRATEGIES)}; "
                f"got {self.strategy!r}"
            )
        if self.secure_window < 2:
            raise ConfigurationError(
                f"secure_window must be >= 2, got {self.secure_window}"
            )
        if self.secure_sparsity < 0:
            raise ConfigurationError(
                f"secure_sparsity must be >= 0, got {self.secure_sparsity}"
            )
        if self.secure_residual_threshold <= 0.0:
            raise ConfigurationError(
                "secure_residual_threshold must be positive, got "
                f"{self.secure_residual_threshold}"
            )
        if not 0.0 < self.filter_gamma <= 1.0:
            raise ConfigurationError(
                f"filter_gamma must lie in (0, 1], got {self.filter_gamma}"
            )
        if self.filter_headway < 0.0 or self.filter_minimum_gap < 0.0:
            raise ConfigurationError(
                "filter_headway and filter_minimum_gap must be >= 0"
            )
        if self.filter_leader_accel_bound < 0.0:
            raise ConfigurationError(
                "filter_leader_accel_bound must be >= 0, got "
                f"{self.filter_leader_accel_bound}"
            )

    @property
    def uses_safety_filter(self) -> bool:
        """True when the strategy inserts the CBF acceleration clamp."""
        return self.strategy in ("safety_filter", "combined")

    @property
    def uses_secure_reconstruction(self) -> bool:
        """True when the strategy estimates via secure reconstruction."""
        return self.strategy in ("secure_reconstruction", "combined")

    def make_basis(self) -> RegressorBasis:
        """Instantiate the configured regressor basis."""
        if self.basis_kind == "polynomial":
            return PolynomialBasis(degree=self.basis_order)
        return ARBasis(order=self.basis_order)


@dataclass(frozen=True)
class Scenario:
    """A complete experiment description.

    The engine consumes this plus run options (attack on/off, defense
    on/off); everything here is deterministic given ``sensor_seed``.

    Beyond the paper's setup, the scenario exposes robustness knobs:
    ``distance_noise_std``/``velocity_noise_std`` (sensor-noise
    overrides), ``follower_policy``/``idm_params`` (``"acc"`` or plain
    ``"idm"`` follower), ``dropout_rate`` (missed-detection injection),
    ``adaptive_challenge_period`` (alert-mode CRA probing) and
    ``ego_speed_bias``/``ego_speed_gain`` (miscalibrated trusted
    ego-speed sensor).
    """

    name: str
    leader_profile: LeaderProfile
    attack: Optional[Attack] = None
    horizon: float = PAPER_HORIZON
    sample_period: float = 1.0
    initial_distance: float = 100.0
    leader_initial_speed: float = mph_to_mps(65.0)
    follower_initial_speed: float = mph_to_mps(67.0)
    acc_params: ACCParameters = field(default_factory=ACCParameters)
    radar_params: FMCWParameters = field(default_factory=FMCWParameters)
    challenge_times: Tuple[float, ...] = field(default_factory=paper_challenge_times)
    defense: DefenseConfig = field(default_factory=DefenseConfig)
    fidelity: str = "equation"
    sensor_seed: int = 2017
    distance_noise_std: Optional[float] = None
    velocity_noise_std: Optional[float] = None
    follower_policy: str = "acc"
    idm_params: Optional[object] = None
    dropout_rate: float = 0.0
    adaptive_challenge_period: Optional[float] = None
    ego_speed_bias: float = 0.0
    ego_speed_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.horizon <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon}")
        if self.sample_period <= 0.0:
            raise ConfigurationError(
                f"sample_period must be positive, got {self.sample_period}"
            )
        if self.initial_distance <= 0.0:
            raise ConfigurationError(
                f"initial_distance must be positive, got {self.initial_distance}"
            )
        if self.leader_initial_speed < 0.0 or self.follower_initial_speed < 0.0:
            raise ConfigurationError("initial speeds must be >= 0")
        if self.follower_policy not in ("acc", "idm"):
            raise ConfigurationError(
                f"follower_policy must be 'acc' or 'idm', got {self.follower_policy!r}"
            )

    def sensor_noise_overrides(self) -> dict:
        """Keyword overrides for the sensor's measurement noise.

        Empty when the scenario keeps the sensor defaults (the radar
        accuracy-spec values).
        """
        overrides = {}
        if self.distance_noise_std is not None:
            overrides["distance_noise_std"] = self.distance_noise_std
        if self.velocity_noise_std is not None:
            overrides["velocity_noise_std"] = self.velocity_noise_std
        if self.dropout_rate:
            overrides["dropout_rate"] = self.dropout_rate
        return overrides

    def schedule(self) -> ChallengeSchedule:
        """Build the CRA challenge schedule for this scenario."""
        return ChallengeSchedule.from_times(self.challenge_times)

    def times(self) -> Sequence[float]:
        """The discrete sample instants 0, T, 2T, ... <= horizon."""
        steps = int(math.floor(self.horizon / self.sample_period)) + 1
        return [k * self.sample_period for k in range(steps)]

    def with_overrides(self, **kwargs) -> "Scenario":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def _make_attack(kind: str, radar_params: FMCWParameters, horizon: float) -> Attack:
    """Build the paper's §6.2 attack of the requested kind.

    The attack runs from the paper's onset to the end of the horizon;
    with a horizon shorter than the onset the window is empty (the
    attack never fires within the run).
    """
    if kind == "dos":
        return DoSJammingAttack(
            window=AttackWindow(
                start=PAPER_DOS_ATTACK_START,
                end=max(horizon, PAPER_DOS_ATTACK_START),
            ),
            jammer=JammerParameters(),
            radar_params=radar_params,
        )
    if kind == "delay":
        return DelayInjectionAttack(
            window=AttackWindow(
                start=PAPER_DELAY_ATTACK_START,
                end=max(horizon, PAPER_DELAY_ATTACK_START),
            ),
            distance_offset=PAPER_DELAY_DISTANCE_OFFSET,
        )
    raise ConfigurationError(f"attack kind must be 'dos' or 'delay', got {kind!r}")


def fig2_scenario(attack: str = "dos", **overrides) -> Scenario:
    """Scenario (i): constant leader deceleration (paper Figure 2).

    ``attack`` is ``"dos"`` (Figure 2a) or ``"delay"`` (Figure 2b).
    Keyword overrides are applied to the scenario after construction.
    """
    radar_params = overrides.pop("radar_params", FMCWParameters())
    horizon = overrides.pop("horizon", PAPER_HORIZON)
    scenario = Scenario(
        name=f"fig2-{attack}",
        leader_profile=ConstantAccelerationProfile(PAPER_LEADER_DECELERATION),
        attack=_make_attack(attack, radar_params, horizon),
        radar_params=radar_params,
        horizon=horizon,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


def fig3_scenario(attack: str = "dos", **overrides) -> Scenario:
    """Scenario (ii): leader decelerates then accelerates (paper Figure 3).

    ``attack`` is ``"dos"`` (Figure 3a) or ``"delay"`` (Figure 3b).
    """
    radar_params = overrides.pop("radar_params", FMCWParameters())
    horizon = overrides.pop("horizon", PAPER_HORIZON)
    scenario = Scenario(
        name=f"fig3-{attack}",
        leader_profile=PiecewiseAccelerationProfile(
            [
                (0.0, PAPER_LEADER_DECELERATION),
                (FIG3_SWITCH_TIME, PAPER_LEADER_ACCELERATION),
            ]
        ),
        attack=_make_attack(attack, radar_params, horizon),
        radar_params=radar_params,
        horizon=horizon,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario
