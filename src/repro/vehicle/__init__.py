"""Car-following substrate: ACC hierarchy, vehicle dynamics, IDM (§6.1).

The follower vehicle carries an ACC system with a hierarchical control
architecture (Figure 1):

* the **upper-level controller** turns radar measurements into a desired
  acceleration via the constant-time-headway (CTH) policy (Eqns 12-13),
  switching between *speed control* (track the set speed) and *spacing
  control* (track the desired gap);
* the **lower-level controller** turns the desired acceleration into
  pedal/brake actuation; its closed loop with the plant behaves as the
  first-order lag of Eqn 14 (``K_L / (T_L s + 1)``).

Vehicle kinematics follow Eqns 15-17 (velocity and position updates from
acceleration).  The intelligent-driver model (IDM) the paper enhances is
also provided, both as an alternative follower policy and as a baseline.
"""

from repro.vehicle.state import VehicleState
from repro.vehicle.params import ACCParameters
from repro.vehicle.longitudinal import FirstOrderLongitudinalDynamics
from repro.vehicle.kinematics import advance_state
from repro.vehicle.upper_controller import UpperLevelController, ControlMode
from repro.vehicle.lower_controller import LowerLevelController, ActuatorCommand
from repro.vehicle.acc import ACCSystem, ACCStepResult
from repro.vehicle.idm import IDMParameters, IntelligentDriverModel, IDMFollowerController
from repro.vehicle.lateral import (
    ArcLane,
    BicycleKinematics,
    LaneKeepingController,
    LanePath,
    LateralResult,
    LateralSimulation,
    LateralState,
    SinusoidalLane,
    StraightLane,
)
from repro.vehicle.leader import (
    LeaderProfile,
    ConstantAccelerationProfile,
    PiecewiseAccelerationProfile,
    StopAndGoProfile,
)

__all__ = [
    "VehicleState",
    "ACCParameters",
    "FirstOrderLongitudinalDynamics",
    "advance_state",
    "UpperLevelController",
    "ControlMode",
    "LowerLevelController",
    "ActuatorCommand",
    "ACCSystem",
    "ACCStepResult",
    "IDMParameters",
    "IntelligentDriverModel",
    "IDMFollowerController",
    "LeaderProfile",
    "ConstantAccelerationProfile",
    "PiecewiseAccelerationProfile",
    "StopAndGoProfile",
    "LateralState",
    "BicycleKinematics",
    "LanePath",
    "StraightLane",
    "ArcLane",
    "SinusoidalLane",
    "LaneKeepingController",
    "LateralSimulation",
    "LateralResult",
]
