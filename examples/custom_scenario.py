#!/usr/bin/env python
"""Build a scenario beyond the paper's: stop-and-go traffic, a PRBS
challenge schedule, and a staged multi-attack campaign.

Demonstrates the extension points of the public API:

* :class:`StopAndGoProfile` — a harsher leader than the paper's;
* ``ChallengeSchedule.random`` — LFSR-driven challenge instants instead
  of the fixed paper schedule;
* :class:`AttackSchedule` — a jamming burst followed by a spoofing
  campaign in one run;
* ``DefenseConfig`` knobs — estimator kind and safety-margin gain.
"""

from repro import (
    AttackSchedule,
    AttackWindow,
    ChallengeSchedule,
    DelayInjectionAttack,
    DoSJammingAttack,
    Scenario,
    StopAndGoProfile,
    run,
)
from repro.analysis import render_table
from repro.simulation.scenario import DefenseConfig


class ScheduledAttacks:
    """Adapter: expose an :class:`AttackSchedule` as a single attack."""

    def __init__(self, schedule: AttackSchedule):
        self._schedule = schedule
        self.window = AttackWindow(
            start=schedule.earliest_onset() or 0.0,
            end=max(a.window.end for a in schedule.attacks),
        )

    @property
    def label(self):
        return self._schedule.attacks[0].label

    def effect_at(self, time, true_distance, true_relative_velocity=0.0):
        return self._schedule.effect_at(time, true_distance, true_relative_velocity)

    def is_active(self, time):
        return self._schedule.is_active(time)


def main() -> None:
    campaign = AttackSchedule(
        [
            DoSJammingAttack(AttackWindow(start=90.0, end=130.0)),
            DelayInjectionAttack(AttackWindow(start=220.0, end=300.0),
                                 distance_offset=8.0),
        ]
    )
    challenge_times = ChallengeSchedule.random(
        horizon=300.0, rate=0.08, seed=0xACE1, min_gap=5.0, exclude_start=10.0
    ).times

    scenario = Scenario(
        name="stop-and-go-campaign",
        leader_profile=StopAndGoProfile(
            deceleration=0.8, acceleration=0.5, brake_time=25.0, go_time=35.0
        ),
        attack=ScheduledAttacks(campaign),
        challenge_times=tuple(challenge_times),
        defense=DefenseConfig(
            estimator_kind="dead_reckoning",
            forgetting=0.9,      # stop-and-go needs a short memory
            margin_gain=2.0,
        ),
        initial_distance=80.0,
        sensor_seed=7,
    )

    rows = []
    for label, attack_enabled, defended in [
        ("clean", False, False),
        ("attacked", True, False),
        ("defended", True, True),
    ]:
        result = run(scenario, attack_enabled=attack_enabled, defended=defended)
        rows.append(
            {
                "run": label,
                "min_gap_m": round(result.min_gap(), 2),
                "collided": result.collided,
                "detections": ", ".join(f"{t:.0f}" for t in result.detection_times)
                or "-",
            }
        )
    print(render_table(rows, title="Stop-and-go leader, two-stage attack campaign"))
    print()
    print(f"PRBS challenge schedule ({len(challenge_times)} instants): "
          + ", ".join(f"{t:.0f}" for t in challenge_times[:12])
          + ", ...")
    print("Note: both the jamming burst and the later spoofing campaign are")
    print("detected at the first challenge inside their windows, and the")
    print("defense hands control back to the live sensor in between.")


if __name__ == "__main__":
    main()
