"""FMCW automotive radar substrate (paper §4.1 and §6.2).

The paper's case study senses the leader vehicle with a 77 GHz mm-wave
FMCW long-range radar (Bosch LRR2 parameters).  This subpackage
implements the full sensing chain from scratch:

* :mod:`repro.radar.params` — waveform/antenna parameter sets and the
  Bosch LRR2 preset used in the paper's experiments.
* :mod:`repro.radar.equations` — the beat-frequency equations (Eqns 5-6)
  and their inversion to distance / relative velocity (Eqns 7-8).
* :mod:`repro.radar.link_budget` — the radar range equation (Eqn 9), the
  jammer equation (Eqn 10) and the jamming-success ratio (Eqn 11).
* :mod:`repro.radar.waveform` — the triangular frequency sweep and the
  CRA binary modulation ``p'(t) = m(t) p(t)`` (paper §5.2).
* :mod:`repro.radar.signal_synth` — complex baseband beat-signal
  synthesis at the SNR given by the link budget (substitute for the
  MATLAB Phased Array System Toolbox; see DESIGN.md §3).
* :mod:`repro.radar.music` — a from-scratch root-MUSIC frequency
  estimator (the paper extracts beat frequencies with root MUSIC).
* :mod:`repro.radar.receiver` — presence detection + frequency
  extraction + Eqns 7-8 inversion.
* :mod:`repro.radar.sensor` — the end-to-end sensor with ``"signal"``
  and ``"equation"`` fidelity modes and attack-injection hooks.
"""

from repro.radar.params import FMCWParameters, BOSCH_LRR2, bosch_lrr2
from repro.radar.equations import (
    beat_frequencies,
    invert_beat_frequencies,
    range_frequency,
    doppler_frequency,
    round_trip_delay,
    max_unambiguous_beat_frequency,
)
from repro.radar.link_budget import (
    JammerParameters,
    received_power,
    jammer_received_power,
    jamming_power_ratio,
    jamming_succeeds,
    thermal_noise_power,
    beat_snr,
)
from repro.radar.waveform import TriangularSweep, BinaryModulator
from repro.radar.signal_synth import synthesize_beat_signal, complex_awgn
from repro.radar.music import root_music, estimate_single_tone
from repro.radar.receiver import RadarReceiver, ReceiverOutput
from repro.radar.sensor import FMCWRadarSensor, AttackEffect

__all__ = [
    "FMCWParameters",
    "BOSCH_LRR2",
    "bosch_lrr2",
    "beat_frequencies",
    "invert_beat_frequencies",
    "range_frequency",
    "doppler_frequency",
    "round_trip_delay",
    "max_unambiguous_beat_frequency",
    "JammerParameters",
    "received_power",
    "jammer_received_power",
    "jamming_power_ratio",
    "jamming_succeeds",
    "thermal_noise_power",
    "beat_snr",
    "TriangularSweep",
    "BinaryModulator",
    "synthesize_beat_signal",
    "complex_awgn",
    "root_music",
    "estimate_single_tone",
    "RadarReceiver",
    "ReceiverOutput",
    "FMCWRadarSensor",
    "AttackEffect",
]
