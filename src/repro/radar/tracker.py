"""Alpha-beta target tracking with coasting.

A conventional (undefended) automotive radar does not hand raw
detections to the controller — a tracker smooths them and *coasts*
through missed detections.  This is exactly why the CRA challenge
instants are invisible to the undefended ACC in the paper's figures:
the tracker bridges the deliberate zero-returns like any other missed
detection.

The :class:`AlphaBetaTracker` implements the classic fixed-gain
position/velocity filter per channel:

    prediction:  x̂⁻ = x̂ + v̂ T
    update:      x̂ = x̂⁻ + α (z - x̂⁻)
                 v̂ = v̂ + (β / T) (z - x̂⁻)

with track management: a track *initiates* after ``confirm_hits``
consecutive detections, *coasts* on the prediction through up to
``max_coast`` consecutive misses, and *drops* after that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["TrackState", "AlphaBetaTracker"]


@dataclass(frozen=True)
class TrackState:
    """Public view of the tracker at one instant."""

    status: str  # "empty", "tentative", "confirmed", "coasting"
    distance: Optional[float]
    distance_rate: Optional[float]
    consecutive_misses: int


class AlphaBetaTracker:
    """Fixed-gain tracker for the radar's distance channel.

    Parameters
    ----------
    alpha, beta:
        Position and velocity gains; the defaults are a standard
        moderately smoothing choice for 1 Hz automotive track updates.
    sample_period:
        Update period ``T``, seconds.
    confirm_hits:
        Consecutive detections required to confirm a track.
    max_coast:
        Consecutive misses a confirmed track survives on prediction.
    """

    def __init__(
        self,
        alpha: float = 0.6,
        beta: float = 0.2,
        sample_period: float = 1.0,
        confirm_hits: int = 2,
        max_coast: int = 5,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= beta <= 2.0:
            raise ValueError(f"beta must be in [0, 2], got {beta}")
        if sample_period <= 0.0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        if confirm_hits < 1:
            raise ValueError(f"confirm_hits must be >= 1, got {confirm_hits}")
        if max_coast < 0:
            raise ValueError(f"max_coast must be >= 0, got {max_coast}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.sample_period = float(sample_period)
        self.confirm_hits = int(confirm_hits)
        self.max_coast = int(max_coast)
        self.reset()

    def reset(self) -> None:
        """Drop any track and return to the empty state."""
        self._distance: Optional[float] = None
        self._rate = 0.0
        self._hits = 0
        self._misses = 0
        self._confirmed = False

    # ------------------------------------------------------------------

    @property
    def state(self) -> TrackState:
        """Current track state."""
        if self._distance is None:
            status = "empty"
        elif not self._confirmed:
            status = "tentative"
        elif self._misses > 0:
            status = "coasting"
        else:
            status = "confirmed"
        return TrackState(
            status=status,
            distance=self._distance,
            distance_rate=self._rate if self._distance is not None else None,
            consecutive_misses=self._misses,
        )

    @property
    def has_track(self) -> bool:
        """True when a confirmed track exists (possibly coasting)."""
        return self._confirmed and self._distance is not None

    def _predict(self) -> float:
        assert self._distance is not None
        return self._distance + self._rate * self.sample_period

    def update(self, detection: Optional[Tuple[float, float]]) -> Optional[Tuple[float, float]]:
        """Process one radar output; returns the tracked ``(d, ḋ)`` or None.

        ``detection`` is ``(distance, relative_velocity)`` when the
        receiver produced a measurement, or None on an empty return
        (challenge instant, out-of-range target, missed detection).
        """
        if detection is None:
            return self._handle_miss()
        distance, rate_hint = detection

        if self._distance is None:
            # Track initiation: seed the rate from the measured Doppler.
            self._distance = float(distance)
            self._rate = float(rate_hint)
            self._hits = 1
            self._misses = 0
            self._confirmed = self._hits >= self.confirm_hits
            return (self._distance, self._rate) if self._confirmed else None

        predicted = self._predict()
        innovation = float(distance) - predicted
        self._distance = predicted + self.alpha * innovation
        self._rate = self._rate + (self.beta / self.sample_period) * innovation
        self._hits += 1
        self._misses = 0
        if not self._confirmed and self._hits >= self.confirm_hits:
            self._confirmed = True
        return (self._distance, self._rate) if self._confirmed else None

    def _handle_miss(self) -> Optional[Tuple[float, float]]:
        if self._distance is None or not self._confirmed:
            # Tentative tracks die on a miss.
            self.reset()
            return None
        self._misses += 1
        if self._misses > self.max_coast:
            self.reset()
            return None
        # Coast on the prediction.
        self._distance = self._predict()
        return (self._distance, self._rate)
