"""Aggregation and rendering of telemetry events.

A trace — whether in memory (:attr:`Telemetry.events`) or replayed
from a JSONL file (:func:`load_trace`) — is a flat list of span events
plus a counter map.  :func:`summarize` folds that into a
:class:`TelemetrySummary`: per-span-name statistics (count, total,
mean, min, max) ordered by total time, which is what the ``--profile``
CLI flag and ``repro trace summary`` render as an ASCII table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

__all__ = [
    "SpanStats",
    "TelemetrySummary",
    "summarize",
    "load_trace",
    "load_events",
]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SpanStats:
    """Aggregate statistics of all spans sharing one name."""

    name: str
    count: int
    total_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }


@dataclass(frozen=True)
class TelemetrySummary:
    """Per-stage aggregate of one trace (or one slice of a session)."""

    spans: Tuple[SpanStats, ...]
    counters: Mapping[str, float]
    events: int

    def stage(self, name: str) -> SpanStats:
        """Look one span name up; raises ``KeyError`` if absent."""
        for stats in self.spans:
            if stats.name == name:
                return stats
        raise KeyError(f"no spans named {name!r} in this summary")

    def rows(self) -> List[dict]:
        """Table rows (one per span name, busiest stage first)."""
        total = sum(stats.total_s for stats in self.spans) or 1.0
        return [
            {
                "stage": stats.name,
                "count": stats.count,
                "total_s": round(stats.total_s, 4),
                "mean_ms": round(stats.mean_s * 1e3, 3),
                "max_ms": round(stats.max_s * 1e3, 3),
                "share": f"{100.0 * stats.total_s / total:.1f}%",
            }
            for stats in self.spans
        ]

    def render(self) -> str:
        """The per-stage timing table (plus counters) as ASCII text."""
        from repro.analysis.tables import render_table

        text = render_table(self.rows(), title="telemetry: per-stage timing")
        if self.counters:
            counter_rows = [
                {"counter": name, "value": value}
                for name, value in sorted(self.counters.items())
            ]
            text += "\n\n" + render_table(
                counter_rows, title="telemetry: counters", precision=0
            )
        return text

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (used by ``repro trace export``)."""
        return {
            "events": self.events,
            "spans": [stats.as_dict() for stats in self.spans],
            "counters": dict(self.counters),
        }


def summarize(
    events: Iterable[Dict[str, Any]], counters: Mapping[str, float]
) -> TelemetrySummary:
    """Fold span events + counters into a :class:`TelemetrySummary`."""
    stats: Dict[str, List[float]] = {}
    n_events = 0
    for event in events:
        if event.get("kind", "span") != "span":
            continue
        n_events += 1
        duration = float(event.get("dur", 0.0))
        bucket = stats.setdefault(
            event["name"], [0, 0.0, float("inf"), float("-inf")]
        )
        bucket[0] += 1
        bucket[1] += duration
        bucket[2] = min(bucket[2], duration)
        bucket[3] = max(bucket[3], duration)
    spans = tuple(
        sorted(
            (
                SpanStats(
                    name=name,
                    count=int(count),
                    total_s=total,
                    min_s=lo,
                    max_s=hi,
                )
                for name, (count, total, lo, hi) in stats.items()
            ),
            key=lambda s: s.total_s,
            reverse=True,
        )
    )
    return TelemetrySummary(
        spans=spans, counters=dict(counters), events=n_events
    )


def load_trace(path: PathLike) -> TelemetrySummary:
    """Parse a JSONL trace file back into a :class:`TelemetrySummary`.

    Counter records (``kind: "counters"``) are merged by summation, so
    traces appended across several sessions aggregate sensibly.
    Raises ``FileNotFoundError`` / ``ValueError`` for missing or
    malformed files.
    """
    events: List[Dict[str, Any]] = []
    counters: Dict[str, float] = {}
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from None
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: expected a JSON object")
        if record.get("kind") == "counters":
            for name, value in record.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
        else:
            events.append(record)
    return summarize(events, counters)


def load_events(path: PathLike) -> List[Dict[str, Any]]:
    """The raw span events of a JSONL trace, in file order."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if isinstance(record, dict) and record.get("kind", "span") == "span":
            events.append(record)
    return events
