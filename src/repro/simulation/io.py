"""Persistence for simulation results (CSV and JSON).

Lets a run's traces leave the process — for external plotting, diffing
two builds of the library, or archiving the regenerated figure data
next to the paper's.  CSV carries the trace matrix (one column per
trace); JSON additionally round-trips the metadata (detection events,
collision time, attack label).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.simulation.results import SimulationResult
from repro.types import DetectionEvent, TimeSeries

__all__ = ["export_csv", "export_json", "load_json"]

PathLike = Union[str, Path]


def export_csv(result: SimulationResult, path: PathLike) -> Path:
    """Write a result's traces as one CSV (``time`` + one column each).

    All traces share the simulation's uniform sample grid, so a single
    rectangular table is lossless.
    """
    path = Path(path)
    names = sorted(result.traces)
    times = result.times
    columns = {name: result.array(name) for name in names}
    for name, values in columns.items():
        if len(values) != len(times):
            raise ValueError(
                f"trace {name!r} has {len(values)} samples, expected {len(times)}"
            )
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", *names])
        for i, t in enumerate(times):
            writer.writerow([t, *(columns[name][i] for name in names)])
    return path


def export_json(result: SimulationResult, path: PathLike) -> Path:
    """Write a result (traces + metadata) as JSON."""
    path = Path(path)
    payload = {
        "name": result.name,
        "attack_name": result.attack_name,
        "defended": result.defended,
        "collision_time": result.collision_time,
        "detection_events": [
            {
                "time": e.time,
                "attack_detected": e.attack_detected,
                "receiver_output": e.receiver_output,
            }
            for e in result.detection_events
        ],
        "traces": {
            name: {"times": series.times, "values": series.values}
            for name, series in result.traces.items()
        },
    }
    path.write_text(json.dumps(payload))
    return path


def load_json(path: PathLike) -> SimulationResult:
    """Reload a result previously written with :func:`export_json`."""
    payload = json.loads(Path(path).read_text())
    traces = {}
    for name, data in payload["traces"].items():
        series = TimeSeries(name)
        for t, v in zip(data["times"], data["values"]):
            series.append(float(t), float(v))
        traces[name] = series
    result = SimulationResult(
        name=payload["name"],
        traces=traces,
        detection_events=[
            DetectionEvent(
                time=float(e["time"]),
                attack_detected=bool(e["attack_detected"]),
                receiver_output=float(e["receiver_output"]),
            )
            for e in payload["detection_events"]
        ],
        collision_time=payload["collision_time"],
        attack_name=payload["attack_name"],
        defended=payload["defended"],
    )
    return result
