"""IDM as a drop-in follower controller (repro.vehicle.idm)."""

import pytest

from repro import fig2_scenario, run
from repro.exceptions import ConfigurationError
from repro.vehicle import IDMFollowerController, IDMParameters
from repro.vehicle.upper_controller import ControlMode


class TestIDMFollowerController:
    def test_free_road_step(self):
        controller = IDMFollowerController()
        result = controller.step(20.0, None)
        assert result.mode is ControlMode.SPEED
        assert result.desired_acceleration > 0.0

    def test_close_gap_brakes(self):
        controller = IDMFollowerController()
        result = controller.step(20.0, (10.0, -5.0))
        assert result.mode is ControlMode.SPACING
        assert result.desired_acceleration < 0.0
        assert result.actuation.brake_pressure > 0.0

    def test_saturation_applied(self):
        controller = IDMFollowerController()
        result = controller.step(30.0, (1.0, -20.0))
        assert result.desired_acceleration == controller.acc_params.min_acceleration

    def test_custom_parameters(self):
        controller = IDMFollowerController(IDMParameters(desired_speed=20.0))
        # At the desired speed the free-road term vanishes.
        result = controller.step(20.0, None)
        assert result.desired_acceleration == pytest.approx(0.0, abs=1e-9)

    def test_reset(self):
        controller = IDMFollowerController()
        controller.step(20.0, (10.0, -5.0))
        controller.reset()
        assert controller.actual_acceleration == 0.0


class TestIDMFollowerClosedLoop:
    def test_scenario_validation(self):
        with pytest.raises(ConfigurationError):
            fig2_scenario("dos", follower_policy="human")

    def test_clean_run_safe(self):
        scenario = fig2_scenario("dos", follower_policy="idm")
        result = run(scenario, attack_enabled=False, defended=False)
        assert not result.collided

    def test_attack_still_lethal(self):
        scenario = fig2_scenario("dos", follower_policy="idm")
        result = run(scenario, defended=False)
        assert result.collided

    def test_defense_is_policy_agnostic(self):
        """The CRA+RLS pipeline protects an IDM follower identically."""
        scenario = fig2_scenario("dos", follower_policy="idm")
        result = run(scenario, defended=True)
        assert result.detection_times == [182.0]
        assert not result.collided

    def test_delay_attack_with_idm(self):
        scenario = fig2_scenario("delay", follower_policy="idm")
        attacked = run(scenario, defended=False)
        defended = run(scenario, defended=True)
        assert defended.min_gap() > attacked.min_gap()
        assert not defended.collided

    def test_custom_idm_params_via_scenario(self):
        scenario = fig2_scenario(
            "dos",
            follower_policy="idm",
            idm_params=IDMParameters(minimum_gap=6.0, time_headway=2.5),
        )
        result = run(scenario, attack_enabled=False, defended=False)
        assert not result.collided
        # The larger standstill gap shows up at the end of the run.
        assert result.array("true_distance")[-1] > 4.0
