"""Channel forecasting (repro.core.predictor)."""

import numpy as np
import pytest

from repro.core import ARBasis, ChannelPredictor, PolynomialBasis, RadarChannelEstimator
from repro.exceptions import EstimatorNotTrainedError
from repro.types import RadarMeasurement


def feed_linear(predictor, slope=-0.3, intercept=50.0, n=60, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    for k in range(n):
        value = intercept + slope * k + (rng.normal(0.0, noise) if noise else 0.0)
        predictor.observe(float(k), value)


class TestChannelPredictorPolynomial:
    def test_untrained_raises(self):
        predictor = ChannelPredictor()
        with pytest.raises(EstimatorNotTrainedError):
            predictor.forecast(10.0)

    def test_trained_after_min_samples(self):
        predictor = ChannelPredictor(min_training_samples=3)
        for k in range(3):
            predictor.observe(float(k), 1.0)
        assert predictor.trained

    def test_linear_trend_extrapolation(self):
        predictor = ChannelPredictor(forgetting=1.0, delta=1e6)
        feed_linear(predictor, slope=-0.3, intercept=50.0, n=60)
        assert predictor.forecast(100.0) == pytest.approx(50.0 - 0.3 * 100.0, abs=0.01)

    def test_noisy_linear_trend(self):
        predictor = ChannelPredictor(forgetting=0.98)
        feed_linear(predictor, slope=-0.1082, intercept=29.06, n=180, noise=0.1)
        truth = 29.06 - 0.1082 * 220.0
        assert predictor.forecast(220.0) == pytest.approx(truth, abs=0.5)

    def test_constant_channel(self):
        predictor = ChannelPredictor(basis=PolynomialBasis(0), forgetting=1.0, delta=1e8)
        feed_linear(predictor, slope=0.0, intercept=7.0, n=20)
        assert predictor.forecast(50.0) == pytest.approx(7.0, abs=1e-6)

    def test_last_observation(self):
        predictor = ChannelPredictor()
        assert predictor.last_observation is None
        predictor.observe(1.0, 5.0)
        assert predictor.last_observation == (1.0, 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelPredictor(time_scale=0.0)
        with pytest.raises(ValueError):
            ChannelPredictor(sample_period=0.0)
        with pytest.raises(ValueError):
            ChannelPredictor(min_training_samples=0)


class TestChannelPredictorAR:
    def test_ar_one_step(self):
        # y[k] = 0.5 y[k-1] is learned exactly from noiseless data.
        predictor = ChannelPredictor(
            basis=ARBasis(order=1), forgetting=1.0, delta=1e8, min_training_samples=5
        )
        value = 64.0
        for k in range(12):
            predictor.observe(float(k), value)
            value *= 0.5
        # Next value continues the geometric decay.
        assert predictor.forecast(12.0) == pytest.approx(value, rel=1e-6)

    def test_ar_multi_step_rollout(self):
        predictor = ChannelPredictor(
            basis=ARBasis(order=1), forgetting=1.0, delta=1e8, min_training_samples=5
        )
        value = 100.0
        for k in range(10):
            predictor.observe(float(k), value)
            value *= 0.9
        # Forecast 5 steps ahead: value * 0.9^5 relative to last observed.
        last = predictor.last_observation[1]
        assert predictor.forecast(14.0) == pytest.approx(last * 0.9**5, rel=1e-6)

    def test_rollout_cache_invalidated_by_new_data(self):
        predictor = ChannelPredictor(
            basis=ARBasis(order=1), forgetting=1.0, delta=1e8, min_training_samples=3
        )
        for k in range(6):
            predictor.observe(float(k), 2.0 ** (6 - k))
        _ = predictor.forecast(8.0)
        predictor.observe(6.0, 1.0)
        # Forecast must restart from the new real history.
        assert predictor.forecast(7.0) == pytest.approx(0.5, rel=1e-6)


class TestRadarChannelEstimator:
    def make_measurement(self, k, d, dv):
        return RadarMeasurement(time=float(k), distance=d, relative_velocity=dv)

    def test_trained_requires_both_channels(self):
        estimator = RadarChannelEstimator()
        assert not estimator.trained
        for k in range(10):
            estimator.observe(self.make_measurement(k, 100.0 - k, -1.0))
        assert estimator.trained

    def test_forecast_tracks_both_channels(self):
        estimator = RadarChannelEstimator(
            distance_predictor=ChannelPredictor(forgetting=1.0, delta=1e6),
            velocity_predictor=ChannelPredictor(forgetting=1.0, delta=1e6),
        )
        for k in range(30):
            estimator.observe(self.make_measurement(k, 100.0 - 0.5 * k, -0.5))
        d, dv = estimator.forecast(40.0)
        assert d == pytest.approx(80.0, abs=0.05)
        assert dv == pytest.approx(-0.5, abs=0.01)

    def test_snapshot_restore_roundtrip(self):
        estimator = RadarChannelEstimator()
        for k in range(10):
            estimator.observe(self.make_measurement(k, 100.0 - k, -1.0))
        snap = estimator.snapshot()
        before = estimator.forecast(20.0)
        # Pollute with corrupted data, then roll back.
        for k in range(10, 14):
            estimator.observe(self.make_measurement(k, 500.0, 30.0))
        polluted = estimator.forecast(20.0)
        assert polluted != pytest.approx(before[0], abs=1.0)
        estimator.restore(snap)
        assert estimator.forecast(20.0)[0] == pytest.approx(before[0], abs=1e-9)

    def test_follower_speed_is_ignored(self):
        estimator = RadarChannelEstimator()
        for k in range(10):
            estimator.observe(self.make_measurement(k, 50.0, 0.0), follower_speed=20.0)
        with_speed = estimator.forecast(15.0, follower_speed=20.0)
        without = estimator.forecast(15.0)
        assert with_speed == without
