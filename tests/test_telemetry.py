"""Telemetry subsystem: spans, counters, traces, and pipeline wiring."""

import json

import pytest

import repro
from repro import fig2_scenario
from repro import telemetry
from repro.simulation import RunSpec, execute_batch
from repro.store import RunStore
from repro.telemetry import (
    NULL_SPAN,
    Telemetry,
    TelemetrySummary,
    load_events,
    load_trace,
    summarize,
)

#: Short horizon keeps the attack window empty — fast, clean runs.
FAST = fig2_scenario("dos", horizon=20.0)


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


class TestGate:
    def test_disabled_by_default(self):
        assert telemetry.current() is None
        assert not telemetry.enabled()

    def test_disabled_span_is_shared_null_singleton(self):
        assert telemetry.span("x") is NULL_SPAN
        assert telemetry.span("y", a=1) is NULL_SPAN
        with telemetry.span("z") as s:
            assert s.set(hit=True) is NULL_SPAN

    def test_disabled_incr_is_noop(self):
        telemetry.incr("nope")  # must not raise, must not record anywhere
        assert telemetry.current() is None

    def test_enable_disable_cycle(self):
        tele = telemetry.enable()
        assert telemetry.current() is tele
        assert telemetry.enabled()
        assert telemetry.disable() is tele
        assert telemetry.current() is None
        assert telemetry.disable() is None  # idempotent

    def test_session_scopes_activation(self):
        with telemetry.session() as tele:
            assert telemetry.current() is tele
            telemetry.incr("inside")
        assert telemetry.current() is None
        assert tele.counters == {"inside": 1}

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry.session():
                raise RuntimeError("boom")
        assert telemetry.current() is None


class TestRecording:
    def test_span_times_and_attributes(self):
        tele = Telemetry()
        with tele.span("work", tag="a") as s:
            s.set(hit=True)
        (event,) = tele.events
        assert event["kind"] == "span"
        assert event["name"] == "work"
        assert event["tag"] == "a"
        assert event["hit"] is True
        assert event["dur"] >= 0.0
        assert event["t"] >= 0.0

    def test_counters_accumulate(self):
        tele = Telemetry()
        tele.incr("hits")
        tele.incr("hits")
        tele.incr("bytes", 512)
        assert tele.counters == {"hits": 2, "bytes": 512}

    def test_mark_and_summary_since(self):
        tele = Telemetry()
        tele.emit("before", 1.0)
        tele.incr("n", 5)
        mark = tele.mark()
        tele.emit("after", 2.0)
        tele.incr("n", 3)
        summary = tele.summary_since(mark)
        assert [s.name for s in summary.spans] == ["after"]
        assert summary.counters == {"n": 3}
        # Full summary still sees everything.
        assert tele.summary().events == 2

    def test_trace_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tele = Telemetry(path)
        tele.emit("stage", 0.25, attrs={"run": "r0"}, start=0.1)
        tele.incr("widgets", 4)
        tele.close()

        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {
            "kind": "span",
            "name": "stage",
            "t": 0.1,
            "dur": 0.25,
            "run": "r0",
        }
        assert lines[-1] == {"kind": "counters", "counters": {"widgets": 4}}

        summary = load_trace(path)
        assert summary.stage("stage").count == 1
        assert summary.counters == {"widgets": 4}
        assert load_events(path) == [lines[0]]

    def test_no_trace_path_writes_nothing(self, tmp_path):
        tele = Telemetry()
        tele.emit("stage", 0.1)
        tele.close()  # must not raise
        assert list(tmp_path.iterdir()) == []


class TestSummary:
    def test_summarize_statistics(self):
        events = [
            {"kind": "span", "name": "a", "dur": 1.0},
            {"kind": "span", "name": "a", "dur": 3.0},
            {"kind": "span", "name": "b", "dur": 0.5},
            {"kind": "counters", "counters": {"ignored": 1}},  # skipped
        ]
        summary = summarize(events, {"c": 2})
        assert isinstance(summary, TelemetrySummary)
        assert summary.events == 3
        a = summary.stage("a")
        assert (a.count, a.total_s, a.min_s, a.max_s, a.mean_s) == (
            2,
            4.0,
            1.0,
            3.0,
            2.0,
        )
        # Busiest stage first.
        assert [s.name for s in summary.spans] == ["a", "b"]
        with pytest.raises(KeyError):
            summary.stage("missing")

    def test_render_and_rows(self):
        summary = summarize(
            [{"kind": "span", "name": "a", "dur": 2.0}], {"hits": 3}
        )
        (row,) = summary.rows()
        assert row["stage"] == "a" and row["share"] == "100.0%"
        text = summary.render()
        assert "telemetry: per-stage timing" in text
        assert "telemetry: counters" in text
        assert "hits" in text

    def test_as_dict_is_json_serializable(self):
        summary = summarize([{"name": "a", "dur": 1.0}], {"n": 1})
        assert json.loads(json.dumps(summary.as_dict()))["counters"] == {
            "n": 1
        }

    def test_load_trace_merges_counter_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"kind":"counters","counters":{"n":2}}\n'
            '{"kind":"counters","counters":{"n":3,"m":1}}\n'
        )
        assert load_trace(path).counters == {"n": 5, "m": 1}

    def test_load_trace_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name":"ok","dur":1}\nnot json\n')
        with pytest.raises(ValueError, match=":2: not valid JSON"):
            load_trace(path)
        path.write_text("[1,2,3]\n")
        with pytest.raises(ValueError, match="expected a JSON object"):
            load_trace(path)
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "missing.jsonl")


class TestPipelineWiring:
    def test_batch_records_per_run_spans(self):
        specs = [RunSpec(FAST, tag=str(i)) for i in range(3)]
        with telemetry.session() as tele:
            batch = execute_batch(specs, workers=1)
        runs = [e for e in tele.events if e["name"] == "batch.run"]
        assert len(runs) == 3
        assert [e["tag"] for e in runs] == ["0", "1", "2"]
        assert all(e["ok"] and not e["cached"] for e in runs)
        assert all(e["worker_pid"] > 0 for e in runs)
        assert all(e["queue_wait"] >= 0.0 for e in runs)
        assert tele.counters["batch.batches"] == 1
        assert tele.counters["batch.runs"] == 3
        assert "batch.degraded" not in tele.counters

        # The batch carries its own scoped aggregate too.
        assert isinstance(batch.telemetry, TelemetrySummary)
        assert batch.telemetry.stage("batch.run").count == 3

    def test_batch_telemetry_none_when_disabled(self):
        batch = execute_batch([RunSpec(FAST)], workers=1)
        assert batch.telemetry is None

    def test_engine_stage_spans_and_counters(self):
        with telemetry.session() as tele:
            repro.run(FAST)
        names = {e["name"] for e in tele.events}
        assert {"engine.sense", "engine.estimate", "engine.control"} <= names
        # 20 s horizon at 1 s sample period → 21 control steps.
        assert tele.counters["engine.steps"] == 21
        assert tele.counters["engine.runs"] == 1
        assert tele.counters["radar.measurements"] == 21
        sense = next(e for e in tele.events if e["name"] == "engine.sense")
        assert sense["steps"] == 21 and sense["dur"] > 0.0

    def test_cache_hits_flagged_and_store_counters(self, tmp_path):
        specs = [RunSpec(FAST, tag="t")]
        with RunStore(tmp_path / "s.sqlite") as store:
            with telemetry.session() as tele:
                execute_batch(specs, cache=store)  # cold: compute + write
                execute_batch(specs, cache=store)  # warm: replay
        runs = [e for e in tele.events if e["name"] == "batch.run"]
        assert [e["cached"] for e in runs] == [False, True]
        assert tele.counters["batch.cache_hits"] == 1
        assert tele.counters["store.writes"] == 1
        assert tele.counters["store.hits"] == 1
        assert tele.counters["store.misses"] == 1
        assert tele.counters["store.write_bytes"] > 0
        assert tele.counters["store.hit_bytes"] > 0

    def test_store_skip_counter_on_duplicate_put(self, tmp_path):
        result = repro.run(FAST)
        with RunStore(tmp_path / "s.sqlite") as store:
            with telemetry.session() as tele:
                store.put("a" * 64, result)
                store.put("a" * 64, result)
        assert tele.counters["store.writes"] == 1
        assert tele.counters["store.write_skips"] == 1

    def test_facade_span_wraps_modes(self):
        with telemetry.session() as tele:
            repro.run(FAST, mode="figure")
        facade = [e for e in tele.events if e["name"] == "facade.run"]
        assert len(facade) == 1
        assert facade[0]["mode"] == "figure"
        assert facade[0]["scenario"] == FAST.name

    def test_parallel_batch_traced_from_parent_only(self, tmp_path):
        """Worker processes must never write to the parent's trace."""
        path = tmp_path / "trace.jsonl"
        specs = [
            RunSpec(FAST.with_overrides(sensor_seed=s), tag=str(s))
            for s in range(4)
        ]
        with telemetry.session(path) as tele:
            batch = execute_batch(specs, workers=2, postprocess=_gap)
        runs = [e for e in load_events(path) if e["name"] == "batch.run"]
        assert len(runs) == 4
        if batch.parallel:
            # At least one run landed on a worker pid != parent's.
            import os

            assert any(e["worker_pid"] != os.getpid() for e in runs)
        # Every line parses — no interleaved partial writes.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_degraded_batch_counted(self, monkeypatch):
        import concurrent.futures

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no pool")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", BrokenPool
        )
        # backend="scalar" pinned: under REPRO_BACKEND=auto these
        # identical specs would vectorize and never reach the pool.
        specs = [RunSpec(FAST, tag=str(i)) for i in range(2)]
        with telemetry.session() as tele:
            with pytest.warns(RuntimeWarning):
                execute_batch(specs, workers=2, backend="scalar")
        assert tele.counters["batch.degraded"] == 1


def _gap(spec, result):
    """Module-level reducer (must be picklable for workers)."""
    return round(result.min_gap(), 6)
