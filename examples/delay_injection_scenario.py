#!/usr/bin/env python
"""Delay-injection spoofing walk-through (paper §4.1, §6.2, Figure 2b).

The attacker replays a counterfeit echo delayed by ~40 ns, making the
leader appear 6 m farther away from k = 180 s on.  The ACC under-brakes
and the real gap collapses.  The CRA challenge at k = 182 exposes the
replay (the counterfeit is still in flight when the radar goes silent),
after which RLS estimates replace the spoofed stream.
"""

import numpy as np

from repro import DelayInjectionAttack, fig2_scenario, run
from repro.analysis import ascii_plot, render_table, safety_metrics


def show_attack_geometry(attack: DelayInjectionAttack) -> None:
    print("Delay-injection attack parameters (paper §6.2):")
    print(f"  spoofed extra distance : {attack.distance_offset:.1f} m")
    print(f"  injected physical delay: {attack.injected_delay * 1e9:.1f} ns")
    print(f"  active window          : "
          f"[{attack.window.start:.0f}, {attack.window.end:.0f}] s")
    print()


def show_gap_traces(data) -> None:
    times = data.defended.times
    window = (times >= 150.0) & (times <= 300.0)
    print(
        ascii_plot(
            {
                "true gap (no attack)": (
                    times[window],
                    data.baseline.array("true_distance")[window],
                ),
                "true gap (attacked, undefended)": (
                    times[window],
                    data.attacked.array("true_distance")[window],
                ),
                "true gap (defended)": (
                    times[window],
                    data.defended.array("true_distance")[window],
                ),
            },
            title="Figure 2b: real inter-vehicle gap under delay injection",
            y_label="m",
            width=100,
            height=22,
        )
    )
    print()


def main() -> None:
    scenario = fig2_scenario("delay")
    show_attack_geometry(scenario.attack)

    data = run(scenario, mode="figure")
    show_gap_traces(data)

    rows = []
    for label, result in [
        ("baseline", data.baseline),
        ("attacked", data.attacked),
        ("defended", data.defended),
    ]:
        metrics = safety_metrics(result)
        rows.append(
            {
                "run": label,
                "min_gap_m": round(metrics.min_gap, 2),
                "collided": metrics.collided,
                "time_below_2m_s": metrics.time_gap_violated,
            }
        )
    print(render_table(rows, title="Safety outcome"))
    print()

    # The spoof is invisible in the measured stream itself...
    attacked = data.attacked
    times = attacked.times
    mask = (times > 182.0) & (times < 200.0)
    offset = np.median(
        attacked.array("measured_distance")[mask]
        - attacked.array("true_distance")[mask]
    )
    print(f"Median spoof offset in the radar stream: +{offset:.1f} m "
          f"(too small for residual detectors, caught by CRA at "
          f"k = {data.detection_time():.0f} s)")


if __name__ == "__main__":
    main()
