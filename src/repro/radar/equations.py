"""FMCW beat-frequency equations (paper Eqns 5-8).

For a triangular sweep with bandwidth ``Bs`` and segment time ``Ts`` the
received echo from a target at distance ``d`` moving with relative
velocity ``Δv`` is shifted by the round-trip delay ``τ = 2d/c`` and the
Doppler shift ``f_D = 2Δv/λ``.  Mixing with the transmit signal yields
one beat frequency per sweep segment:

    f_b+ = (2 d / c) (Bs / Ts) - 2 Δv / λ        (Eqn 5, up-sweep)
    f_b- = (2 d / c) (Bs / Ts) + 2 Δv / λ        (Eqn 6, down-sweep)

which invert to

    d  = c Ts (f_b+ + f_b-) / (4 Bs)             (Eqn 7)
    Δv = λ (f_b- - f_b+) / 4                     (Eqn 8)

Sign convention: ``Δv = v_leader - v_follower`` is positive when the gap
is opening (range rate ``ḋ > 0``).  The paper's Eqn 7 omits the factor
``c`` in the OCR text; dimensional analysis fixes the constant, and the
round-trip property tests pin it down.

The beat frequencies live in *complex baseband* after IQ dechirping, so
negative values are representable and are preserved by the synthesizer
and the root-MUSIC estimator.
"""

from __future__ import annotations

from typing import Tuple

from repro.radar.params import FMCWParameters
from repro.units import SPEED_OF_LIGHT

__all__ = [
    "range_frequency",
    "doppler_frequency",
    "beat_frequencies",
    "invert_beat_frequencies",
    "round_trip_delay",
    "max_unambiguous_beat_frequency",
    "range_resolution",
    "velocity_resolution",
    "max_unambiguous_range",
    "distance_from_extra_delay",
    "extra_delay_for_distance_offset",
]


def round_trip_delay(distance: float) -> float:
    """Two-way propagation delay ``τ = 2 d / c``, seconds."""
    if distance < 0.0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    return 2.0 * distance / SPEED_OF_LIGHT


def range_frequency(params: FMCWParameters, distance: float) -> float:
    """Range-induced beat component ``(2 d / c)(Bs / Ts)``, hertz."""
    return round_trip_delay(distance) * params.sweep_slope


def doppler_frequency(params: FMCWParameters, relative_velocity: float) -> float:
    """Doppler shift ``2 Δv / λ``, hertz.

    Positive ``relative_velocity`` (opening gap) gives a positive shift
    of the down-sweep beat and a negative shift of the up-sweep beat.
    """
    return 2.0 * relative_velocity / params.wavelength


def beat_frequencies(
    params: FMCWParameters, distance: float, relative_velocity: float
) -> Tuple[float, float]:
    """Forward model: Eqns 5-6, returns ``(f_b+, f_b-)`` in hertz."""
    f_range = range_frequency(params, distance)
    f_doppler = doppler_frequency(params, relative_velocity)
    return f_range - f_doppler, f_range + f_doppler


def invert_beat_frequencies(
    params: FMCWParameters, f_up: float, f_down: float
) -> Tuple[float, float]:
    """Inverse model: Eqns 7-8, returns ``(distance, relative_velocity)``.

    ``d = c Ts (f_b+ + f_b-) / (4 Bs)`` and ``Δv = λ (f_b- - f_b+) / 4``.
    """
    distance = SPEED_OF_LIGHT * params.sweep_time * (f_up + f_down) / (4.0 * params.sweep_bandwidth)
    relative_velocity = params.wavelength * (f_down - f_up) / 4.0
    return distance, relative_velocity


def max_unambiguous_beat_frequency(params: FMCWParameters) -> float:
    """Largest beat frequency representable by the sampled baseband (Nyquist)."""
    return params.sample_rate / 2.0


def distance_from_extra_delay(extra_delay: float) -> float:
    """Apparent extra distance created by an injected delay ``τ'``.

    A replayed echo delayed by ``τ'`` looks ``c τ' / 2`` meters farther
    away (the delay-injection attack of §4.1).
    """
    if extra_delay < 0.0:
        raise ValueError(f"extra delay must be non-negative, got {extra_delay}")
    return SPEED_OF_LIGHT * extra_delay / 2.0


def extra_delay_for_distance_offset(distance_offset: float) -> float:
    """Injected delay required to spoof a given extra distance, seconds."""
    if distance_offset < 0.0:
        raise ValueError(f"distance offset must be non-negative, got {distance_offset}")
    return 2.0 * distance_offset / SPEED_OF_LIGHT


def range_resolution(params: FMCWParameters) -> float:
    """Range resolution ``c / (2 Bs)``, meters.

    Two targets closer than this cannot be separated by the sweep
    bandwidth (1.0 m for the LRR2's 150 MHz).
    """
    return SPEED_OF_LIGHT / (2.0 * params.sweep_bandwidth)


def velocity_resolution(params: FMCWParameters) -> float:
    """Velocity resolution of one triangular period, m/s.

    ``λ / (2 · T_obs)`` with the observation time ``T_obs = 2 Ts`` of
    one up+down sweep pair (≈0.49 m/s for the LRR2 waveform); subspace
    estimators like root-MUSIC resolve finer at high SNR, which the
    accuracy bench demonstrates.
    """
    return params.wavelength / (4.0 * params.sweep_time)


def max_unambiguous_range(params: FMCWParameters) -> float:
    """Largest range whose beat frequency stays below Nyquist, meters."""
    return (
        max_unambiguous_beat_frequency(params)
        * SPEED_OF_LIGHT
        * params.sweep_time
        / (2.0 * params.sweep_bandwidth)
    )
