"""End-to-end reproduction of the paper's §6.2 claims.

These tests run the actual figure scenarios and assert the qualitative
results the paper reports:

* both attacks detected at k = 182 s, with zero false positives and
  zero false negatives over all challenge instants;
* without the defense, the DoS attack corrupts the radar stream with
  large spurious readings and the delay attack makes the follower
  under-brake, closing the real gap;
* with the defense, the estimated measurements keep the vehicle safe
  (no collision) through the entire attack window.
"""

import numpy as np
import pytest

from repro import fig2_scenario, fig3_scenario, run
from repro.analysis import detection_confusion, detection_latency

ALL_PANELS = [
    ("fig2a", fig2_scenario, "dos"),
    ("fig2b", fig2_scenario, "delay"),
    ("fig3a", fig3_scenario, "dos"),
    ("fig3b", fig3_scenario, "delay"),
]


@pytest.fixture(scope="module")
def figure_data():
    return {
        panel: run(factory(attack), mode="figure")
        for panel, factory, attack in ALL_PANELS
    }


class TestDetectionClaims:
    @pytest.mark.parametrize("panel", [p for p, _, _ in ALL_PANELS])
    def test_detected_at_182(self, figure_data, panel):
        assert figure_data[panel].detection_time() == 182.0

    @pytest.mark.parametrize("panel,factory,attack", ALL_PANELS)
    def test_zero_false_positives_and_negatives(
        self, figure_data, panel, factory, attack
    ):
        data = figure_data[panel]
        confusion = detection_confusion(
            data.defended.detection_events, data.scenario.attack
        )
        assert confusion.false_positives == 0
        assert confusion.false_negatives == 0
        assert confusion.total == len(data.scenario.challenge_times)

    @pytest.mark.parametrize("panel", [p for p, _, _ in ALL_PANELS])
    def test_latency_matches_structural_bound(self, figure_data, panel):
        data = figure_data[panel]
        attack = data.scenario.attack
        bound = (
            data.scenario.schedule().next_challenge_at_or_after(attack.window.start)
            - attack.window.start
        )
        assert detection_latency(data.defended, attack) == pytest.approx(bound)

    @pytest.mark.parametrize("panel", [p for p, _, _ in ALL_PANELS])
    def test_baseline_raises_no_alarm(self, figure_data, panel):
        assert figure_data[panel].baseline.detection_times == []


class TestAttackImpactClaims:
    def test_dos_produces_large_spurious_readings(self, figure_data):
        attacked = figure_data["fig2a"].attacked
        measured = attacked.array("measured_distance")
        times = attacked.times
        window = measured[(times > 182.0)]
        # "the sensor receives very high value of corrupted ... measurements"
        assert np.max(window) > 150.0
        assert np.std(window) > 30.0

    def test_dos_undefended_collides(self, figure_data):
        for panel in ("fig2a", "fig3a"):
            assert figure_data[panel].attacked.collided

    def test_delay_closes_gap_below_desired(self, figure_data):
        # "the velocity of the follower increases and the distance
        # reduces between the vehicles"
        attacked = figure_data["fig2b"].attacked
        baseline = figure_data["fig2b"].baseline
        assert attacked.min_gap() < baseline.min_gap()
        assert attacked.collided

    def test_delay_spoofs_plus_six_meters(self, figure_data):
        attacked = figure_data["fig2b"].attacked
        measured = attacked.array("measured_distance")
        true = attacked.array("true_distance")
        times = attacked.times
        mask = (times >= 181.0) & (times <= 188.0)
        offsets = measured[mask] - true[mask]
        assert np.median(offsets) == pytest.approx(6.0, abs=1.0)


class TestRecoveryClaims:
    @pytest.mark.parametrize("panel", [p for p, _, _ in ALL_PANELS])
    def test_defended_never_collides(self, figure_data, panel):
        assert not figure_data[panel].defended.collided

    @pytest.mark.parametrize("panel", [p for p, _, _ in ALL_PANELS])
    def test_defended_keeps_positive_gap(self, figure_data, panel):
        assert figure_data[panel].defended.min_gap() > 0.0

    def test_defense_improves_on_attack(self, figure_data):
        for panel in ("fig2a", "fig2b", "fig3a"):
            data = figure_data[panel]
            assert data.defended.min_gap() > data.attacked.min_gap()

    def test_estimates_track_clean_radar_shape(self, figure_data):
        """'Estimated Radar Data' follows 'RadarData-Without-Attack':
        the estimated distance stays on the same decreasing trend and
        far from the attacked readings."""
        data = figure_data["fig2a"]
        times = data.defended.times
        mask = (times >= 183.0) & (times <= 260.0)
        estimated = data.defended.array("safe_distance")[mask]
        clean = data.baseline.array("true_distance")[mask]
        attacked = data.defended.array("measured_distance")[mask]
        err_clean = np.sqrt(np.mean((estimated - clean) ** 2))
        err_attacked = np.sqrt(np.mean((estimated - attacked) ** 2))
        assert err_clean < 25.0
        assert err_clean < err_attacked / 2.0

    def test_follower_keeps_slowing_during_attack(self, figure_data):
        # With estimation the follower decelerates through the attack
        # (the leader keeps braking in scenario i).
        defended = figure_data["fig2a"].defended
        vF = defended.array("follower_velocity")
        times = defended.times
        assert vF[times == 280.0][0] < vF[times == 182.0][0]


class TestSeedRobustness:
    @pytest.mark.parametrize("attack", ["dos", "delay"])
    def test_defense_safe_across_seeds(self, attack):
        from repro import run

        for seed in (1, 7, 23, 99):
            scenario = fig2_scenario(attack, sensor_seed=seed)
            result = run(scenario, defended=True)
            assert not result.collided, f"seed {seed} collided"
            assert result.detection_times[0] == 182.0
