"""Adaptive challenge scheduling (repro.core.adaptive_cra)."""

import pytest

from repro import (
    AttackWindow,
    ChallengeSchedule,
    DoSJammingAttack,
    fig2_scenario,
    run,
)
from repro.core import AdaptiveChallengePolicy


BASE = ChallengeSchedule.from_times([15.0, 50.0, 100.0])


class TestPolicyDecisions:
    def test_quiet_mode_follows_base_schedule(self):
        policy = AdaptiveChallengePolicy(BASE, alert_period=2.0)
        for k in range(60):
            expected = BASE.is_challenge(float(k))
            assert policy.decide(float(k), alarm_active=False) == expected

    def test_alert_mode_challenges_every_period(self):
        policy = AdaptiveChallengePolicy(BASE, alert_period=3.0)
        decisions = [policy.decide(float(k), alarm_active=True) for k in range(20, 35)]
        # First alert instant challenges immediately, then every 3 s.
        assert decisions[0] is True
        challenge_times = [20 + i for i, d in enumerate(decisions) if d]
        gaps = [b - a for a, b in zip(challenge_times, challenge_times[1:])]
        assert all(g == 3 for g in gaps)

    def test_alert_state_resets_when_alarm_clears(self):
        policy = AdaptiveChallengePolicy(BASE, alert_period=5.0)
        assert policy.decide(20.0, alarm_active=True)
        assert not policy.decide(21.0, alarm_active=False)
        # Re-raised alarm challenges immediately again.
        assert policy.decide(22.0, alarm_active=True)

    def test_is_challenge_serves_recorded_decisions(self):
        policy = AdaptiveChallengePolicy(BASE, alert_period=2.0)
        policy.decide(20.0, alarm_active=True)
        assert policy.is_challenge(20.0)
        # Undecided instants fall back to the base schedule.
        assert policy.is_challenge(50.0)
        assert not policy.is_challenge(51.0)

    def test_times_merges_decisions_and_base(self):
        policy = AdaptiveChallengePolicy(BASE, alert_period=2.0)
        policy.decide(20.0, alarm_active=True)
        assert 20.0 in policy.times
        assert 15.0 in policy.times

    def test_next_challenge_forwards_to_base(self):
        policy = AdaptiveChallengePolicy(BASE)
        assert policy.next_challenge_at_or_after(60.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveChallengePolicy(BASE, alert_period=0.0)


class TestAdaptiveRecovery:
    def finite_attack(self, adaptive_period=None):
        scenario = fig2_scenario("dos").with_overrides(
            name="finite",
            attack=DoSJammingAttack(AttackWindow(182.0, 230.0)),
            adaptive_challenge_period=adaptive_period,
        )
        return run(scenario, defended=True)

    def test_adaptive_recovers_sooner(self):
        def clear_time(result):
            return min(
                e.time
                for e in result.detection_events
                if not e.attack_detected and e.time > 230.0
            )

        static_clear = clear_time(self.finite_attack(None))
        adaptive_clear = clear_time(self.finite_attack(2.0))
        assert adaptive_clear < static_clear
        assert adaptive_clear <= 233.0

    def test_detection_time_unchanged(self):
        result = self.finite_attack(2.0)
        assert result.detection_times[0] == 182.0

    def test_no_false_positives_in_quiet_mode(self):
        scenario = fig2_scenario("dos").with_overrides(
            adaptive_challenge_period=2.0
        )
        result = run(scenario, attack_enabled=False, defended=True)
        assert all(not e.attack_detected for e in result.detection_events)

    def test_still_safe(self):
        assert not self.finite_attack(2.0).collided
