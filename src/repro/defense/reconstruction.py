"""Secure state reconstruction under s-sparse sensor attacks.

The related work the paper builds on (Fawzi et al. [3], Chong et
al. [1]) poses state estimation under attack as a combinatorial
problem: at most ``s`` of the ``p`` sensors are corrupted, the rest are
honest, and the true initial state is the one consistent with *some*
subset of ``p - s`` sensors over an observation window.
:class:`SecureStateReconstruct` solves it by brute force — one
least-squares observer per sensor subset of size ``p - s``, keeping the
candidates whose residual is within tolerance:

    y_i[k] = C_i A^k x0 + C_i f[k]          (f = input contribution)

stacked over the window and the subset's sensors, solved for ``x0``.

The structural guarantee (checked through
:func:`repro.lti.observability.is_sparse_observable`): when ``(A, C)``
is **2s-sparse observable** and at most ``s`` sensors are attacked, the
honest subset's candidate is exact and every candidate consistent with
the data agrees with it — the reconstruction is unique.  When the
guarantee fails (e.g. the car-following radar's velocity channel alone
cannot observe the gap), :attr:`ReconstructionResult.guaranteed` is
False and ``unobservable_subsets`` names the sensor subsets whose
candidates are structurally ambiguous; callers must disambiguate with a
prior (see :mod:`repro.defense.estimator`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lti.observability import is_sparse_observable

__all__ = [
    "SSProblem",
    "ReconstructionCandidate",
    "ReconstructionResult",
    "SecureStateReconstruct",
]


@dataclass(frozen=True)
class SSProblem:
    """One secure-state-reconstruction problem instance.

    Attributes
    ----------
    A, B, C:
        Discrete-time LTI model ``x[k+1] = A x[k] + B u[k]``,
        ``y[k] = C x[k]`` (+ sparse attack).  ``B`` may be None for an
        autonomous window.
    ys:
        Measurement window, shape ``(T, p)`` — row ``k`` holds every
        sensor's reading at step ``k``.
    us:
        Inputs applied *between* samples, shape ``(T - 1, m)``; ``u[k]``
        acts on the transition from ``ys[k]`` to ``ys[k+1]``.  None (or
        empty) means zero input.
    s:
        Assumed maximum number of attacked sensors.
    dts:
        Optional per-interval durations (length ``T - 1``) for windows
        whose samples are *not* uniformly spaced (e.g. trusted radar
        samples with challenge instants missing).  Requires a
        ``transition`` callable on :class:`SecureStateReconstruct`;
        without one, every interval uses the nominal ``A``/``B``.
    """

    A: np.ndarray
    B: Optional[np.ndarray]
    C: np.ndarray
    ys: np.ndarray
    us: Optional[np.ndarray] = None
    s: int = 1
    dts: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "A", np.atleast_2d(np.asarray(self.A, float)))
        object.__setattr__(self, "C", np.atleast_2d(np.asarray(self.C, float)))
        object.__setattr__(self, "ys", np.atleast_2d(np.asarray(self.ys, float)))
        if self.B is not None:
            B = np.asarray(self.B, float).reshape(self.A.shape[0], -1)
            object.__setattr__(self, "B", B)
        if self.us is not None:
            us = np.atleast_2d(np.asarray(self.us, float))
            object.__setattr__(self, "us", us)
        n = self.A.shape[0]
        if self.A.shape != (n, n):
            raise ConfigurationError(f"A must be square, got {self.A.shape}")
        if self.C.shape[1] != n:
            raise ConfigurationError(
                f"C must have {n} columns, got {self.C.shape}"
            )
        if self.ys.shape[1] != self.C.shape[0]:
            raise ConfigurationError(
                f"ys must have one column per sensor ({self.C.shape[0]}), "
                f"got shape {self.ys.shape}"
            )
        if self.ys.shape[0] < 2:
            raise ConfigurationError(
                f"the window needs at least 2 samples, got {self.ys.shape[0]}"
            )
        if self.s < 0:
            raise ConfigurationError(f"s must be >= 0, got {self.s}")
        if self.s >= self.C.shape[0]:
            raise ConfigurationError(
                f"s must leave at least one honest sensor "
                f"(s={self.s}, p={self.C.shape[0]})"
            )
        if self.us is not None and len(self.us) not in (0, len(self.ys) - 1):
            raise ConfigurationError(
                f"us must hold one input per transition "
                f"({len(self.ys) - 1}), got {len(self.us)}"
            )
        if self.us is not None and self.B is None:
            raise ConfigurationError("us given without a B matrix")
        if self.dts is not None:
            dts = np.asarray(self.dts, float).reshape(-1)
            object.__setattr__(self, "dts", dts)
            if len(dts) != len(self.ys) - 1:
                raise ConfigurationError(
                    f"dts must hold one duration per transition "
                    f"({len(self.ys) - 1}), got {len(dts)}"
                )
            if np.any(dts <= 0.0):
                raise ConfigurationError("dts must be strictly positive")

    @property
    def n(self) -> int:
        """State dimension."""
        return self.A.shape[0]

    @property
    def p(self) -> int:
        """Sensor count."""
        return self.C.shape[0]

    @property
    def io_length(self) -> int:
        """Window length ``T`` (number of measurement rows)."""
        return self.ys.shape[0]

    def input_contributions(self) -> np.ndarray:
        """State contribution of the inputs: ``f[k]`` with ``f[0] = 0``.

        ``x[k] = A^k x0 + f[k]`` where ``f[k+1] = A f[k] + B u[k]``
        (nominal uniform spacing; the solver recomputes this with the
        per-interval transition when one is configured).
        """
        T, n = self.io_length, self.n
        f = np.zeros((T, n))
        if self.B is None or self.us is None or len(self.us) == 0:
            return f
        for k in range(T - 1):
            f[k + 1] = self.A @ f[k] + self.B @ self.us[k]
        return f


@dataclass(frozen=True)
class ReconstructionCandidate:
    """One sensor subset's least-squares state hypothesis."""

    #: Sensors assumed honest.
    sensors: Tuple[int, ...]
    #: Complement — the sensors this hypothesis accuses.
    attacked: Tuple[int, ...]
    #: Initial state at the start of the window.
    x0: np.ndarray
    #: State propagated to the window's last sample instant.
    x_end: np.ndarray
    #: RMS measurement residual over the subset's window rows.
    residual: float
    #: Whether the subset's stacked observability map had full rank
    #: (rank-deficient subsets yield minimum-norm, non-unique x0).
    observable: bool
    #: Covariance of ``x_end`` under i.i.d. unit-variance measurement
    #: noise: ``Φ (MᵀM)⁻¹ Φᵀ``.  Scale by the noise variance to get the
    #: actual covariance; None for rank-deficient subsets.
    x_end_covariance: Optional[np.ndarray] = None


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of :meth:`SecureStateReconstruct.solve`.

    ``candidates`` holds every subset hypothesis sorted by residual;
    ``consistent`` only those whose residual passes the tolerance *and*
    whose subset is observable.  ``guaranteed`` reports the structural
    2s-sparse observability condition — when False the reconstruction
    may be ambiguous even with a perfect model, and
    ``unobservable_subsets`` lists the offending subsets.
    """

    candidates: Tuple[ReconstructionCandidate, ...]
    consistent: Tuple[ReconstructionCandidate, ...]
    guaranteed: bool
    unobservable_subsets: Tuple[Tuple[int, ...], ...] = field(
        default_factory=tuple
    )

    @property
    def best(self) -> Optional[ReconstructionCandidate]:
        """Lowest-residual consistent candidate (None when all rejected)."""
        return self.consistent[0] if self.consistent else None


class SecureStateReconstruct:
    """Brute-force subset search over an :class:`SSProblem`.

    Parameters
    ----------
    problem:
        The model, window and sparsity assumption.
    residual_threshold:
        RMS residual above which a subset is rejected as inconsistent
        (units of the measurements).
    rank_tolerance:
        Singular-value tolerance of the observability rank checks.
    transition:
        Optional ``dt → (A_dt, B_dt)`` builder for non-uniform windows
        (``problem.dts``); each interval then uses its exact
        discretization instead of the nominal matrices.  Ignored when
        the problem carries no ``dts``.
    """

    def __init__(
        self,
        problem: SSProblem,
        residual_threshold: float = 1e-6,
        rank_tolerance: float = 1e-10,
        transition=None,
    ):
        if residual_threshold <= 0.0:
            raise ConfigurationError(
                f"residual_threshold must be positive, got {residual_threshold}"
            )
        self.problem = problem
        self.residual_threshold = float(residual_threshold)
        self.rank_tolerance = float(rank_tolerance)
        # Cumulative state-transition maps Φ(t_k, t_0) over the window
        # and the input contributions f[k], shared by every subset.
        T, n = problem.io_length, problem.n
        powers = np.empty((T, n, n))
        powers[0] = np.eye(n)
        inputs = np.zeros((T, n))
        has_input = problem.B is not None and (
            problem.us is not None and len(problem.us) > 0
        )
        for k in range(T - 1):
            if transition is not None and problem.dts is not None:
                A_k, B_k = transition(float(problem.dts[k]))
            else:
                A_k, B_k = problem.A, problem.B
            powers[k + 1] = A_k @ powers[k]
            if has_input:
                inputs[k + 1] = A_k @ inputs[k] + B_k @ problem.us[k]
        self._powers = powers
        self._inputs = inputs

    # ------------------------------------------------------------------

    def subsets(self) -> List[Tuple[int, ...]]:
        """Every sensor subset of size ``p - s`` (the honest hypotheses)."""
        p, s = self.problem.p, self.problem.s
        return list(itertools.combinations(range(p), p - s))

    def _solve_subset(
        self, sensors: Sequence[int]
    ) -> ReconstructionCandidate:
        """Least-squares observer for one assumed-honest subset."""
        problem = self.problem
        C_sub = problem.C[list(sensors), :]
        T = problem.io_length
        # Stacked map: rows (k, i) — sensor i at step k.
        stacked = np.vstack([C_sub @ self._powers[k] for k in range(T)])
        targets = np.concatenate(
            [
                problem.ys[k, list(sensors)] - C_sub @ self._inputs[k]
                for k in range(T)
            ]
        )
        rank = int(
            np.linalg.matrix_rank(stacked, tol=self.rank_tolerance)
        )
        x0, *_ = np.linalg.lstsq(stacked, targets, rcond=None)
        residual = float(
            np.sqrt(np.mean((stacked @ x0 - targets) ** 2))
        )
        end_map = self._powers[T - 1]
        x_end = end_map @ x0 + self._inputs[T - 1]
        covariance = None
        if rank == problem.n:
            gram_inverse = np.linalg.inv(stacked.T @ stacked)
            covariance = end_map @ gram_inverse @ end_map.T
        return ReconstructionCandidate(
            sensors=tuple(int(i) for i in sensors),
            attacked=tuple(
                i for i in range(problem.p) if i not in set(sensors)
            ),
            x0=x0,
            x_end=x_end,
            residual=residual,
            observable=rank == problem.n,
            x_end_covariance=covariance,
        )

    def solve(self) -> ReconstructionResult:
        """Search every subset and classify the candidates."""
        problem = self.problem
        candidates = sorted(
            (self._solve_subset(sensors) for sensors in self.subsets()),
            key=lambda c: c.residual,
        )
        consistent = tuple(
            c
            for c in candidates
            if c.observable and c.residual <= self.residual_threshold
        )
        guaranteed = is_sparse_observable(
            problem.A, problem.C, 2 * problem.s, tolerance=self.rank_tolerance
        )
        unobservable = tuple(
            c.sensors for c in candidates if not c.observable
        )
        return ReconstructionResult(
            candidates=tuple(candidates),
            consistent=consistent,
            guaranteed=guaranteed,
            unobservable_subsets=unobservable,
        )
