"""CA-CFAR detection (repro.radar.cfar)."""

import numpy as np
import pytest

from repro.radar import FMCWParameters, RadarReceiver, beat_frequencies
from repro.radar.cfar import SpectralPresenceDetector, ca_cfar
from repro.radar.link_budget import received_power
from repro.radar.signal_synth import complex_awgn, synthesize_beat_signal

PARAMS = FMCWParameters()


def noise_spectrum(n=256, seed=0):
    rng = np.random.default_rng(seed)
    return np.abs(np.fft.fft(complex_awgn(n, 1.0, rng))) ** 2 / n


class TestCACFAR:
    def test_detects_strong_tone(self):
        spectrum = noise_spectrum()
        spectrum[40] += 100.0
        hits = ca_cfar(spectrum)
        assert hits[40]

    def test_false_alarm_rate_controlled(self):
        total, alarms = 0, 0
        for seed in range(40):
            spectrum = noise_spectrum(seed=seed)
            hits = ca_cfar(spectrum, probability_false_alarm=1e-3)
            total += spectrum.size
            alarms += int(np.count_nonzero(hits))
        # Empirical Pfa within an order of magnitude of the design value.
        assert alarms / total < 1e-2

    def test_adapts_to_raised_floor(self):
        # Same tone-to-noise ratio at a 100x higher floor: a fixed
        # threshold would saturate, CFAR still fires on the tone only.
        spectrum = 100.0 * noise_spectrum(seed=1)
        spectrum[80] += 100.0 * 100.0
        hits = ca_cfar(spectrum)
        assert hits[80]
        assert np.count_nonzero(hits) <= 3

    def test_masked_tone_not_detected(self):
        spectrum = noise_spectrum(seed=2)
        spectrum[10] += 0.1  # well below the noise mean
        assert not ca_cfar(spectrum)[10]

    def test_circular_wrap(self):
        spectrum = noise_spectrum(seed=3)
        spectrum[0] += 100.0
        assert ca_cfar(spectrum)[0]

    def test_validation(self):
        spectrum = noise_spectrum()
        with pytest.raises(ValueError):
            ca_cfar(spectrum, training_cells=0)
        with pytest.raises(ValueError):
            ca_cfar(spectrum, probability_false_alarm=1.5)
        with pytest.raises(ValueError):
            ca_cfar(np.ones(5), guard_cells=2, training_cells=8)


class TestSpectralPresenceDetector:
    def synth(self, distance, extra_noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        f_up, _ = beat_frequencies(PARAMS, distance, 0.0)
        power = received_power(PARAMS, distance)
        return synthesize_beat_signal(
            f_up,
            power,
            PARAMS.samples_per_segment,
            PARAMS.sample_rate,
            rng=rng,
            noise_power=PARAMS.noise_floor + extra_noise,
        )

    def test_detects_echo(self):
        detector = SpectralPresenceDetector()
        result = detector.detect(self.synth(100.0))
        assert result.present
        assert result.n_detections >= 1

    def test_silence_is_absent(self):
        rng = np.random.default_rng(0)
        detector = SpectralPresenceDetector(probability_false_alarm=1e-6)
        noise = complex_awgn(PARAMS.samples_per_segment, PARAMS.noise_floor, rng)
        assert not detector.detect(noise).present

    def test_detects_under_raised_floor(self):
        # Echo 10 dB above a floor that is itself 20 dB above thermal:
        # a fixed thermal-referenced threshold would declare presence for
        # the noise alone; CFAR keys on the tone.
        power = received_power(PARAMS, 50.0)
        result = SpectralPresenceDetector().detect(
            self.synth(50.0, extra_noise=power / 10.0)
        )
        assert result.present

    def test_validation(self):
        with pytest.raises(ValueError):
            SpectralPresenceDetector(min_detections=0)


class TestReceiverWithCFAR:
    def test_cfar_receiver_round_trip(self):
        receiver = RadarReceiver(PARAMS, presence="cfar")
        rng = np.random.default_rng(5)
        f_up, f_down = beat_frequencies(PARAMS, 60.0, -1.5)
        power = received_power(PARAMS, 60.0)
        n, fs = PARAMS.samples_per_segment, PARAMS.sample_rate
        up = synthesize_beat_signal(f_up, power, n, fs, rng=rng, noise_power=PARAMS.noise_floor)
        down = synthesize_beat_signal(f_down, power, n, fs, rng=rng, noise_power=PARAMS.noise_floor)
        out = receiver.process(up, down)
        assert out.present
        assert out.distance == pytest.approx(60.0, abs=0.5)

    def test_cfar_receiver_silence(self):
        receiver = RadarReceiver(PARAMS, presence="cfar")
        rng = np.random.default_rng(6)
        n = PARAMS.samples_per_segment
        up = complex_awgn(n, PARAMS.noise_floor, rng)
        down = complex_awgn(n, PARAMS.noise_floor, rng)
        assert not receiver.process(up, down).present

    def test_rejects_unknown_presence(self):
        with pytest.raises(ValueError):
            RadarReceiver(PARAMS, presence="psychic")
