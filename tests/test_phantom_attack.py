"""Phantom-target injection attack (repro.attacks.phantom)."""

import numpy as np
import pytest

from repro import (
    AttackWindow,
    FMCWRadarSensor,
    PhantomTargetAttack,
    fig2_scenario,
    run,
)
from repro.types import AttackLabel


def make_attack(**kwargs):
    defaults = dict(phantom_distance=10.0, phantom_velocity=-5.0)
    defaults.update(kwargs)
    return PhantomTargetAttack(AttackWindow(182.0, 300.0), **defaults)


class TestPhantomEffect:
    def test_label_is_spoofing_family(self):
        assert make_attack().label is AttackLabel.DELAY

    def test_absolute_placement(self):
        attack = make_attack(phantom_distance=12.0, phantom_velocity=-3.0)
        effect = attack.effect_at(200.0, 80.0, -1.0)
        assert effect.spoof_distance_offset == pytest.approx(12.0 - 80.0)
        assert effect.spoof_velocity_offset == pytest.approx(-3.0 - (-1.0))
        assert effect.replace_echo

    def test_sensor_reports_the_phantom(self):
        sensor = FMCWRadarSensor(fidelity="equation", seed=0)
        attack = make_attack(phantom_distance=15.0, phantom_velocity=-4.0)
        m = sensor.measure(
            200.0, 80.0, -1.0, effect=attack.effect_at(200.0, 80.0, -1.0)
        )
        assert m.distance == pytest.approx(15.0, abs=1.0)
        assert m.relative_velocity == pytest.approx(-4.0, abs=0.5)

    def test_signal_mode_reports_the_phantom(self):
        sensor = FMCWRadarSensor(fidelity="signal", seed=0)
        attack = make_attack(phantom_distance=15.0, phantom_velocity=-4.0)
        m = sensor.measure(
            200.0, 80.0, -1.0, effect=attack.effect_at(200.0, 80.0, -1.0)
        )
        assert m.distance == pytest.approx(15.0, abs=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_attack(phantom_distance=0.0)
        with pytest.raises(ValueError):
            PhantomTargetAttack(
                AttackWindow(0.0), counterfeit_power_gain=0.9
            )


class TestPhantomClosedLoop:
    @pytest.fixture(scope="class")
    def scenario(self):
        return fig2_scenario("dos").with_overrides(
            name="phantom", attack=make_attack()
        )

    def test_undefended_phantom_braking(self, scenario):
        """The availability attack: the follower slams the brakes for a
        ghost 10 m ahead and ends up far behind the baseline."""
        attacked = run(scenario, defended=False)
        baseline = run(scenario, attack_enabled=False, defended=False)
        times = attacked.times
        window = (times >= 182.0) & (times <= 200.0)
        # Hard braking right after onset...
        assert np.min(attacked.array("desired_acceleration")[window]) <= -3.0
        # ...and the true gap balloons far beyond the baseline's.
        assert attacked.array("true_distance")[-1] > (
            baseline.array("true_distance")[-1] + 30.0
        )

    def test_detected_at_first_challenge(self, scenario):
        defended = run(scenario, defended=True)
        assert defended.detection_times == [182.0]

    def test_defense_restores_availability(self, scenario):
        defended = run(scenario, defended=True)
        attacked = run(scenario, defended=False)
        baseline = run(scenario, attack_enabled=False, defended=False)
        final_defended = defended.array("true_distance")[-1]
        final_attacked = attacked.array("true_distance")[-1]
        final_baseline = baseline.array("true_distance")[-1]
        # Defended gap stays near the baseline, not near the ghost-braking run.
        assert abs(final_defended - final_baseline) < abs(
            final_attacked - final_baseline
        )
        assert not defended.collided
