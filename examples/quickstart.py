#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline experiment in ~20 lines.

Runs the Figure 2a scenario (leader braking at -0.1082 m/s², DoS jamming
attack from k = 182 s) three ways — clean, attacked, and defended with
CRA detection + RLS estimation — and prints the safety outcome of each.
"""

from repro import fig2_scenario, run
from repro.analysis import detection_confusion, render_table


def main() -> None:
    scenario = fig2_scenario("dos")
    data = run(scenario, mode="figure")

    rows = [
        data.baseline.summary().as_dict(),
        data.attacked.summary().as_dict(),
        data.defended.summary().as_dict(),
    ]
    print(render_table(rows, title="Figure 2a scenario: DoS jamming from k = 182 s"))
    print()

    confusion = detection_confusion(
        data.defended.detection_events, scenario.attack
    )
    print(f"Attack detected at k = {data.detection_time():.0f} s "
          f"(paper reports 182 s)")
    print(f"Challenge verdicts: {confusion.total} total, "
          f"{confusion.false_positives} false positives, "
          f"{confusion.false_negatives} false negatives "
          f"(paper reports zero / zero)")
    print()
    print(f"Undefended run collides at t = {data.attacked.collision_time:.0f} s; "
          f"defended run keeps a minimum gap of "
          f"{data.defended.min_gap():.1f} m over the full 300 s.")


if __name__ == "__main__":
    main()
