"""CRA detector (repro.core.detector) — Algorithm 2 lines 7-9, 13-15."""

import pytest

from repro.core import ChallengeSchedule, CRADetector
from repro.types import RadarMeasurement, SensorStatus


def challenge_measurement(time, distance=0.0, velocity=0.0):
    return RadarMeasurement(
        time=time,
        distance=distance,
        relative_velocity=velocity,
        status=SensorStatus.CHALLENGE,
    )


def nominal_measurement(time, distance=100.0, velocity=-1.0):
    return RadarMeasurement(time=time, distance=distance, relative_velocity=velocity)


SCHEDULE = ChallengeSchedule.from_times([15.0, 50.0, 175.0, 182.0, 195.0])


class TestDetection:
    def test_clean_challenge_no_alarm(self):
        detector = CRADetector(SCHEDULE)
        event = detector.process(challenge_measurement(15.0))
        assert event is not None
        assert not event.attack_detected
        assert not detector.attack_active

    def test_nonzero_at_challenge_raises_alarm(self):
        # Algorithm 2 line 9: y' ∈ list_zero and Val(y') != 0.
        detector = CRADetector(SCHEDULE)
        event = detector.process(challenge_measurement(182.0, distance=240.0))
        assert event.attack_detected
        assert detector.attack_active
        assert detector.first_detection_time == 182.0

    def test_velocity_only_output_also_detects(self):
        detector = CRADetector(SCHEDULE)
        event = detector.process(challenge_measurement(182.0, velocity=-40.0))
        assert event.attack_detected

    def test_non_challenge_measurements_ignored(self):
        detector = CRADetector(SCHEDULE)
        assert detector.process(nominal_measurement(100.0)) is None
        assert not detector.attack_active
        assert detector.events == []

    def test_corrupted_non_challenge_does_not_alarm(self):
        # CRA only inspects challenge instants: a spoofed value at a
        # normal instant is indistinguishable from a real echo.
        detector = CRADetector(SCHEDULE)
        assert detector.process(nominal_measurement(100.0, distance=500.0)) is None
        assert not detector.attack_active

    def test_alarm_clears_on_clean_challenge(self):
        # Algorithm 2 lines 13-15.
        detector = CRADetector(SCHEDULE)
        detector.process(challenge_measurement(182.0, distance=240.0))
        assert detector.attack_active
        detector.process(challenge_measurement(195.0))
        assert not detector.attack_active

    def test_detection_times_records_raising_edges(self):
        detector = CRADetector(SCHEDULE)
        detector.process(challenge_measurement(15.0))
        detector.process(challenge_measurement(50.0, distance=10.0))
        detector.process(challenge_measurement(175.0))
        detector.process(challenge_measurement(182.0, distance=10.0))
        assert detector.detection_times == [50.0, 182.0]

    def test_sustained_attack_counts_once(self):
        detector = CRADetector(SCHEDULE)
        detector.process(challenge_measurement(182.0, distance=10.0))
        detector.process(challenge_measurement(195.0, distance=10.0))
        assert detector.detection_times == [182.0]
        assert detector.attack_active


class TestTolerance:
    def test_numeric_dust_below_tolerance_is_zero(self):
        detector = CRADetector(SCHEDULE, zero_tolerance=1e-6)
        event = detector.process(challenge_measurement(15.0, distance=1e-9))
        assert not event.attack_detected

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            CRADetector(SCHEDULE, zero_tolerance=-1.0)

    def test_reset(self):
        detector = CRADetector(SCHEDULE)
        detector.process(challenge_measurement(182.0, distance=10.0))
        detector.reset()
        assert not detector.attack_active
        assert detector.events == []
        assert detector.first_detection_time is None


class TestPaperClaims:
    def test_no_false_positives_over_clean_run(self):
        """300 s of clean operation: every challenge verdict is negative."""
        detector = CRADetector(SCHEDULE)
        for k in range(300):
            time = float(k)
            if SCHEDULE.is_challenge(time):
                detector.process(challenge_measurement(time))
            else:
                detector.process(nominal_measurement(time))
        assert all(not e.attack_detected for e in detector.events)
        assert len(detector.events) == len(SCHEDULE)

    def test_detection_at_first_challenge_after_onset(self):
        """An attack starting at 180 is caught exactly at the 182 challenge."""
        detector = CRADetector(SCHEDULE)
        onset = 180.0
        for k in range(300):
            time = float(k)
            attacked = time >= onset
            if SCHEDULE.is_challenge(time):
                distance = 106.0 if attacked else 0.0
                detector.process(challenge_measurement(time, distance=distance))
            else:
                detector.process(nominal_measurement(time))
        assert detector.first_detection_time == 182.0
        assert detector.first_detection_time == SCHEDULE.next_challenge_at_or_after(
            onset
        )
