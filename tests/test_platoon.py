"""Platoon simulation (repro.simulation.platoon)."""

import numpy as np
import pytest

from repro.attacks import AttackWindow, DoSJammingAttack
from repro.exceptions import ConfigurationError
from repro.simulation import PlatoonScenario, PlatoonSimulation
from repro.vehicle import ConstantAccelerationProfile


def make_scenario(**overrides):
    defaults = dict(
        leader_profile=ConstantAccelerationProfile(-0.1082),
        n_followers=3,
        attack=DoSJammingAttack(AttackWindow(182.0, 300.0)),
    )
    defaults.update(overrides)
    return PlatoonScenario(**defaults)


@pytest.fixture(scope="module")
def clean_run():
    return PlatoonSimulation(make_scenario(), attack_enabled=False).run()


class TestScenarioValidation:
    def test_rejects_bad_follower_count(self):
        with pytest.raises(ConfigurationError):
            make_scenario(n_followers=0)

    def test_rejects_out_of_range_attacked_index(self):
        with pytest.raises(ConfigurationError):
            make_scenario(attacked_follower=5)

    def test_rejects_out_of_range_defended_index(self):
        with pytest.raises(ConfigurationError):
            make_scenario(defended_followers=(7,))

    def test_rejects_bad_gap(self):
        with pytest.raises(ConfigurationError):
            make_scenario(initial_gap=0.0)


class TestCleanPlatoon:
    def test_no_collisions(self, clean_run):
        assert not clean_run.any_collision()

    def test_all_traces_recorded(self, clean_run):
        assert "leader_velocity" in clean_run.traces
        for i in range(3):
            assert len(clean_run.traces[f"gap_{i}"]) == 301
            assert len(clean_run.traces[f"velocity_{i}"]) == 301

    def test_followers_track_their_predecessors(self, clean_run):
        leader_v = clean_run.traces["leader_velocity"].as_arrays()[1]
        previous = leader_v
        for i in range(3):
            follower_v = clean_run.velocity(i)
            # Each vehicle tracks its own predecessor (lag accumulates
            # down the chain, so leader-relative error would grow).  The
            # window stops before the low-speed endgame, where braking
            # to standstill makes tracking spiky.
            deviation = np.abs(follower_v[120:220] - previous[120:220])
            assert np.mean(deviation) < 2.0
            assert np.max(deviation) < 6.0
            previous = follower_v

    def test_gaps_stay_positive(self, clean_run):
        for i in range(3):
            assert clean_run.min_gap(i) > 0.0


class TestAttackedPlatoon:
    @pytest.fixture(scope="class")
    def attacked_run(self):
        return PlatoonSimulation(make_scenario(), attack_enabled=True).run()

    def test_attacked_vehicle_collides(self, attacked_run):
        assert attacked_run.collided(0)
        assert attacked_run.collision_times[0] > 182.0

    def test_disturbance_propagates_downstream(self, attacked_run, clean_run):
        amplification = attacked_run.string_amplification(clean_run)
        # Followers behind the attacked vehicle deviate far more than in
        # the clean run (string disturbance).
        assert all(a > 10.0 for a in amplification[1:])

    def test_attack_on_middle_vehicle(self, clean_run):
        result = PlatoonSimulation(
            make_scenario(attacked_follower=1), attack_enabled=True
        ).run()
        # Vehicle 0 ranges on the honest leader and stays clean.
        assert result.gap_deviation(0, clean_run) < 5.0
        assert result.collided(1) or result.min_gap(1) < clean_run.min_gap(1)


class TestDefendedPlatoon:
    @pytest.fixture(scope="class")
    def defended_run(self):
        return PlatoonSimulation(
            make_scenario(defended_followers=(0,)), attack_enabled=True
        ).run()

    def test_no_collisions(self, defended_run):
        assert not defended_run.any_collision()

    def test_detection_at_first_challenge(self, defended_run):
        detections = [
            e.time for e in defended_run.detection_events if e.attack_detected
        ]
        assert detections[0] == 182.0

    def test_defense_contains_disturbance(self, defended_run, clean_run):
        attacked = PlatoonSimulation(make_scenario(), attack_enabled=True).run()
        defended_amp = defended_run.string_amplification(clean_run)
        attacked_amp = attacked.string_amplification(clean_run)
        assert all(d < a for d, a in zip(defended_amp, attacked_amp))

    def test_downstream_gaps_near_clean(self, defended_run, clean_run):
        for i in (1, 2):
            assert defended_run.min_gap(i) > 0.5 * clean_run.min_gap(i)
