"""Unified experiment facade (repro.run) and its compatibility aliases."""

import pytest

import repro
from repro import fig2_scenario
from repro.exceptions import ConfigurationError
from repro.facade import run
from repro.simulation import (
    FigureData,
    MonteCarloSummary,
    PlatoonResult,
    PlatoonScenario,
    SimulationResult,
    scenario_to_dict,
    save_scenario,
)
from repro.vehicle import ConstantAccelerationProfile

FAST = fig2_scenario("dos", horizon=20.0)


def _platoon_scenario():
    return PlatoonScenario(
        leader_profile=ConstantAccelerationProfile(-0.05),
        n_followers=2,
        horizon=20.0,
    )


class TestRunModes:
    def test_default_mode_is_single(self):
        result = run(FAST)
        assert isinstance(result, SimulationResult)
        reference = repro.simulation.runner.run_single(FAST)
        assert result.min_gap() == reference.min_gap()

    def test_single_toggles(self):
        undefended = run(FAST, attack_enabled=False, defended=False)
        assert isinstance(undefended, SimulationResult)
        assert not undefended.detection_times

    def test_figure_mode(self):
        scenario = fig2_scenario("dos")
        data = run(scenario, mode="figure")
        assert isinstance(data, FigureData)
        assert data.detection_time() == 182.0
        reference = repro.simulation.runner.run_figure_scenario(scenario)
        assert data.defended.min_gap() == reference.defended.min_gap()

    def test_monte_carlo_mode_with_explicit_seeds(self):
        summary = run(
            fig2_scenario("dos"), mode="monte_carlo", seeds=range(3), workers=2
        )
        assert isinstance(summary, MonteCarloSummary)
        assert [o.seed for o in summary.outcomes] == [0, 1, 2]
        reference = repro.simulation.monte_carlo.run_monte_carlo(
            fig2_scenario("dos"), range(3)
        )
        assert summary.outcomes == reference.outcomes

    def test_monte_carlo_mode_derives_seed_count(self):
        summary = run(FAST, mode="monte_carlo", seeds=4)
        assert summary.n_runs == 4
        seeds = [o.seed for o in summary.outcomes]
        assert len(set(seeds)) == 4
        assert seeds == list(repro.derive_seeds(FAST.sensor_seed, 4))

    def test_monte_carlo_requires_seeds(self):
        with pytest.raises(ConfigurationError, match="seeds"):
            run(FAST, mode="monte_carlo")

    def test_platoon_mode_autoselected(self):
        result = run(_platoon_scenario())
        assert isinstance(result, PlatoonResult)
        assert result.n_followers == 2

    def test_platoon_scenario_rejects_other_modes(self):
        with pytest.raises(ConfigurationError, match="does not fit"):
            run(_platoon_scenario(), mode="figure")

    def test_pair_scenario_rejects_platoon_mode(self):
        with pytest.raises(ConfigurationError, match="does not fit"):
            run(FAST, mode="platoon")

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            run(FAST, mode="grid")


class TestSpecInputs:
    def test_dict_spec(self):
        result = run(scenario_to_dict(FAST))
        assert result.min_gap() == run(FAST).min_gap()

    def test_path_spec(self, tmp_path):
        path = save_scenario(FAST, tmp_path / "spec.json")
        result = run(str(path))
        assert result.min_gap() == run(FAST).min_gap()

    def test_rejects_other_types(self):
        with pytest.raises(ConfigurationError, match="Scenario"):
            run(42)


class TestDeprecatedAliases:
    """The pre-``run()`` names still work but warn (see facade docstring)."""

    def test_top_level_names_are_facade_aliases(self):
        assert repro.run is run
        assert repro.run_single is repro.facade.run_single
        assert repro.run_figure_scenario is repro.facade.run_figure_scenario
        assert repro.run_monte_carlo is repro.facade.run_monte_carlo
        assert repro.run_platoon is repro.facade.run_platoon

    def test_run_single_warns_and_matches_impl(self):
        with pytest.warns(DeprecationWarning, match=r"run_single\(\) is deprecated"):
            result = repro.run_single(FAST)
        assert (
            result.min_gap() == repro.simulation.runner.run_single(FAST).min_gap()
        )

    def test_run_figure_scenario_warns_and_matches_run(self):
        with pytest.warns(
            DeprecationWarning, match=r"run_figure_scenario\(\) is deprecated"
        ):
            data = repro.run_figure_scenario(FAST)
        assert isinstance(data, FigureData)
        assert data.defended.min_gap() == run(FAST, mode="figure").defended.min_gap()

    def test_run_monte_carlo_warns_with_default_args(self):
        with pytest.warns(
            DeprecationWarning, match=r"run_monte_carlo\(\) is deprecated"
        ):
            summary = repro.run_monte_carlo(FAST, seeds=range(2))
        assert isinstance(summary, MonteCarloSummary)
        assert summary.n_runs == 2

    def test_run_platoon_warns(self):
        with pytest.warns(DeprecationWarning, match=r"run_platoon\(\) is deprecated"):
            result = repro.run_platoon(_platoon_scenario(), attack_enabled=False)
        assert isinstance(result, PlatoonResult)

    def test_warning_points_at_caller(self):
        with pytest.warns(DeprecationWarning) as captured:
            repro.run_single(FAST)
        assert captured[0].filename == __file__
