"""Metrics and reporting for the reproduction experiments.

* :mod:`repro.analysis.metrics` — detection latency, confusion counts
  over challenge instants, estimation RMSE, and safety measures.
* :mod:`repro.analysis.tables` — fixed-width table rendering for the
  benchmark harness output.
* :mod:`repro.analysis.ascii_plot` — terminal line plots of the figure
  series (the closest a test log gets to the paper's MATLAB figures).
"""

from repro.analysis.metrics import (
    detection_latency,
    detection_confusion,
    DetectionConfusion,
    estimation_rmse,
    series_rmse,
    safety_metrics,
    SafetyMetrics,
)
from repro.analysis.tables import render_table
from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.report import build_report

__all__ = [
    "detection_latency",
    "detection_confusion",
    "DetectionConfusion",
    "estimation_rmse",
    "series_rmse",
    "safety_metrics",
    "SafetyMetrics",
    "render_table",
    "ascii_plot",
    "build_report",
]
