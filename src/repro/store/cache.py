"""Cache policy resolution for cache-aware batch execution.

The user-facing knob is a single ``cache=`` argument accepted by
:func:`repro.run`, :func:`repro.simulation.batch.execute_batch` and the
layers between them:

* ``"off"`` / ``None`` — no store involvement; execution is exactly
  the pre-cache code path;
* ``"readonly"`` — fingerprint hits are served from the default store,
  misses are computed but **not** written back;
* ``"readwrite"`` — hits are served, misses are computed and stored;
* a :class:`~repro.store.runstore.RunStore` or
  :class:`~repro.store.sharded.ShardedRunStore` — readwrite against
  that store (the caller keeps ownership of its lifetime);
* a :class:`CacheBinding` — full control of (store, mode).

:func:`resolve_cache` normalizes all of those to an optional
:class:`CacheBinding`; ``owns_store`` tells the executor whether it
created the store itself and should close it when the batch finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.exceptions import ConfigurationError
from repro.store.runstore import RunStore
from repro.store.sharded import ShardedRunStore

__all__ = ["CACHE_MODES", "CacheBinding", "resolve_cache"]

#: Accepted string values of the ``cache=`` argument.
CACHE_MODES = ("off", "readonly", "readwrite")


@dataclass
class CacheBinding:
    """A run store bound to an access mode for one batch execution."""

    store: Union[RunStore, ShardedRunStore]
    mode: str = "readwrite"
    owns_store: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("readonly", "readwrite"):
            raise ConfigurationError(
                "cache binding mode must be 'readonly' or 'readwrite', "
                f"got {self.mode!r}"
            )

    @property
    def writes(self) -> bool:
        return self.mode == "readwrite"


def resolve_cache(cache: Any) -> Optional[CacheBinding]:
    """Normalize a ``cache=`` argument to an optional binding.

    Returns ``None`` when caching is disabled.  Raises
    :class:`~repro.exceptions.ConfigurationError` for unknown modes or
    types, so typos fail loudly instead of silently recomputing.
    """
    if cache is None or cache == "off":
        return None
    if isinstance(cache, CacheBinding):
        return cache
    if isinstance(cache, (RunStore, ShardedRunStore)):
        return CacheBinding(store=cache, mode="readwrite", owns_store=False)
    if isinstance(cache, str):
        if cache not in CACHE_MODES:
            raise ConfigurationError(
                f"cache must be one of {', '.join(CACHE_MODES)}; got {cache!r}"
            )
        return CacheBinding(store=RunStore(), mode=cache, owns_store=True)
    raise ConfigurationError(
        "cache must be a mode string, a RunStore, a ShardedRunStore or "
        f"a CacheBinding, got {type(cache).__name__}"
    )
