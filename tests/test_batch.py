"""Parallel batch-execution engine (repro.simulation.batch)."""

import pytest

from repro import fig2_scenario
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation import (
    BatchResult,
    PlatoonScenario,
    RunSpec,
    derive_seeds,
    execute_batch,
    run_many,
    run_monte_carlo,
)
from repro.simulation.batch import _default_chunksize
from repro.vehicle import ConstantAccelerationProfile

#: Short horizon keeps the attack window empty — fast, clean runs.
FAST = fig2_scenario("dos", horizon=20.0)


def _min_gap(spec, result):
    """Worker-side reducer used by the postprocess tests."""
    return (spec.tag, round(result.min_gap(), 6))


def _explode(spec, result):
    raise RuntimeError("boom")


class TestExecuteBatch:
    def test_empty_batch(self):
        batch = execute_batch([])
        assert batch.records == ()
        assert not batch.parallel
        assert batch.payloads() == []

    def test_serial_records(self):
        specs = [
            RunSpec(FAST, attack_enabled=False, defended=False, tag="a"),
            RunSpec(FAST, attack_enabled=False, defended=True, tag="b"),
        ]
        batch = execute_batch(specs, workers=1)
        assert isinstance(batch, BatchResult)
        assert not batch.parallel and batch.workers == 1
        assert [r.tag for r in batch.records] == ["a", "b"]
        assert [r.index for r in batch.records] == [0, 1]
        assert all(r.ok and r.elapsed >= 0.0 for r in batch.records)

    def test_parallel_matches_serial(self):
        specs = [
            RunSpec(FAST.with_overrides(sensor_seed=seed), tag=str(seed))
            for seed in range(4)
        ]
        serial = execute_batch(specs, workers=1, postprocess=_min_gap)
        parallel = execute_batch(specs, workers=4, postprocess=_min_gap)
        assert serial.payloads() == parallel.payloads()

    def test_platoon_specs_dispatch(self):
        scenario = PlatoonScenario(
            leader_profile=ConstantAccelerationProfile(-0.05),
            n_followers=2,
            horizon=20.0,
        )
        (result,) = run_many([RunSpec(scenario, attack_enabled=False)])
        assert result.n_followers == 2

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="workers must be"):
            execute_batch([RunSpec(FAST)], workers=0)

    def test_error_captured_per_record(self):
        batch = execute_batch(
            [RunSpec(FAST, tag="bad")], workers=1, postprocess=_explode
        )
        (record,) = batch.records
        assert not record.ok
        assert record.payload is None
        assert "RuntimeError: boom" in record.error

    def test_raise_on_error(self):
        batch = execute_batch([RunSpec(FAST, tag="bad")], postprocess=_explode)
        with pytest.raises(SimulationError, match="bad"):
            batch.raise_on_error()
        with pytest.raises(SimulationError):
            run_many([RunSpec(FAST)], postprocess=_explode)

    def test_pool_failure_degrades_to_serial(self, monkeypatch):
        import concurrent.futures

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no pool in this sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", BrokenPool
        )
        # backend="scalar" pinned: under REPRO_BACKEND=auto these
        # identical specs would vectorize and never reach the pool.
        specs = [RunSpec(FAST, tag=str(i)) for i in range(2)]
        with pytest.warns(RuntimeWarning, match="re-running the 2-spec batch"):
            batch = execute_batch(
                specs, workers=4, postprocess=_min_gap, backend="scalar"
            )
        assert not batch.parallel and batch.workers == 1
        assert batch.degraded_reason is not None
        assert "OSError" in batch.degraded_reason
        assert "no pool in this sandbox" in batch.degraded_reason
        assert batch.payloads() == execute_batch(
            specs, workers=1, postprocess=_min_gap
        ).payloads()

    def test_healthy_batch_has_no_degraded_reason(self):
        batch = execute_batch([RunSpec(FAST)], workers=1)
        assert batch.degraded_reason is None

    def test_non_infra_pool_error_propagates(self, monkeypatch):
        """Regression: only pool-infrastructure failures may degrade.

        A programming error escaping the pool used to be swallowed by the
        bare ``except Exception`` and silently retried serially.
        """
        import concurrent.futures

        class SabotagedPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, *args, **kwargs):
                raise ValueError("logic bug, not an infra failure")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", SabotagedPool
        )
        specs = [RunSpec(FAST, tag=str(i)) for i in range(2)]
        with pytest.raises(ValueError, match="logic bug"):
            execute_batch(specs, workers=4, backend="scalar")

    def test_default_chunksize(self):
        assert _default_chunksize(3, 4) == 1
        assert _default_chunksize(64, 4) == 4


class TestMonteCarloParallel:
    def test_workers4_bitwise_identical_to_serial(self):
        """The issue's determinism contract: same SeedOutcome tuples."""
        scenario = fig2_scenario("dos")
        serial = run_monte_carlo(scenario, range(6), workers=1)
        parallel = run_monte_carlo(scenario, range(6), workers=4)
        assert serial.outcomes == parallel.outcomes
        assert serial.attacked == parallel.attacked

    def test_figure_triple_parallel_identical(self):
        from repro.simulation.runner import run_figure_scenario

        scenario = fig2_scenario("delay")
        serial = run_figure_scenario(scenario, workers=1)
        parallel = run_figure_scenario(scenario, workers=3)
        assert serial.detection_time() == parallel.detection_time()
        assert serial.defended.min_gap() == parallel.defended.min_gap()
        assert serial.attacked.collided == parallel.attacked.collided


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(2017, 8) == derive_seeds(2017, 8)

    def test_distinct_and_sized(self):
        seeds = derive_seeds(0, 32)
        assert len(seeds) == 32
        assert len(set(seeds)) == 32
        assert all(isinstance(seed, int) and seed >= 0 for seed in seeds)

    def test_prefix_stability(self):
        assert derive_seeds(7, 4) == derive_seeds(7, 8)[:4]

    def test_zero_count_is_empty(self):
        assert derive_seeds(1, 0) == ()

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError, match="n must be >= 0"):
            derive_seeds(1, -1)

    def test_rejects_negative_base_seed(self):
        with pytest.raises(ConfigurationError, match="base_seed must be >= 0"):
            derive_seeds(-3, 4)

    @pytest.mark.parametrize("bad", [2.5, "2017", None, 3.0])
    def test_rejects_non_integer_base_seed(self, bad):
        with pytest.raises(ConfigurationError, match="must be an integer"):
            derive_seeds(bad, 4)

    @pytest.mark.parametrize("bad", [1.5, "8", 4.0])
    def test_rejects_non_integer_count(self, bad):
        with pytest.raises(ConfigurationError, match="must be an integer"):
            derive_seeds(2017, bad)
