"""Extension bench — Monte-Carlo seed robustness of the paper's claims.

The paper's evaluation is a single simulation run; this bench re-states
its headline claims as distributions over 16 sensor-noise seeds using
the :mod:`repro.simulation.monte_carlo` harness: detection at k = 182 s
in every run, zero collisions defended, universal collision undefended
(for the DoS panel).
"""

from conftest import bench_workers, emit
from repro import fig2_scenario
from repro.analysis import render_table
from repro.simulation import run_monte_carlo

SEEDS = tuple(range(16))


def bench_seed_robustness(benchmark):
    workers = bench_workers()

    def sweep():
        rows = []
        for attack in ("dos", "delay"):
            scenario = fig2_scenario(attack)
            defended = run_monte_carlo(
                scenario, SEEDS, defended=True, workers=workers
            )
            undefended = run_monte_carlo(
                scenario, SEEDS, defended=False, workers=workers
            )
            rows.append(defended.as_row(f"fig2 {attack} defended"))
            rows.append(undefended.as_row(f"fig2 {attack} undefended"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_config = {row["configuration"]: row for row in rows}
    # Shape claims over all 16 seeds.
    for attack in ("dos", "delay"):
        defended = by_config[f"fig2 {attack} defended"]
        assert defended["collisions"] == 0
        assert defended["detection_rate"] == 1.0
        assert defended["detection_time_s"] == 182.0
        assert defended["worst_min_gap_m"] > 0.0
    assert by_config["fig2 dos undefended"]["collisions"] == len(SEEDS)

    emit(
        "seed_robustness",
        render_table(
            rows,
            title="Monte-Carlo robustness over 16 sensor-noise seeds "
            "(Figure 2 scenarios)",
        ),
    )
