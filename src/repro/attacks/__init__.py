"""Attack models against the active sensor (paper §4).

The paper's adversary is remote, non-invasive, in the vicinity of the
victim, and targets the analog front end of the active sensor (Eqns
3-4).  Two concrete attacks are modelled:

* :class:`~repro.attacks.dos.DoSJammingAttack` — a self-screening noise
  jammer overwhelms the echo (Eqns 10-11), producing large erratic
  measurements.
* :class:`~repro.attacks.delay.DelayInjectionAttack` — a replayed
  counterfeit echo with extra physical delay makes the target appear
  farther away (6 m in the paper's experiments).

Attacks are active over an :class:`~repro.attacks.base.AttackWindow`
(the paper's finite interval ``[k1, kn]``) and can be combined with
:class:`~repro.attacks.scheduler.AttackSchedule`.
"""

from repro.attacks.base import Attack, AttackWindow, NoAttack
from repro.attacks.dos import DoSJammingAttack
from repro.attacks.delay import DelayInjectionAttack
from repro.attacks.phantom import PhantomTargetAttack
from repro.attacks.scheduler import AttackSchedule

__all__ = [
    "Attack",
    "AttackWindow",
    "NoAttack",
    "DoSJammingAttack",
    "DelayInjectionAttack",
    "PhantomTargetAttack",
    "AttackSchedule",
]
