#!/usr/bin/env python
"""DoS jamming attack walk-through (paper §4.1, §6.2, Figure 2a).

Shows the full causal chain of the attack and the defense:

1. The jammer's link budget (Eqns 10-11) proves the attack is feasible
   at every distance in the radar's envelope.
2. The jamming noise swamps the echo and root-MUSIC locks onto noise,
   producing large erratic distance readings.
3. The CRA challenge at k = 182 catches the jammer (it cannot stop
   transmitting at instants it does not know about).
4. RLS estimation reconstructs the gap and the follower brakes safely.
"""

from repro import (
    BOSCH_LRR2,
    JammerParameters,
    fig2_scenario,
    jamming_power_ratio,
    run,
)
from repro.analysis import ascii_plot, render_table


def show_attack_feasibility() -> None:
    jammer = JammerParameters()  # the paper's 100 mW self-screening jammer
    rows = []
    for distance in (10.0, 35.0, 100.0, 200.0):
        ratio = jamming_power_ratio(BOSCH_LRR2, jammer, distance)
        rows.append(
            {
                "distance_m": distance,
                "Pr_over_Pjammer": f"{ratio:.2e}",
                "jamming_succeeds": ratio < 1.0,
            }
        )
    print(render_table(rows, title="Eqn 11 attack feasibility (ratio < 1 = success)"))
    print()


def show_figure(data) -> None:
    times = data.defended.times
    window = (times >= 120.0) & (times <= 300.0)
    print(
        ascii_plot(
            {
                "without attack": (
                    times[window],
                    data.baseline.array("measured_distance")[window],
                ),
                "with attack": (
                    times[window],
                    data.attacked.array("measured_distance")[window],
                ),
                "estimated": (
                    times[window],
                    data.defended.array("safe_distance")[window],
                ),
            },
            title="Figure 2a: radar distance, DoS attack at k = 182 s",
            y_label="m",
            width=100,
            height=22,
        )
    )
    print()


def main() -> None:
    show_attack_feasibility()
    data = run(fig2_scenario("dos"), mode="figure")
    show_figure(data)
    print(f"Detection: k = {data.detection_time():.0f} s")
    print(f"Attacked run: collision at t = {data.attacked.collision_time:.0f} s, "
          f"min gap {data.attacked.min_gap():.1f} m")
    print(f"Defended run: no collision, min gap {data.defended.min_gap():.1f} m")


if __name__ == "__main__":
    main()
