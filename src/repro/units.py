"""Unit conversions used at the public API boundary.

The library works in SI units internally (meters, seconds, watts, hertz).
The paper quotes speeds in miles per hour, gains in dB/dBi, and radar
parameters in MHz/GHz/mm, so these helpers keep call sites readable and
make the unit of every constant explicit.
"""

from __future__ import annotations

import math

__all__ = [
    "MPH_TO_MPS",
    "SPEED_OF_LIGHT",
    "mph_to_mps",
    "mps_to_mph",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "mhz",
    "ghz",
    "khz",
    "millimeters",
    "milliseconds",
    "microseconds",
    "nanoseconds_to_seconds",
    "seconds_to_nanoseconds",
]

#: Exact conversion factor from miles per hour to meters per second.
MPH_TO_MPS = 1609.344 / 3600.0

#: Speed of light in vacuum, m/s (exact by SI definition).
SPEED_OF_LIGHT = 299_792_458.0


def mph_to_mps(speed_mph: float) -> float:
    """Convert a speed from miles per hour to meters per second."""
    return speed_mph * MPH_TO_MPS


def mps_to_mph(speed_mps: float) -> float:
    """Convert a speed from meters per second to miles per hour."""
    return speed_mps / MPH_TO_MPS


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio from decibels to a linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises
    ------
    ValueError
        If ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"dB conversion requires a positive ratio, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert a power level from dBm to watts."""
    return 10.0 ** (power_dbm / 10.0) * 1e-3


def watts_to_dbm(power_watts: float) -> float:
    """Convert a power level from watts to dBm."""
    if power_watts <= 0.0:
        raise ValueError(f"dBm conversion requires positive power, got {power_watts!r}")
    return 10.0 * math.log10(power_watts / 1e-3)


def mhz(value: float) -> float:
    """Express a frequency given in megahertz in hertz."""
    return value * 1e6


def ghz(value: float) -> float:
    """Express a frequency given in gigahertz in hertz."""
    return value * 1e9


def khz(value: float) -> float:
    """Express a frequency given in kilohertz in hertz."""
    return value * 1e3


def millimeters(value: float) -> float:
    """Express a length given in millimeters in meters."""
    return value * 1e-3


def milliseconds(value: float) -> float:
    """Express a duration given in milliseconds in seconds."""
    return value * 1e-3


def microseconds(value: float) -> float:
    """Express a duration given in microseconds in seconds."""
    return value * 1e-6


def nanoseconds_to_seconds(value_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return value_ns * 1e-9


def seconds_to_nanoseconds(value_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return value_s * 1e9
