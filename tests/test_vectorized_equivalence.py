"""Scalar vs vectorized engine equivalence (repro.simulation.vectorized).

The vectorized engine's contract is *bit-identical* reproduction of the
scalar engine — ``==`` on every trace sample, never ``allclose``.  These
tests enforce it property-style: a seeded RNG draws random scenario
configurations (attack kind, horizon, noise, dropout, estimator,
defense tuning, seeds) and every drawn group must round-trip through
``backend="vectorized"`` with payloads equal to ``backend="scalar"``.

Also covered: the ``backend="auto"`` grouping/degradation policy, the
strict-mode blockers, the ``workers=`` / ``backend=`` knob validation
shared across layers, the :envvar:`REPRO_BACKEND` default, and cache
interaction (``RunRecord.backend_used`` provenance).
"""

from dataclasses import replace

import numpy as np
import pytest

import repro
from repro import fig2_scenario
from repro.attacks import (
    AttackWindow,
    DelayInjectionAttack,
    DoSJammingAttack,
    PhantomTargetAttack,
)
from repro.exceptions import ConfigurationError
from repro.radar.link_budget import JammerParameters
from repro.simulation import (
    PlatoonScenario,
    RunSpec,
    execute_batch,
    run_many,
    vectorization_blocker,
)
from repro.simulation.io import result_to_dict
from repro.simulation.knobs import BACKEND_ENV_VAR
from repro.store import RunStore
from repro.vehicle import ConstantAccelerationProfile

FAST = fig2_scenario("dos", horizon=20.0)

#: Attack window inside the short property-test horizons (the paper's
#: k = 182 s window would never fire in a 20-40 s run).
_WINDOW = AttackWindow(8.0, 16.0)


def _attack_for(kind, rng):
    if kind == "none":
        return None
    if kind == "dos":
        return DoSJammingAttack(_WINDOW, jammer=JammerParameters())
    if kind == "delay":
        return DelayInjectionAttack(
            _WINDOW,
            distance_offset=float(round(rng.uniform(3.0, 8.0), 3)),
            velocity_offset=float(round(rng.uniform(-1.0, 1.0), 3)),
            ramp_time=float(rng.choice([0.0, 4.0])),
        )
    return PhantomTargetAttack(
        _WINDOW,
        phantom_distance=float(round(rng.uniform(8.0, 15.0), 3)),
        phantom_velocity=float(round(rng.uniform(-6.0, -2.0), 3)),
    )


def _random_group(rng):
    """One random homogeneous spec group (a seed sweep, 3 runs)."""
    kind = str(rng.choice(["none", "dos", "delay", "phantom"]))
    defended = bool(rng.choice([True, False]))
    scenario = fig2_scenario("dos").with_overrides(
        name=f"prop-{kind}",
        horizon=float(rng.choice([20.0, 30.0, 40.0])),
        attack=_attack_for(kind, rng),
        dropout_rate=float(rng.choice([0.0, 0.0, 0.1])),
        distance_noise_std=float(round(rng.uniform(0.05, 0.4), 3)),
        velocity_noise_std=float(round(rng.uniform(0.05, 0.3), 3)),
        defense=fig2_scenario("dos").defense.__class__(
            forgetting=float(round(rng.uniform(0.9, 0.99), 3)),
            margin_gain=float(round(rng.uniform(1.0, 3.0), 3)),
            estimator_kind=str(rng.choice(["dead_reckoning", "per_channel"])),
        ),
    )
    seeds = rng.integers(0, 2**31, size=3)
    return [
        RunSpec(
            scenario.with_overrides(sensor_seed=int(seed)),
            attack_enabled=kind != "none",
            defended=defended,
            tag=str(i),
        )
        for i, seed in enumerate(seeds)
    ]


#: Drawn once at import — the parametrize ids stay stable run to run.
_RNG = np.random.default_rng(20170604)
RANDOM_GROUPS = [_random_group(_RNG) for _ in range(10)]


def _payload_dicts(batch):
    batch.raise_on_error()
    return [result_to_dict(record.payload) for record in batch.records]


class TestBitIdenticalEquivalence:
    @pytest.mark.parametrize(
        "group",
        RANDOM_GROUPS,
        ids=[f"{g[0].scenario.name}-{i}" for i, g in enumerate(RANDOM_GROUPS)],
    )
    def test_random_groups_match_scalar_exactly(self, group):
        assert vectorization_blocker(group[0]) is None
        scalar = execute_batch(group, backend="scalar")
        vector = execute_batch(group, backend="vectorized")
        assert _payload_dicts(scalar) == _payload_dicts(vector)
        assert all(r.backend_used == "scalar" for r in scalar.records)
        assert all(r.backend_used == "vectorized" for r in vector.records)

    def test_signal_fidelity_group_matches(self):
        # Full synthesis + root-MUSIC chain; short horizon keeps it fast.
        scenario = fig2_scenario("dos", horizon=10.0).with_overrides(
            fidelity="signal", attack=DoSJammingAttack(AttackWindow(4.0, 8.0))
        )
        group = [
            RunSpec(scenario.with_overrides(sensor_seed=seed), defended=True)
            for seed in (1, 2)
        ]
        scalar = execute_batch(group, backend="scalar")
        vector = execute_batch(group, backend="vectorized")
        assert _payload_dicts(scalar) == _payload_dicts(vector)

    def test_paper_panel_sweep_matches(self):
        # The canonical vectorizable batch: a fig2a defended seed sweep.
        summary_scalar = repro.run(
            fig2_scenario("dos"), mode="monte_carlo", seeds=4, backend="scalar"
        )
        summary_vector = repro.run(
            fig2_scenario("dos"), mode="monte_carlo", seeds=4, backend="vectorized"
        )
        assert summary_scalar.outcomes == summary_vector.outcomes

    def test_facade_single_run_matches(self):
        scalar = repro.run(FAST, backend="scalar")
        vector = repro.run(FAST, backend="vectorized")
        assert result_to_dict(scalar) == result_to_dict(vector)


class TestSafetyFilterVectorizes:
    """The CBF clamp is a stateless per-step function of the lock-step
    state, so ``strategy="safety_filter"`` vectorizes (PR 10 re-audit of
    the blocker) — bit-identically, like every other vectorized path."""

    @staticmethod
    def _group(scenario):
        return [
            RunSpec(
                scenario.with_overrides(sensor_seed=s), defended=True, tag=str(s)
            )
            for s in (1, 2)
        ]

    @staticmethod
    def _filtered(scenario, **overrides):
        return scenario.with_overrides(
            defense=replace(scenario.defense, strategy="safety_filter"),
            **overrides,
        )

    @pytest.mark.parametrize("attack", ["dos", "delay"])
    def test_full_panel_matches_scalar(self, attack):
        # Full-horizon fig2 panels: the filter actively clamps through
        # the attack window, certified track and all.
        group = self._group(self._filtered(fig2_scenario(attack)))
        assert vectorization_blocker(group[0]) is None
        scalar = execute_batch(group, backend="scalar")
        vector = execute_batch(group, backend="vectorized")
        assert _payload_dicts(scalar) == _payload_dicts(vector)
        assert all(r.backend_used == "vectorized" for r in vector.records)

    def test_detection_off_matches_scalar(self):
        # Challenge schedule emptied: detection never fires and the
        # clamp alone carries the run — the actuation-layer guarantee,
        # now also lock-step.
        group = self._group(
            self._filtered(fig2_scenario("dos"), challenge_times=())
        )
        scalar = execute_batch(group, backend="scalar")
        vector = execute_batch(group, backend="vectorized")
        assert _payload_dicts(scalar) == _payload_dicts(vector)
        # Equivalence covers the whole trace either way; the defense
        # claim itself (collision-free DoS at the paper configuration)
        # is asserted by bench_defense_comparison.
        for record in vector.records:
            assert not record.payload.detection_times

    def test_stateful_strategies_still_blocked(self):
        for strategy in ("secure_reconstruction", "combined"):
            scenario = FAST.with_overrides(
                defense=replace(FAST.defense, strategy=strategy)
            )
            spec = RunSpec(scenario, defended=True)
            assert strategy in (vectorization_blocker(spec) or "")


class TestAutoBackend:
    def test_homogeneous_group_vectorizes(self):
        specs = [
            RunSpec(FAST.with_overrides(sensor_seed=s), tag=str(s))
            for s in range(3)
        ]
        batch = execute_batch(specs, backend="auto")
        assert [r.backend_used for r in batch.records] == ["vectorized"] * 3
        assert _payload_dicts(batch) == _payload_dicts(
            execute_batch(specs, backend="scalar")
        )

    def test_heterogeneous_batch_degrades_to_scalar(self):
        # Pairwise different scenarios — every group is a singleton, so
        # nothing vectorizes and nothing raises.
        specs = [
            RunSpec(FAST.with_overrides(horizon=h), tag=str(h))
            for h in (20.0, 21.0, 22.0)
        ]
        batch = execute_batch(specs, backend="auto")
        batch.raise_on_error()
        assert [r.backend_used for r in batch.records] == ["scalar"] * 3

    def test_mixed_batch_splits_by_group(self):
        blocked = RunSpec(FAST.with_overrides(horizon=25.0), tag="lone")
        pair = [
            RunSpec(FAST.with_overrides(sensor_seed=s), tag=f"p{s}")
            for s in range(2)
        ]
        batch = execute_batch([pair[0], blocked, pair[1]], backend="auto")
        batch.raise_on_error()
        assert [r.backend_used for r in batch.records] == [
            "vectorized",
            "scalar",
            "vectorized",
        ]
        # Record order still matches spec order.
        assert [r.tag for r in batch.records] == ["p0", "lone", "p1"]

    def test_blocked_specs_run_scalar_under_auto(self):
        idm = FAST.with_overrides(follower_policy="idm")
        specs = [
            RunSpec(idm.with_overrides(sensor_seed=s), attack_enabled=False)
            for s in range(2)
        ]
        batch = execute_batch(specs, backend="auto")
        batch.raise_on_error()
        assert [r.backend_used for r in batch.records] == ["scalar"] * 2

    def test_single_spec_stays_scalar(self):
        # A vector group of one has no lock-step win.
        batch = execute_batch([RunSpec(FAST)], backend="auto")
        assert batch.records[0].backend_used == "scalar"


class TestStrictVectorized:
    def test_platoon_spec_rejected_with_blocker(self):
        platoon = PlatoonScenario(
            leader_profile=ConstantAccelerationProfile(-0.05),
            n_followers=2,
            horizon=20.0,
        )
        with pytest.raises(
            ConfigurationError, match="PlatoonScenario is not vectorizable"
        ):
            execute_batch([RunSpec(platoon)], backend="vectorized")

    def test_idm_spec_rejected_naming_index_and_tag(self):
        specs = [
            RunSpec(FAST, tag="ok"),
            RunSpec(FAST.with_overrides(follower_policy="idm"), tag="idm-run"),
        ]
        with pytest.raises(ConfigurationError, match=r"spec 1.*idm-run.*idm"):
            execute_batch(specs, backend="vectorized")

    def test_adaptive_challenge_rejected(self):
        scenario = FAST.with_overrides(adaptive_challenge_period=5.0)
        with pytest.raises(ConfigurationError, match="adaptive challenge"):
            run_many([RunSpec(scenario)], backend="vectorized")

    def test_facade_platoon_rejected(self):
        platoon = PlatoonScenario(
            leader_profile=ConstantAccelerationProfile(-0.05),
            n_followers=2,
            horizon=20.0,
        )
        with pytest.raises(ConfigurationError, match="platoon"):
            repro.run(platoon, backend="vectorized")


class TestBackendKnob:
    @pytest.mark.parametrize(
        "call",
        [
            lambda: execute_batch([RunSpec(FAST)], backend="turbo"),
            lambda: run_many([RunSpec(FAST)], backend="turbo"),
            lambda: repro.run(FAST, backend="turbo"),
        ],
        ids=["execute_batch", "run_many", "facade"],
    )
    def test_unknown_backend_rejected_everywhere(self, call):
        with pytest.raises(
            ConfigurationError, match="auto, scalar, vectorized.*'turbo'"
        ):
            call()

    def test_facade_validates_workers(self):
        with pytest.raises(ConfigurationError, match="workers must be"):
            repro.run(FAST, mode="figure", workers=0)
        with pytest.raises(ConfigurationError, match="workers must be"):
            repro.run(FAST, mode="figure", workers=2.5)

    def test_env_var_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        specs = [RunSpec(FAST.with_overrides(sensor_seed=s)) for s in range(2)]
        batch = execute_batch(specs)  # backend=None → env
        assert [r.backend_used for r in batch.records] == ["vectorized"] * 2

    def test_explicit_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        specs = [RunSpec(FAST.with_overrides(sensor_seed=s)) for s in range(2)]
        batch = execute_batch(specs, backend="scalar")
        assert [r.backend_used for r in batch.records] == ["scalar"] * 2

    def test_bad_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp")
        with pytest.raises(ConfigurationError, match="'warp'"):
            execute_batch([RunSpec(FAST)])


class TestCacheInteraction:
    def test_backend_used_provenance_with_store(self, tmp_path):
        specs = [
            RunSpec(FAST.with_overrides(sensor_seed=s), tag=str(s))
            for s in range(2)
        ]
        with RunStore(tmp_path / "s.sqlite") as store:
            cold = execute_batch(specs, cache=store, backend="vectorized")
            warm = execute_batch(specs, cache=store, backend="vectorized")
        assert [r.backend_used for r in cold.records] == ["vectorized"] * 2
        assert all(not r.cached for r in cold.records)
        # Replays never touch an engine: no backend provenance.
        assert [r.backend_used for r in warm.records] == [None, None]
        assert all(r.cached for r in warm.records)
        assert _payload_dicts(cold) == _payload_dicts(warm)

    def test_cached_scalar_and_vectorized_share_fingerprints(self, tmp_path):
        # Bit-identical results ⇒ a store warmed by one backend serves
        # the other verbatim.
        spec = RunSpec(FAST, tag="x")
        with RunStore(tmp_path / "s.sqlite") as store:
            execute_batch([spec], cache=store, backend="vectorized")
            replay = execute_batch([spec], cache=store, backend="scalar")
        assert replay.records[0].cached
