"""Shared typed containers (repro.types)."""

import numpy as np
import pytest

from repro.types import (
    DetectionEvent,
    RadarMeasurement,
    SensorStatus,
    TimeSeries,
)


class TestRadarMeasurement:
    def test_zero_output(self):
        m = RadarMeasurement(time=1.0, distance=0.0, relative_velocity=0.0)
        assert m.is_zero_output(1e-9)

    def test_nonzero_output(self):
        m = RadarMeasurement(time=1.0, distance=50.0, relative_velocity=0.0)
        assert not m.is_zero_output(1e-9)

    def test_small_velocity_breaks_zeroness(self):
        m = RadarMeasurement(time=1.0, distance=0.0, relative_velocity=0.5)
        assert not m.is_zero_output(1e-3)
        assert m.is_zero_output(1.0)

    def test_default_status(self):
        m = RadarMeasurement(time=0.0, distance=1.0, relative_velocity=0.0)
        assert m.status is SensorStatus.NOMINAL

    def test_frozen(self):
        m = RadarMeasurement(time=0.0, distance=1.0, relative_velocity=0.0)
        with pytest.raises(AttributeError):
            m.distance = 2.0


class TestTimeSeries:
    def test_append_and_length(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_rejects_out_of_order(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 2.0)

    def test_allows_equal_times(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_as_arrays(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        ts.append(1.0, 4.0)
        t, v = ts.as_arrays()
        assert np.array_equal(t, [0.0, 1.0])
        assert np.array_equal(v, [1.0, 4.0])

    def test_value_at(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        ts.append(2.0, 9.0)
        assert ts.value_at(2.0) == 9.0

    def test_value_at_missing_raises(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        with pytest.raises(KeyError):
            ts.value_at(5.0)

    def test_window(self):
        ts = TimeSeries("x")
        for k in range(10):
            ts.append(float(k), float(k * k))
        sub = ts.window(3.0, 6.0)
        assert sub.times == [3.0, 4.0, 5.0, 6.0]
        assert sub.values == [9.0, 16.0, 25.0, 36.0]


class TestDetectionEvent:
    def test_fields(self):
        event = DetectionEvent(time=182.0, attack_detected=True, receiver_output=40.0)
        assert event.time == 182.0
        assert event.attack_detected
        assert event.receiver_output == 40.0
