"""Adaptive variance-aware sweeps (repro.simulation.sweep)."""

import io
import json

import pytest

import repro
from repro import fig2_scenario, telemetry
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.simulation import (
    SWEEP_METRICS,
    SWEEP_SCHEDULES,
    PlatoonScenario,
    SweepCell,
    SweepResult,
    run_sweep,
)
from repro.store import ShardedRunStore

FAST = fig2_scenario("dos", horizon=20.0)

#: Radar-noise levels give the cells genuinely different min_gap
#: variance — the heterogeneity the adaptive allocator feeds on.
NOISE_CELLS = [
    SweepCell(
        key=f"noise-{noise}",
        scenario=fig2_scenario("dos", horizon=20.0, distance_noise_std=noise),
    )
    for noise in (0.1, 1.0, 4.0)
]


def _strip_elapsed(result_dict):
    d = dict(result_dict)
    d.pop("elapsed")
    return d


class TestFixedSchedule:
    def test_every_cell_runs_max_runs(self):
        result = run_sweep(
            NOISE_CELLS, metric="min_gap", schedule="fixed",
            min_runs=2, max_runs=4,
        )
        assert result.schedule == "fixed"
        assert result.rounds == 1
        assert result.executed_runs == result.fixed_grid_runs == 12
        assert result.runs_saved == 0
        assert result.savings_fraction == 0.0
        for cell in result.cells:
            assert cell.runs == 4
            assert len(cell.outcomes) == len(cell.values) == 4

    def test_deterministic(self):
        kwargs = dict(metric="min_gap", schedule="fixed", min_runs=2, max_runs=3)
        a = run_sweep(NOISE_CELLS, **kwargs)
        b = run_sweep(NOISE_CELLS, **kwargs)
        assert _strip_elapsed(a.as_dict()) == _strip_elapsed(b.as_dict())

    def test_workers_do_not_change_outcomes(self):
        kwargs = dict(metric="min_gap", schedule="fixed", min_runs=2, max_runs=3)
        serial = run_sweep(NOISE_CELLS, **kwargs, workers=1)
        parallel = run_sweep(NOISE_CELLS, **kwargs, workers=2)
        for cell in serial.cells:
            assert parallel.cell(cell.key).outcomes == cell.outcomes


class TestAdaptiveSchedule:
    def test_outcomes_are_prefix_of_fixed_grid(self):
        kwargs = dict(
            metric="min_gap", target_ci=0.5, min_runs=2, max_runs=6,
            round_size=4,
        )
        fixed = run_sweep(NOISE_CELLS, schedule="fixed", **kwargs)
        adaptive = run_sweep(NOISE_CELLS, schedule="adaptive", **kwargs)
        for cell in adaptive.cells:
            reference = fixed.cell(cell.key)
            assert cell.outcomes == reference.outcomes[: cell.runs]
            assert cell.values == reference.values[: cell.runs]

    def test_zero_variance_cells_stop_at_min_runs(self):
        # At horizon 20 the paper's attack window never opens, so the
        # detection indicator is constant 0.0: every cell converges on
        # its first check and the sweep stops after one round.
        result = run_sweep(
            NOISE_CELLS, metric="detection_rate", min_runs=2, max_runs=8,
        )
        assert result.rounds == 1
        assert result.executed_runs == 2 * len(NOISE_CELLS)
        assert result.savings_fraction == pytest.approx(0.75)
        for cell in result.cells:
            assert cell.converged
            assert cell.runs == 2
            assert cell.mean == 0.0
            assert cell.ci_halfwidth == 0.0

    def test_budget_flows_to_noisy_cells(self):
        result = run_sweep(
            NOISE_CELLS, metric="min_gap", target_ci=0.05,
            min_runs=3, max_runs=12, round_size=6,
        )
        by_key = {cell.key: cell.runs for cell in result.cells}
        # The noisiest cell must consume at least as much budget as the
        # quietest; with a 40x noise spread the order is stable.
        assert by_key["noise-4.0"] >= by_key["noise-0.1"]
        assert result.executed_runs <= result.fixed_grid_runs

    def test_converged_cells_meet_target(self):
        target = 0.5
        result = run_sweep(
            NOISE_CELLS, metric="min_gap", target_ci=target,
            min_runs=2, max_runs=8, round_size=4,
        )
        for cell in result.cells:
            if cell.converged:
                assert cell.ci_halfwidth <= target

    def test_per_cell_targets(self):
        targets = {"noise-0.1": 5.0, "noise-1.0": 5.0, "noise-4.0": 5.0}
        result = run_sweep(
            NOISE_CELLS, metric="min_gap", target_ci=targets,
            min_runs=2, max_runs=6,
        )
        # A huge target everywhere: all cells converge immediately.
        assert result.executed_runs == 2 * len(NOISE_CELLS)

    def test_incomplete_target_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="missing cells"):
            run_sweep(
                NOISE_CELLS, metric="min_gap",
                target_ci={"noise-0.1": 1.0},
            )

    def test_telemetry_counters(self):
        with telemetry.session() as tele:
            result = run_sweep(
                NOISE_CELLS, metric="detection_rate", min_runs=2, max_runs=8,
            )
        assert tele.counters["sweep.rounds"] == result.rounds
        assert tele.counters["sweep.executed_runs"] == result.executed_runs
        assert tele.counters["sweep.early_stops"] == len(NOISE_CELLS)


class TestCacheInterplay:
    def test_warm_sweep_is_pure_replay(self, tmp_path):
        kwargs = dict(metric="min_gap", schedule="fixed", min_runs=2, max_runs=3)
        with ShardedRunStore(tmp_path / "shards", shards=4) as store:
            cold = run_sweep(NOISE_CELLS, cache=store, **kwargs)
            assert len(store) == cold.executed_runs
            with telemetry.session() as tele:
                warm = run_sweep(NOISE_CELLS, cache=store, **kwargs)
        assert tele.counters["batch.cache_hits"] == cold.executed_runs
        for cell in cold.cells:
            assert warm.cell(cell.key).outcomes == cell.outcomes

    def test_cached_equals_uncached(self, tmp_path):
        kwargs = dict(metric="min_gap", schedule="fixed", min_runs=2, max_runs=3)
        plain = run_sweep(NOISE_CELLS, **kwargs)
        with ShardedRunStore(tmp_path / "shards", shards=2) as store:
            cached = run_sweep(NOISE_CELLS, cache=store, **kwargs)
        for cell in plain.cells:
            assert cached.cell(cell.key).outcomes == cell.outcomes


class TestValidation:
    def test_no_cells(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            run_sweep([])

    def test_duplicate_keys(self):
        cells = [SweepCell("dup", FAST), SweepCell("dup", FAST)]
        with pytest.raises(ConfigurationError, match="duplicate"):
            run_sweep(cells)

    def test_non_cell_rejected(self):
        with pytest.raises(ConfigurationError, match="SweepCell"):
            run_sweep([FAST])

    def test_platoon_scenario_rejected(self):
        platoon = PlatoonScenario(
            leader_profile=FAST.leader_profile, n_followers=2, horizon=20.0
        )
        with pytest.raises(ConfigurationError, match="two-vehicle"):
            run_sweep([SweepCell("p", platoon)])

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError, match="metric"):
            run_sweep([SweepCell("c", FAST)], metric="speedyness")

    def test_unknown_schedule(self):
        with pytest.raises(ConfigurationError, match="schedule"):
            run_sweep([SweepCell("c", FAST)], schedule="greedy")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_runs": 1},
            {"min_runs": 2.0},
            {"max_runs": 1},
            {"round_size": 0},
            {"confidence": 0.0},
            {"confidence": 1.0},
            {"target_ci": 0.0},
            {"target_ci": -1.0},
        ],
    )
    def test_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            run_sweep([SweepCell("c", FAST)], **kwargs)

    def test_constants(self):
        assert SWEEP_SCHEDULES == ("adaptive", "fixed")
        assert set(SWEEP_METRICS) == {
            "detection_rate", "min_gap", "collision_rate"
        }

    def test_custom_metric_callable(self):
        def halved_gap(outcome):
            return outcome.min_gap / 2.0

        result = run_sweep(
            [SweepCell("c", FAST)], metric=halved_gap,
            schedule="fixed", min_runs=2, max_runs=2,
        )
        assert result.metric == "halved_gap"
        (cell,) = result.cells
        assert cell.values == tuple(o.min_gap / 2.0 for o in cell.outcomes)

    def test_cell_lookup_raises_on_unknown(self):
        result = run_sweep(
            [SweepCell("c", FAST)], schedule="fixed", min_runs=2, max_runs=2
        )
        assert isinstance(result, SweepResult)
        assert result.cell("c").key == "c"
        with pytest.raises(KeyError):
            result.cell("nope")


class TestFacadeSweepMode:
    def test_single_cell_from_scenario(self):
        result = repro.run(
            FAST, mode="sweep",
            sweep={"metric": "min_gap", "schedule": "fixed",
                   "min_runs": 2, "max_runs": 2},
        )
        assert isinstance(result, SweepResult)
        (cell,) = result.cells
        assert cell.key == FAST.name
        assert cell.runs == 2

    def test_explicit_cells(self):
        result = repro.run(
            FAST, mode="sweep",
            sweep={"cells": NOISE_CELLS, "metric": "min_gap",
                   "schedule": "fixed", "min_runs": 2, "max_runs": 2},
        )
        assert [c.key for c in result.cells] == [c.key for c in NOISE_CELLS]

    def test_sweep_dict_requires_sweep_mode(self):
        with pytest.raises(ConfigurationError, match="sweep"):
            repro.run(FAST, mode="single", sweep={"max_runs": 2})

    def test_reserved_keys_rejected(self):
        for reserved in ("workers", "cache", "backend"):
            with pytest.raises(ConfigurationError, match=reserved):
                repro.run(FAST, mode="sweep", sweep={reserved: 1})

    def test_matches_direct_call(self):
        facade = repro.run(
            FAST, mode="sweep",
            sweep={"metric": "min_gap", "schedule": "fixed",
                   "min_runs": 2, "max_runs": 3},
        )
        direct = run_sweep(
            [SweepCell(key=FAST.name, scenario=FAST)],
            metric="min_gap", schedule="fixed", min_runs=2, max_runs=3,
        )
        assert facade.cells[0].outcomes == direct.cells[0].outcomes


class TestSweepCLI:
    def test_json_output(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "sweep", "run", "--cells", "fig2a", "--metric", "min_gap",
                "--schedule", "fixed", "--horizon", "10",
                "--min-runs", "2", "--max-runs", "2", "--json",
            ],
            out=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["schedule"] == "fixed"
        assert payload["executed_runs"] == 2
        assert payload["cells"][0]["cell"] == "fig2a"

    def test_table_output(self):
        out = io.StringIO()
        code = main(
            [
                "sweep", "run", "--cells", "fig2a", "--metric",
                "detection_rate", "--horizon", "10",
                "--min-runs", "2", "--max-runs", "4",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "fig2a" in text
        assert "executed 2 of 4 fixed-grid runs" in text

    def test_store_shards_flag_populates_store(self, tmp_path):
        store_path = tmp_path / "shards"
        out = io.StringIO()
        code = main(
            [
                "sweep", "run", "--cells", "fig2a", "--metric", "min_gap",
                "--schedule", "fixed", "--horizon", "10",
                "--min-runs", "2", "--max-runs", "2",
                "--store", str(store_path), "--store-shards", "2", "--json",
            ],
            out=out,
        )
        assert code == 0
        with ShardedRunStore(store_path) as store:
            assert store.shards == 2
            assert len(store) == 2

    def test_unknown_cell(self):
        err = io.StringIO()
        code = main(
            ["sweep", "run", "--cells", "fig9z"],
            out=io.StringIO(), err=err,
        )
        assert code == 2
        assert "unknown sweep cells: fig9z" in err.getvalue()

    def test_empty_cells(self):
        err = io.StringIO()
        code = main(
            ["sweep", "run", "--cells", ""], out=io.StringIO(), err=err
        )
        assert code == 2
        assert "no sweep cells" in err.getvalue()

    def test_bad_knob_reports_configuration_error(self):
        err = io.StringIO()
        code = main(
            [
                "sweep", "run", "--cells", "fig2a", "--horizon", "10",
                "--min-runs", "1",
            ],
            out=io.StringIO(), err=err,
        )
        assert code == 2
        assert "min_runs" in err.getvalue()
