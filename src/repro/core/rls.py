"""Recursive least-squares estimation — the paper's Algorithm 1.

Given regressors ``h_k`` ("entries of the measurement matrix") and
scalar observations ``y_k``, RLS recursively minimizes the
exponentially-weighted squared error

    J(w) = Σ_k λ^{n-k} (y_k - w^T h_k)²

with forgetting factor ``λ ∈ (0, 1]``.  Per iteration (Algorithm 1,
lines 5-11, in the standard Haykin formulation the paper cites [4]):

    π_k = P_{k-1} h_k
    γ_k = λ + h_k^T π_k          (conversion factor)
    g_k = π_k / γ_k              (gain vector)
    e_k = y_k - w_{k-1}^T h_k    (a-priori error)
    w_k = w_{k-1} + g_k e_k
    P_k = (P_{k-1} - g_k π_k^T) / λ

initialized with ``w_0 = 0`` and ``P_0 = δ I`` (the paper takes
``δ = 1``).  The per-update cost is ``O(n²)`` in the number of
parameters, matching the complexity the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["RLSUpdate", "RLSEstimator", "rls_estimate"]


@dataclass(frozen=True)
class RLSUpdate:
    """Diagnostics of one RLS iteration.

    Attributes
    ----------
    prediction:
        A-priori prediction ``w_{k-1}^T h_k``.
    error:
        A-priori error ``e_k = y_k - prediction``.
    gain:
        Gain vector ``g_k`` applied to the error.
    conversion_factor:
        ``γ_k = λ + h^T P h`` (the paper's ``γ``); always >= λ.
    """

    prediction: float
    error: float
    gain: np.ndarray
    conversion_factor: float


class RLSEstimator:
    """Exponentially-weighted recursive least squares (Algorithm 1).

    Parameters
    ----------
    n_params:
        Dimension of the weight vector ``w`` (and of each regressor).
    forgetting:
        Forgetting factor ``λ``; ``1.0`` gives ordinary (growing-window)
        least squares, smaller values track time variation faster at the
        cost of noisier weights.  Must lie in ``(0, 1]``.
    delta:
        Initial correlation scale: ``P_0 = δ I`` (paper: ``δ = 1``).

    Examples
    --------
    Identify a static linear map ``y = 2 x1 - 3 x2``:

    >>> rls = RLSEstimator(n_params=2, forgetting=1.0)
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> for _ in range(50):
    ...     h = rng.standard_normal(2)
    ...     _ = rls.update(h, 2.0 * h[0] - 3.0 * h[1])
    >>> np.allclose(rls.weights, [2.0, -3.0])
    True
    """

    def __init__(self, n_params: int, forgetting: float = 0.98, delta: float = 1.0):
        if n_params < 1:
            raise ValueError(f"n_params must be >= 1, got {n_params}")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(
                f"forgetting factor must lie in (0, 1], got {forgetting}"
            )
        if delta <= 0.0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.n_params = int(n_params)
        self.forgetting = float(forgetting)
        self.delta = float(delta)
        self.reset()

    def reset(self) -> None:
        """Return to the initial state ``w = 0``, ``P = δ I``."""
        self._weights = np.zeros(self.n_params)
        self._P = self.delta * np.eye(self.n_params)
        self._updates = 0

    @property
    def weights(self) -> np.ndarray:
        """Current weight estimate ``w_k`` (copy)."""
        return self._weights.copy()

    @property
    def correlation(self) -> np.ndarray:
        """Current inverse-correlation matrix ``P_k`` (copy)."""
        return self._P.copy()

    @property
    def n_updates(self) -> int:
        """Number of ``update`` calls since the last reset."""
        return self._updates

    def predict(self, regressor: Sequence[float]) -> float:
        """A-priori prediction ``w^T h`` for a regressor ``h``."""
        h = np.asarray(regressor, dtype=float).reshape(self.n_params)
        if self.n_params == 2:
            # Component-wise dot product: plain IEEE multiply-adds with
            # a fixed association, reproducible expression-for-expression
            # by the vectorized batch engine (BLAS may contract w·h with
            # FMA, which rounds differently).
            w = self._weights
            return float(w[0] * h[0] + w[1] * h[1])
        return float(self._weights @ h)

    def update(
        self,
        regressor: Sequence[float],
        observation: float,
        forgetting: Optional[float] = None,
    ) -> RLSUpdate:
        """One Algorithm-1 iteration; returns the step diagnostics.

        ``forgetting`` overrides the configured ``λ`` for this step
        only — the hook variable-forgetting-factor schemes use to dump
        memory after a regime change.
        """
        lam = self.forgetting if forgetting is None else float(forgetting)
        if not 0.0 < lam <= 1.0:
            raise ValueError(f"forgetting factor must lie in (0, 1], got {lam}")
        h = np.asarray(regressor, dtype=float).reshape(self.n_params)
        if self.n_params == 2:
            # Component-wise Algorithm 1 for the ubiquitous 2-parameter
            # (linear-trend) case.  Plain IEEE multiply/add/divide with a
            # fixed association — no BLAS (whose FMA contractions round
            # differently) — so the vectorized batch engine can mirror
            # the arithmetic expression-for-expression and stay
            # bit-identical to this scalar path.
            h0, h1 = h[0], h[1]
            P = self._P
            pi0 = P[0, 0] * h0 + P[0, 1] * h1
            pi1 = P[1, 0] * h0 + P[1, 1] * h1
            gamma = lam + (h0 * pi0 + h1 * pi1)
            g0 = pi0 / gamma
            g1 = pi1 / gamma
            w = self._weights
            prediction = float(w[0] * h0 + w[1] * h1)
            error = float(observation) - prediction
            self._weights = np.array([w[0] + g0 * error, w[1] + g1 * error])
            # (P - g πᵀ)/λ, with the off-diagonal symmetrized exactly as
            # the general path's 0.5 (P_new + P_newᵀ) does.
            n00 = (P[0, 0] - g0 * pi0) / lam
            n01 = (P[0, 1] - g0 * pi1) / lam
            n10 = (P[1, 0] - g1 * pi0) / lam
            n11 = (P[1, 1] - g1 * pi1) / lam
            off = 0.5 * (n01 + n10)
            self._P = np.array([[n00, off], [off, n11]])
            self._updates += 1
            return RLSUpdate(
                prediction=prediction,
                error=error,
                gain=np.array([g0, g1]),
                conversion_factor=float(gamma),
            )
        pi = self._P @ h
        gamma = lam + float(h @ pi)
        gain = pi / gamma
        prediction = float(self._weights @ h)
        error = float(observation) - prediction
        self._weights = self._weights + gain * error
        P_new = (self._P - np.outer(gain, pi)) / lam
        # Symmetrize to suppress round-off drift over long runs.
        self._P = 0.5 * (P_new + P_new.T)
        self._updates += 1
        return RLSUpdate(
            prediction=prediction,
            error=error,
            gain=gain,
            conversion_factor=gamma,
        )


def rls_estimate(
    regressors: Sequence[Sequence[float]],
    observations: Sequence[float],
    forgetting: float = 0.98,
    delta: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch convenience wrapper over :class:`RLSEstimator`.

    Runs Algorithm 1 over aligned sequences of regressors ``h_k`` and
    observations ``y_k``.

    Returns
    -------
    (predictions, weights):
        ``predictions[k]`` is the a-priori estimate at step ``k`` (the
        paper's ``ŵ`` output list) and ``weights`` the final ``w``.
    """
    H = np.atleast_2d(np.asarray(regressors, dtype=float))
    y = np.asarray(observations, dtype=float).ravel()
    if H.shape[0] != y.shape[0]:
        raise ValueError(
            f"got {H.shape[0]} regressors but {y.shape[0]} observations"
        )
    estimator = RLSEstimator(n_params=H.shape[1], forgetting=forgetting, delta=delta)
    predictions = np.empty(y.shape[0])
    for k in range(y.shape[0]):
        predictions[k] = estimator.update(H[k], y[k]).prediction
    return predictions, estimator.weights
