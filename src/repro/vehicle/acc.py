"""The complete ACC system: upper level + lower level (Figure 1).

:class:`ACCSystem` is the follower vehicle's controller stack.  Each
discrete step it consumes the trusted own-speed measurement and the
(possibly estimated) radar measurement and produces the actual
acceleration the plant realizes, along with every internal state the
paper's Figure 1 names (``a_des``, ``a_pedal``, ``P_brake``, mode,
``d_des``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.vehicle.lower_controller import ActuatorCommand, LowerLevelController
from repro.vehicle.params import ACCParameters
from repro.vehicle.upper_controller import (
    ControlMode,
    UpperLevelController,
    UpperLevelOutput,
)

__all__ = ["ACCStepResult", "ACCSystem"]


@dataclass(frozen=True)
class ACCStepResult:
    """Everything the ACC computed in one control step."""

    actual_acceleration: float
    upper: UpperLevelOutput
    actuation: ActuatorCommand

    @property
    def desired_acceleration(self) -> float:
        """Shortcut to the upper level's ``a_des``."""
        return self.upper.desired_acceleration

    @property
    def mode(self) -> ControlMode:
        """Shortcut to the active control mode."""
        return self.upper.mode


class ACCSystem:
    """Hierarchical adaptive cruise controller for the follower vehicle.

    Parameters
    ----------
    params:
        Controller and plant parameters; the paper's values by default.
    initial_acceleration:
        Plant acceleration state at k = 0.
    """

    def __init__(
        self,
        params: Optional[ACCParameters] = None,
        initial_acceleration: float = 0.0,
    ):
        self.params = params if params is not None else ACCParameters()
        self.upper = UpperLevelController(self.params)
        self.lower = LowerLevelController(self.params, initial_acceleration)

    @property
    def actual_acceleration(self) -> float:
        """The plant's current acceleration ``a_F``."""
        return self.lower.actual_acceleration

    def step(
        self,
        follower_speed: float,
        measurement: Optional[Tuple[float, float]],
        accel_filter: Optional[Callable[[float], float]] = None,
    ) -> ACCStepResult:
        """Run one control period.

        Parameters
        ----------
        follower_speed:
            Trusted ``v_F`` measurement, m/s.
        measurement:
            Safe ``(distance, relative_velocity)`` from the defense
            pipeline (or raw sensor data when undefended); None when no
            target is visible.
        accel_filter:
            Optional safety layer applied to the upper level's ``a_des``
            before it reaches the actuators (e.g.
            :meth:`repro.defense.safety_filter.SafetyFilter.clamp`
            partially applied).  The recorded ``desired_acceleration``
            stays the controller's wish; the plant tracks the filtered
            command.
        """
        upper_output = self.upper.compute(follower_speed, measurement)
        command = upper_output.desired_acceleration
        if accel_filter is not None:
            command = accel_filter(command)
        actual, actuation = self.lower.step(command)
        return ACCStepResult(
            actual_acceleration=actual,
            upper=upper_output,
            actuation=actuation,
        )

    def reset(self, acceleration: float = 0.0) -> None:
        """Reset the plant acceleration state."""
        self.lower.reset(acceleration)
