"""Triangular sweep and CRA binary modulation (repro.radar.waveform)."""

import numpy as np
import pytest

from repro.radar import BinaryModulator, FMCWParameters, TriangularSweep
from repro.radar.signal_synth import (
    combine_components,
    complex_awgn,
    signal_power,
    synthesize_beat_signal,
)

PARAMS = FMCWParameters()


class TestTriangularSweep:
    def setup_method(self):
        self.sweep = TriangularSweep(PARAMS)

    def test_period(self):
        assert self.sweep.period == pytest.approx(2.0 * PARAMS.sweep_time)

    def test_frequency_range(self):
        t = np.linspace(0.0, self.sweep.period, 1000)
        freq = self.sweep.instantaneous_frequency(t)
        low = PARAMS.carrier_frequency - PARAMS.sweep_bandwidth / 2.0
        high = PARAMS.carrier_frequency + PARAMS.sweep_bandwidth / 2.0
        assert np.min(freq) >= low - 1.0
        assert np.max(freq) <= high + 1.0

    def test_up_sweep_rises(self):
        t = np.linspace(0.0, PARAMS.sweep_time * 0.99, 100)
        freq = self.sweep.instantaneous_frequency(t)
        assert np.all(np.diff(freq) > 0)

    def test_down_sweep_falls(self):
        t = np.linspace(PARAMS.sweep_time * 1.01, self.sweep.period * 0.99, 100)
        freq = self.sweep.instantaneous_frequency(t)
        assert np.all(np.diff(freq) < 0)

    def test_periodic_wrap(self):
        f0 = self.sweep.instantaneous_frequency(0.0001)
        f1 = self.sweep.instantaneous_frequency(0.0001 + self.sweep.period)
        assert f0 == pytest.approx(f1)

    def test_segment_classification(self):
        assert self.sweep.segment_of(PARAMS.sweep_time * 0.5) == 1
        assert self.sweep.segment_of(PARAMS.sweep_time * 1.5) == -1

    def test_sample_times(self):
        up, down = self.sweep.sample_times()
        assert len(up) == PARAMS.samples_per_segment
        assert len(down) == PARAMS.samples_per_segment
        assert np.all(down >= PARAMS.sweep_time)
        assert up[1] - up[0] == pytest.approx(1.0 / PARAMS.sample_rate)


class TestBinaryModulator:
    def test_transmit_passes_through(self):
        modulator = BinaryModulator(PARAMS)
        envelope = np.ones(8, dtype=complex)
        assert np.array_equal(modulator.apply(envelope, transmit=True), envelope)

    def test_challenge_suppresses(self):
        modulator = BinaryModulator(PARAMS)
        envelope = np.ones(8, dtype=complex)
        gated = modulator.apply(envelope, transmit=False)
        assert np.all(gated == 0.0)

    def test_modulation_value(self):
        modulator = BinaryModulator(PARAMS)
        assert modulator.modulation_value(True) == 1
        assert modulator.modulation_value(False) == 0


class TestSignalSynthesis:
    def test_power_of_pure_tone(self):
        s = synthesize_beat_signal(1e4, power=2.0, n_samples=512, sample_rate=1e5, phase=0.0)
        assert signal_power(s) == pytest.approx(2.0)

    def test_noise_power(self, rng):
        noise = complex_awgn(50000, power=0.5, rng=rng)
        assert signal_power(noise) == pytest.approx(0.5, rel=0.05)

    def test_awgn_is_circular(self, rng):
        noise = complex_awgn(50000, power=1.0, rng=rng)
        assert np.mean(noise.real**2) == pytest.approx(0.5, rel=0.1)
        assert np.mean(noise.imag**2) == pytest.approx(0.5, rel=0.1)

    def test_rejects_supra_nyquist(self, rng):
        with pytest.raises(ValueError):
            synthesize_beat_signal(6e4, 1.0, 64, 1e5, rng=rng)

    def test_rejects_missing_rng(self):
        with pytest.raises(ValueError):
            synthesize_beat_signal(1e3, 1.0, 64, 1e5, noise_power=0.1)

    def test_negative_frequency_allowed(self, rng):
        s = synthesize_beat_signal(-2e4, 1.0, 64, 1e5, rng=rng)
        assert len(s) == 64

    def test_combine_components(self):
        a = np.ones(4, dtype=complex)
        b = 2.0 * np.ones(4, dtype=complex)
        assert np.array_equal(combine_components([a, b]), 3.0 * np.ones(4))

    def test_combine_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            combine_components([np.ones(4), np.ones(5)])

    def test_combine_empty(self):
        assert combine_components([]).size == 0

    def test_signal_power_empty(self):
        assert signal_power(np.array([])) == 0.0
