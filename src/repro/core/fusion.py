"""Redundant-sensor fusion defense — the alternative the paper rejects.

Related work (paper §2) secures sensing through redundancy: several
independent sensors measure the same quantity, a fusion rule (median)
produces the value the controller sees, and large disagreement between
a sensor and the fused value flags that sensor as corrupted.  "Redundancy
is useful for ensuring accurate sensor measurements, but it increases
cost of the system" — this module implements the approach so the
comparison bench can quantify exactly that trade against CRA+RLS.

:class:`MedianFusionDefense` fuses per-instant measurements;
:func:`run_redundant_defense` runs the full car-following loop with
``n_sensors`` radars of which ``n_attacked`` are corrupted (a spatially
localized attacker cannot illuminate every aperture/band at once — the
standard redundancy assumption; if the attacker corrupts a majority,
fusion fails, which the tests also pin down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.radar.sensor import FMCWRadarSensor
from repro.simulation.results import SimulationResult
from repro.simulation.scenario import Scenario
from repro.types import RadarMeasurement
from repro.vehicle.acc import ACCSystem
from repro.vehicle.kinematics import advance_state
from repro.vehicle.state import VehicleState
from repro.vehicle.upper_controller import ControlMode

__all__ = ["FusedMeasurement", "MedianFusionDefense", "run_redundant_defense"]


@dataclass(frozen=True)
class FusedMeasurement:
    """Outcome of fusing one instant's redundant measurements."""

    time: float
    distance: float
    relative_velocity: float
    outlier_sensors: Tuple[int, ...]
    attack_suspected: bool


class MedianFusionDefense:
    """Median fusion with disagreement-based attack flagging.

    Parameters
    ----------
    n_sensors:
        Number of redundant sensors (>= 2; >= 3 to out-vote one
        corrupted sensor).
    disagreement_threshold:
        A sensor whose distance deviates from the median by more than
        this many meters is flagged as an outlier.
    """

    def __init__(self, n_sensors: int = 3, disagreement_threshold: float = 3.0):
        if n_sensors < 2:
            raise ConfigurationError(f"n_sensors must be >= 2, got {n_sensors}")
        if disagreement_threshold <= 0.0:
            raise ConfigurationError(
                f"disagreement_threshold must be positive, "
                f"got {disagreement_threshold}"
            )
        self.n_sensors = int(n_sensors)
        self.disagreement_threshold = float(disagreement_threshold)
        self._flags: List[FusedMeasurement] = []

    @property
    def history(self) -> List[FusedMeasurement]:
        """All fusion outcomes so far."""
        return list(self._flags)

    @property
    def suspected_times(self) -> List[float]:
        """Times at which some sensor was flagged as an outlier."""
        return [f.time for f in self._flags if f.attack_suspected]

    def fuse(self, measurements: Sequence[RadarMeasurement]) -> FusedMeasurement:
        """Fuse one instant's measurements from all sensors."""
        if len(measurements) != self.n_sensors:
            raise ValueError(
                f"expected {self.n_sensors} measurements, got {len(measurements)}"
            )
        distances = np.array([m.distance for m in measurements])
        velocities = np.array([m.relative_velocity for m in measurements])
        median_distance = float(np.median(distances))
        median_velocity = float(np.median(velocities))
        outliers = tuple(
            i
            for i, d in enumerate(distances)
            if abs(d - median_distance) > self.disagreement_threshold
        )
        fused = FusedMeasurement(
            time=measurements[0].time,
            distance=median_distance,
            relative_velocity=median_velocity,
            outlier_sensors=outliers,
            attack_suspected=bool(outliers),
        )
        self._flags.append(fused)
        return fused


def run_redundant_defense(
    scenario: Scenario,
    n_sensors: int = 3,
    n_attacked: int = 1,
    disagreement_threshold: float = 3.0,
    attack_enabled: bool = True,
) -> Tuple[SimulationResult, MedianFusionDefense]:
    """Closed-loop car-following run defended by sensor redundancy.

    The follower carries ``n_sensors`` radars with independent noise;
    the scenario's attack corrupts the first ``n_attacked`` of them.
    No CRA modulation is used (``transmit`` is always on): redundancy is
    the *only* defense, exactly as in the related work.

    Returns the run result and the fusion defense (whose history holds
    the disagreement flags).
    """
    if not 0 <= n_attacked <= n_sensors:
        raise ConfigurationError(
            f"n_attacked must be in [0, {n_sensors}], got {n_attacked}"
        )
    sensors = [
        FMCWRadarSensor(
            params=scenario.radar_params,
            fidelity=scenario.fidelity,
            seed=scenario.sensor_seed + 1000 * i,
            **scenario.sensor_noise_overrides(),
        )
        for i in range(n_sensors)
    ]
    fusion = MedianFusionDefense(
        n_sensors=n_sensors, disagreement_threshold=disagreement_threshold
    )
    attack = scenario.attack if attack_enabled else None
    acc = ACCSystem(scenario.acc_params)
    leader = VehicleState(
        position=scenario.initial_distance, velocity=scenario.leader_initial_speed
    )
    follower = VehicleState(position=0.0, velocity=scenario.follower_initial_speed)

    result = SimulationResult.empty(
        f"{scenario.name}/redundant-{n_sensors}x",
        attack_name=attack.label.value if attack else "none",
        defended=True,
    )
    for time in scenario.times():
        true_gap = leader.position - follower.position
        if true_gap <= 0.0 and result.collision_time is None:
            result.collision_time = time
        radar_gap = max(true_gap, 0.5)
        relative_velocity = leader.velocity - follower.velocity

        effect = (
            attack.effect_at(time, radar_gap, relative_velocity)
            if attack is not None
            else None
        )
        measurements = [
            sensor.measure(
                time,
                radar_gap,
                relative_velocity,
                transmit=True,
                effect=effect if i < n_attacked else None,
            )
            for i, sensor in enumerate(sensors)
        ]
        fused = fusion.fuse(measurements)
        step = acc.step(
            follower.velocity, (fused.distance, fused.relative_velocity)
        )
        result.record(
            time,
            leader_position=leader.position,
            leader_velocity=leader.velocity,
            follower_position=follower.position,
            follower_velocity=follower.velocity,
            follower_acceleration=step.actual_acceleration,
            true_distance=true_gap,
            true_relative_velocity=relative_velocity,
            measured_distance=measurements[0].distance,
            measured_relative_velocity=measurements[0].relative_velocity,
            safe_distance=fused.distance,
            safe_relative_velocity=fused.relative_velocity,
            desired_distance=step.upper.desired_distance,
            desired_acceleration=step.desired_acceleration,
            pedal_acceleration=step.actuation.pedal_acceleration,
            brake_pressure=step.actuation.brake_pressure,
            spacing_mode=1.0 if step.mode is ControlMode.SPACING else 0.0,
            estimated_flag=1.0 if fused.attack_suspected else 0.0,
            attack_active_flag=1.0 if fused.attack_suspected else 0.0,
        )
        leader = advance_state(
            leader, scenario.leader_profile.acceleration(time), scenario.sample_period
        )
        follower = advance_state(
            follower, step.actual_acceleration, scenario.sample_period
        )
    return result, fusion
