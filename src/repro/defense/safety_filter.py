"""Control-barrier safety filter on the commanded acceleration.

The detection/estimation track keeps the *measurements* honest; this
module instead constrains the *actuation*, so a spoofed gap cannot talk
the follower into closing below the safe distance even when detection
is delayed or disabled (the "secure safety filter" idea of Tan et al.;
see PAPERS.md).

Barrier function, in the trusted quantities plus the certified gap::

    h(k) = ĝ(k) − d_min − τ·v_F(k)

with ``ĝ`` the certified gap (below), ``d_min`` the standstill margin
and ``τ`` a safety headway (smaller than the ACC's comfort headway, so
the filter only binds when the ACC is already being deceived).  The
discrete CBF condition ``h(k+1) ≥ (1 − γ)·h(k)`` under the one-step
kinematics ``v_F⁺ = v_F + T·u``, ``ĝ⁺ = ĝ + T·Δv̂ − T²/2·u`` yields the
admissible-acceleration bound

    u ≤ (γ·h + T·Δv̂) / (τ·T + T²/2)

and the filter clamps the controller's desired acceleration to it.

**Certified gap.**  Feeding the raw (possibly spoofed) gap into ``h``
would let an attacker disable the filter by spoofing *high*.  The filter
therefore maintains a one-sided track: the certified gap follows the
measured gap freely *downwards* (being too pessimistic is safe) but may
grow no faster than physics allows — per step at most
``T·max(0, Δv̂) + a_L·T²/2`` where the certified relative velocity
``Δv̂`` is itself capped so the implied leader velocity rises at most
``a_L·T`` per step (``a_L`` = ``leader_accel_bound``).  Jump spoofs
(the +6 m delay offset, DoS spurious highs) are flatly ignored;
a slow ramp *below* the physical rate is indistinguishable from a real
leader pulling away and is the documented residual exposure.  On clean
data the measured gap always satisfies the cap, so the track re-anchors
to the sensor every step and the filter is exactly transparent.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError

__all__ = ["SafetyFilter"]


class SafetyFilter:
    """Clamp commanded acceleration to the certified-gap CBF bound.

    Parameters
    ----------
    sample_period:
        Control period ``T``, seconds.
    headway:
        Safety headway ``τ`` of the barrier, seconds.  Keep it below
        the ACC's comfort headway or the filter fights the controller
        on clean data.
    minimum_gap:
        Standstill margin ``d_min`` the barrier defends, metres.
    gamma:
        CBF decay rate in ``(0, 1]``; 1 forbids any decrease of ``h``.
    leader_accel_bound:
        Assumed maximum physical leader acceleration ``a_L``, m/s² —
        the rate limit of the certified track.
    min_acceleration:
        Actuator floor, m/s²; the clamp never commands below it.
    """

    def __init__(
        self,
        sample_period: float = 1.0,
        headway: float = 1.5,
        minimum_gap: float = 5.0,
        gamma: float = 0.5,
        leader_accel_bound: float = 2.5,
        min_acceleration: float = -5.0,
    ):
        if sample_period <= 0.0:
            raise ConfigurationError(
                f"sample_period must be positive, got {sample_period}"
            )
        if headway < 0.0:
            raise ConfigurationError(f"headway must be >= 0, got {headway}")
        if minimum_gap < 0.0:
            raise ConfigurationError(
                f"minimum_gap must be >= 0, got {minimum_gap}"
            )
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must lie in (0, 1], got {gamma}")
        if leader_accel_bound < 0.0:
            raise ConfigurationError(
                f"leader_accel_bound must be >= 0, got {leader_accel_bound}"
            )
        self.sample_period = float(sample_period)
        self.headway = float(headway)
        self.minimum_gap = float(minimum_gap)
        self.gamma = float(gamma)
        self.leader_accel_bound = float(leader_accel_bound)
        self.min_acceleration = float(min_acceleration)
        self._certified_gap: Optional[float] = None
        self._certified_leader_speed: Optional[float] = None
        #: Steps where the clamp actually reduced the commanded accel.
        self.interventions = 0
        #: Steps processed in total.
        self.steps = 0
        #: Steps where a measured gap exceeded the physical growth cap.
        self.rejected_jumps = 0
        #: The admissible bound computed at the last step (None = never).
        self.last_bound: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def certified_gap(self) -> Optional[float]:
        """Current certified gap, metres (None before the first sample)."""
        return self._certified_gap

    def barrier(self, follower_speed: float) -> Optional[float]:
        """``h = ĝ − d_min − τ·v_F`` (None before the first sample)."""
        if self._certified_gap is None:
            return None
        return (
            self._certified_gap
            - self.minimum_gap
            - self.headway * follower_speed
        )

    def _certify(
        self, distance: float, relative_velocity: float, follower_speed: float
    ) -> float:
        """Fold one (possibly hostile) measurement into the track.

        Returns the certified relative velocity for this step.
        """
        T = self.sample_period
        measured_leader = relative_velocity + follower_speed
        if self._certified_leader_speed is None:
            certified_leader = measured_leader
        else:
            # Leader speed may fall freely (pessimism is safe) but rise
            # at most a_L·T per step.
            certified_leader = min(
                measured_leader,
                self._certified_leader_speed + self.leader_accel_bound * T,
            )
        self._certified_leader_speed = certified_leader
        certified_relative = certified_leader - follower_speed

        if self._certified_gap is None:
            self._certified_gap = distance
        else:
            growth_cap = (
                self._certified_gap
                + T * max(0.0, certified_relative)
                + 0.5 * self.leader_accel_bound * T * T
            )
            if distance > growth_cap:
                self.rejected_jumps += 1
                self._certified_gap = growth_cap
            else:
                self._certified_gap = distance
        self._certified_gap = max(0.0, self._certified_gap)
        return certified_relative

    def clamp(
        self,
        desired_acceleration: float,
        follower_speed: float,
        distance: float,
        relative_velocity: float,
    ) -> float:
        """Certify this step's measurement and bound the command.

        Call exactly once per control step, with whatever gap /
        relative-velocity values the controller is about to act on
        (post-pipeline substitutes, or raw when undetected).
        """
        self.steps += 1
        certified_relative = self._certify(
            distance, relative_velocity, follower_speed
        )
        h = self.barrier(follower_speed)
        assert h is not None  # _certify just set the track
        T = self.sample_period
        bound = (self.gamma * h + T * certified_relative) / (
            self.headway * T + 0.5 * T * T
        )
        self.last_bound = bound
        admissible = max(self.min_acceleration, min(desired_acceleration, bound))
        if admissible < desired_acceleration:
            self.interventions += 1
        return admissible
