"""CRA attack detection — Algorithm 2, lines 7-9 and 13-15 (paper §5.2).

At each challenge instant ``k ∈ T_c`` the radar transmitted nothing, so
an honest environment yields a zero receiver output.  The detector
compares the actual output against that expectation:

    if y'_k ∈ list_zero  and  Val(y'_k) != 0:  attack detected

A DoS jammer cannot stop transmitting at instants it does not know
about, and a replay attacker's counterfeit (delayed by construction) is
also still in flight — so both attacks light up at the first challenge
at or after their onset, with no false positives in between (the paper
reports exactly zero FP/FN).

The detector also implements the recovery branch (Algorithm 2 lines
13-15): once an attack has been flagged, a later challenge instant with
a zero output clears the alarm and normal operation resumes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cra import ChallengeSchedule
from repro.types import DetectionEvent, RadarMeasurement

__all__ = ["CRADetector"]


class CRADetector:
    """Stateful challenge-response detector over a measurement stream.

    Parameters
    ----------
    schedule:
        The challenge instants the radar's modulator suppressed.
    zero_tolerance:
        Magnitude below which a receiver output counts as zero.  The
        receiver's energy detector already squelches sub-noise-floor
        inputs to an exact zero, so this only needs to absorb numeric
        dust.
    """

    def __init__(self, schedule: ChallengeSchedule, zero_tolerance: float = 1e-6):
        if zero_tolerance < 0.0:
            raise ValueError(f"zero_tolerance must be >= 0, got {zero_tolerance}")
        self.schedule = schedule
        self.zero_tolerance = zero_tolerance
        self._attack_active = False
        self._events: List[DetectionEvent] = []
        self._detection_times: List[float] = []

    @property
    def attack_active(self) -> bool:
        """Current alarm state (the paper's ``attack_detect`` flag)."""
        return self._attack_active

    @property
    def events(self) -> List[DetectionEvent]:
        """All challenge-instant verdicts so far, in order."""
        return list(self._events)

    @property
    def detection_times(self) -> List[float]:
        """Instants at which the alarm transitioned from clear to raised."""
        return list(self._detection_times)

    @property
    def first_detection_time(self) -> Optional[float]:
        """The paper's ``t_ad``: first time an attack was flagged."""
        return self._detection_times[0] if self._detection_times else None

    def reset(self) -> None:
        """Clear alarm state and history."""
        self._attack_active = False
        self._events = []
        self._detection_times = []

    def process(self, measurement: RadarMeasurement) -> Optional[DetectionEvent]:
        """Examine one measurement; returns a verdict at challenge instants.

        Non-challenge measurements carry no authentication information
        and return None without changing the alarm state.
        """
        if not self.schedule.is_challenge(measurement.time):
            return None
        output_magnitude = max(
            abs(measurement.distance), abs(measurement.relative_velocity)
        )
        nonzero = not measurement.is_zero_output(self.zero_tolerance)
        event = DetectionEvent(
            time=measurement.time,
            attack_detected=nonzero,
            receiver_output=output_magnitude,
        )
        self._events.append(event)
        if nonzero and not self._attack_active:
            self._attack_active = True
            self._detection_times.append(measurement.time)
        elif not nonzero and self._attack_active:
            # Algorithm 2 lines 13-15: a clean challenge response means
            # the attack has ended; resume trusting the sensor.
            self._attack_active = False
        return event
