"""Unit-conversion helpers (repro.units)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestSpeedConversions:
    def test_paper_leader_speed(self):
        # 65 mph is the paper's leader initial speed.
        assert units.mph_to_mps(65.0) == pytest.approx(29.0576, abs=1e-3)

    def test_paper_set_speed(self):
        assert units.mph_to_mps(67.0) == pytest.approx(29.9517, abs=1e-3)

    def test_zero(self):
        assert units.mph_to_mps(0.0) == 0.0
        assert units.mps_to_mph(0.0) == 0.0

    @given(st.floats(min_value=-500.0, max_value=500.0))
    def test_round_trip(self, speed):
        assert units.mps_to_mph(units.mph_to_mps(speed)) == pytest.approx(
            speed, abs=1e-9
        )


class TestDecibelConversions:
    def test_known_values(self):
        assert units.db_to_linear(0.0) == 1.0
        assert units.db_to_linear(10.0) == pytest.approx(10.0)
        assert units.db_to_linear(3.0) == pytest.approx(1.9953, abs=1e-3)

    def test_paper_antenna_gain(self):
        # G = 28 dBi.
        assert units.db_to_linear(28.0) == pytest.approx(630.957, abs=1e-2)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_round_trip(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(
            db, abs=1e-9
        )


class TestPowerConversions:
    def test_dbm(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)
        assert units.watts_to_dbm(10e-3) == pytest.approx(10.0)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)


class TestScalePrefixes:
    def test_frequency(self):
        assert units.mhz(150.0) == 150e6
        assert units.ghz(77.0) == 77e9
        assert units.khz(1.0) == 1e3

    def test_lengths_and_times(self):
        assert units.millimeters(3.89) == pytest.approx(3.89e-3)
        assert units.milliseconds(2.0) == pytest.approx(2e-3)
        assert units.microseconds(5.0) == pytest.approx(5e-6)

    def test_nanoseconds(self):
        assert units.seconds_to_nanoseconds(1.2e-2) == pytest.approx(1.2e7)
        assert units.nanoseconds_to_seconds(1.2e7) == pytest.approx(1.2e-2)

    def test_speed_of_light(self):
        assert units.SPEED_OF_LIGHT == 299_792_458.0

    def test_wavelength_matches_carrier(self):
        # The paper's 3.89 mm wavelength is c / 77 GHz.
        assert units.SPEED_OF_LIGHT / units.ghz(77.0) == pytest.approx(
            units.millimeters(3.89), rel=1e-3
        )
