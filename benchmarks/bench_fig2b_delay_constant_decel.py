"""Figure 2b — delay-injection attack, constant leader deceleration.

The counterfeit echo adds 6 m to the measured distance from k = 180 s;
undefended, the follower under-brakes and the true gap collapses.  The
bench regenerates the panel series and checks detection at k = 182 and
safe recovery.
"""

import numpy as np

from conftest import (
    assert_figure_shape,
    emit,
    figure_ascii,
    figure_series_table,
    figure_summary,
    figure_velocity_table,
)


def bench_fig2b(benchmark, figure_data):
    data = benchmark.pedantic(figure_data, args=("fig2b",), rounds=1, iterations=1)

    assert_figure_shape(data, attacked_should_collide=True)

    # Delay-specific shape: the attacked stream sits ~6 m above the true
    # gap (stealthy — no spikes), and the undefended gap shrinks below
    # the baseline's.
    times = data.attacked.times
    mask = (times >= 181.0) & (times <= 190.0)
    offsets = (
        data.attacked.array("measured_distance")[mask]
        - data.attacked.array("true_distance")[mask]
    )
    assert abs(np.median(offsets) - 6.0) < 1.0
    assert data.attacked.min_gap() < data.baseline.min_gap()

    emit(
        "fig2b_delay_constant_decel",
        "\n\n".join(
            [
                "Figure 2b: delay-injection attack (+6 m from k = 180 s), "
                "constant leader deceleration",
                figure_ascii(data, "distance series (clipped to 260 m)"),
                "Distance series:\n" + figure_series_table(data),
                "Relative-velocity series:\n" + figure_velocity_table(data),
                "Run summaries:\n" + figure_summary(data),
                f"Detection time: k = {data.detection_time():.0f} s "
                "(paper: 182 s)",
            ]
        ),
    )
