"""Root-MUSIC frequency estimation, implemented from scratch.

The paper extracts the two beat frequencies from the radar data with the
root-MUSIC algorithm (§6.2).  This module provides a self-contained
implementation for complex baseband signals:

1. Build an ``M x M`` sample covariance from overlapping length-``M``
   snapshots of the signal (spatial smoothing).
2. Eigendecompose; the ``M - K`` smallest eigenvectors span the noise
   subspace ``E_n``.
3. Form the root-MUSIC polynomial ``D(z) = p(1/z)^T E_n E_n^H p(z)``
   with ``p(z) = [1, z, ..., z^{M-1}]^T`` and find its roots; the ``K``
   roots closest to (and inside) the unit circle sit at
   ``z = exp(j 2π f / fs)``.

A simple FFT-with-parabolic-refinement single-tone estimator is also
provided as an independent cross-check used by the test suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SpectralEstimationError

__all__ = ["root_music", "estimate_single_tone"]


def _covariance_matrix(signal: np.ndarray, order: int) -> np.ndarray:
    """Spatially smoothed sample covariance of size ``order``.

    Forward smoothing only: forward-backward averaging would conjugate
    the data and add a mirror component at ``-f`` for complex
    exponentials, which is wrong for the one-sided beat spectrum of an
    IQ-dechirped FMCW return.
    """
    snapshots = np.lib.stride_tricks.sliding_window_view(signal, order)
    # Rows are length-``order`` snapshots x_k^T; covariance is
    # E[x x^H], i.e. R[m, n] = mean_k x_k[m] conj(x_k[n]).
    return snapshots.T @ snapshots.conj() / snapshots.shape[0]


def root_music(
    signal: np.ndarray,
    n_sources: int,
    sample_rate: float,
    covariance_order: Optional[int] = None,
) -> np.ndarray:
    """Estimate the frequencies of ``n_sources`` complex sinusoids.

    Parameters
    ----------
    signal:
        Complex baseband samples (1-D).
    n_sources:
        Number of sinusoids to resolve (``K``).
    sample_rate:
        Sample rate in hertz; returned frequencies are in
        ``(-sample_rate/2, sample_rate/2]``.
    covariance_order:
        Size ``M`` of the smoothed covariance; defaults to
        ``min(len(signal)//3, 24)`` and must satisfy
        ``n_sources < M <= len(signal)``.

    Returns
    -------
    numpy.ndarray
        The ``K`` estimated frequencies in hertz, sorted ascending.

    Raises
    ------
    SpectralEstimationError
        If the signal is too short or the polynomial rooting fails to
        produce ``K`` usable roots.
    """
    x = np.asarray(signal, dtype=complex).ravel()
    if n_sources < 1:
        raise ValueError(f"n_sources must be >= 1, got {n_sources}")
    if sample_rate <= 0.0:
        raise ValueError(f"sample_rate must be positive, got {sample_rate}")
    order = covariance_order if covariance_order is not None else min(len(x) // 3, 24)
    if order <= n_sources:
        raise SpectralEstimationError(
            f"covariance order {order} must exceed n_sources {n_sources}; "
            f"signal of length {len(x)} is too short"
        )
    if len(x) < order:
        raise SpectralEstimationError(
            f"need at least {order} samples, got {len(x)}"
        )

    covariance = _covariance_matrix(x, order)
    _, eigvecs = np.linalg.eigh(covariance)
    noise_subspace = eigvecs[:, : order - n_sources]
    projector = noise_subspace @ noise_subspace.conj().T

    # Coefficient of z^k in p(1/z)^T C p(z) is the k-th diagonal sum of C;
    # multiplying by z^(M-1) gives a degree 2M-2 polynomial whose
    # coefficients (highest power first) run k = M-1 .. -(M-1).
    coefficients = np.array(
        [np.trace(projector, offset=k) for k in range(order - 1, -order, -1)]
    )
    roots = np.roots(coefficients)
    if roots.size == 0:
        raise SpectralEstimationError("root-MUSIC polynomial has no roots")

    # Roots come in conjugate-reciprocal pairs; keep the ones inside (or
    # numerically on) the unit circle, then take the K closest to it.
    inside = roots[np.abs(roots) <= 1.0 + 1e-8]
    if inside.size < n_sources:
        raise SpectralEstimationError(
            f"only {inside.size} roots inside the unit circle, "
            f"need {n_sources}"
        )
    closest = inside[np.argsort(np.abs(np.abs(inside) - 1.0))[:n_sources]]
    frequencies = np.angle(closest) / (2.0 * np.pi) * sample_rate
    return np.sort(frequencies)


def estimate_single_tone(signal: np.ndarray, sample_rate: float) -> float:
    """FFT-based single-tone frequency estimate with parabolic refinement.

    An independent, non-subspace estimator used to cross-check
    :func:`root_music` in tests and as a cheap fallback.  Accurate to a
    small fraction of a bin for a strong sinusoid.
    """
    x = np.asarray(signal, dtype=complex).ravel()
    if x.size < 4:
        raise SpectralEstimationError("need at least 4 samples for a tone estimate")
    n_fft = int(2 ** np.ceil(np.log2(x.size * 4)))
    spectrum = np.fft.fft(x, n_fft)
    magnitude = np.abs(spectrum)
    peak = int(np.argmax(magnitude))
    # Parabolic interpolation on log-magnitude around the peak.
    left = magnitude[(peak - 1) % n_fft]
    right = magnitude[(peak + 1) % n_fft]
    center = magnitude[peak]
    denom = left - 2.0 * center + right
    offset = 0.0 if abs(denom) < 1e-30 else 0.5 * (left - right) / denom
    bin_freq = (peak + offset) / n_fft
    if bin_freq > 0.5:
        bin_freq -= 1.0
    return float(bin_freq * sample_rate)
