"""Terminal line plots of simulation traces.

The paper's Figures 2-3 are MATLAB plots; the benchmark harness renders
the same series as ASCII charts so the figure *shape* (attack spikes,
challenge zeros, estimated curve tracking the clean one) is visible
directly in the bench log.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ascii_plot"]


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 100,
    height: int = 24,
    title: Optional[str] = None,
    y_label: str = "",
    x_label: str = "time (s)",
) -> str:
    """Render one or more ``name -> (times, values)`` series as text.

    Each series is drawn with a distinct glyph; later series overdraw
    earlier ones where they collide.  Axes are annotated with the data
    ranges.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 20 or height < 5:
        raise ValueError("plot must be at least 20x5 characters")

    glyphs = "*o+x.#@%"
    all_t = np.concatenate(
        [np.asarray(t, dtype=float) for t, _ in series.values()]
    )
    all_v = np.concatenate(
        [np.asarray(v, dtype=float) for _, v in series.values()]
    )
    finite = np.isfinite(all_v)
    if not np.any(finite):
        raise ValueError("no finite values to plot")
    t_min, t_max = float(np.min(all_t)), float(np.max(all_t))
    v_min, v_max = float(np.min(all_v[finite])), float(np.max(all_v[finite]))
    if t_max <= t_min:
        t_max = t_min + 1.0
    if v_max <= v_min:
        v_max = v_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (times, values)) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for t, v in zip(np.asarray(times, dtype=float), np.asarray(values, dtype=float)):
            if not np.isfinite(v):
                continue
            col = int((t - t_min) / (t_max - t_min) * (width - 1))
            row = int((v - v_min) / (v_max - v_min) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    top_label = f"{v_max:.1f} {y_label}".rstrip()
    bottom_label = f"{v_min:.1f} {y_label}".rstrip()
    lines.append(top_label)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(bottom_label)
    lines.append(f"{t_min:.0f}{' ' * (width - len(f'{t_min:.0f}') - len(f'{t_max:.0f}'))}{t_max:.0f}  {x_label}")
    return "\n".join(lines)
