"""CUSUM and safety-envelope detector baselines (repro.core.baselines)."""

import numpy as np
import pytest

from repro.core import CUSUMDetector, SafetyEnvelopeDetector


def stream(detector, n=300, attack_start=None, offset=6.0, ramp=0.0, noise=0.25, seed=0):
    """Clean decreasing channel with an optional (ramped) offset attack."""
    rng = np.random.default_rng(seed)
    alarms = []
    for k in range(n):
        value = 100.0 - 0.2 * k + rng.normal(0, noise)
        if attack_start is not None and k >= attack_start:
            if ramp > 0.0:
                value += offset * min(1.0, (k - attack_start) / ramp)
            else:
                value += offset
        if detector.process(float(k), value):
            alarms.append(k)
    return alarms


class TestCUSUMDetector:
    def test_detects_step(self):
        alarms = stream(CUSUMDetector(), attack_start=150)
        assert alarms
        assert 150 <= alarms[0] <= 160

    def test_smooth_ramp_evades_or_lags(self):
        # A constant-velocity reference tracks a smooth spoof ramp as a
        # legitimate maneuver: CUSUM misses it or fires far late — the
        # fundamental limitation the detection bench contrasts with CRA.
        alarms = stream(CUSUMDetector(), attack_start=150, ramp=60.0)
        assert alarms == [] or alarms[0] > 170

    def test_latency_grows_with_stealth(self):
        step = stream(CUSUMDetector(), attack_start=150, ramp=0.0, seed=1)
        ramp = stream(CUSUMDetector(), attack_start=150, ramp=60.0, seed=1)
        assert step
        assert (not ramp) or ramp[0] > step[0]

    def test_quiet_on_clean_data(self):
        alarms = stream(CUSUMDetector(), attack_start=None)
        assert len(alarms) <= 1

    def test_statistic_property(self):
        detector = CUSUMDetector()
        stream(detector, n=50)
        assert detector.statistic >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CUSUMDetector(drift=-1.0)
        with pytest.raises(ValueError):
            CUSUMDetector(threshold=0.0)


class TestSafetyEnvelopeDetector:
    def test_learns_then_alarms_on_gross_violation(self):
        detector = SafetyEnvelopeDetector(
            training_samples=60, value_bounds=(2.0, 200.0)
        )
        alarms = stream(detector, attack_start=150, offset=150.0)
        assert detector.trained
        assert alarms
        assert alarms[0] == 150

    def test_blind_inside_envelope(self):
        # A +6 m spoof stays within the 100 -> 40 m training range:
        # envelope detection cannot see it (the Tiwari-style limitation).
        detector = SafetyEnvelopeDetector(training_samples=100)
        alarms = stream(detector, attack_start=150, offset=6.0, ramp=30.0)
        assert alarms == []

    def test_rate_bound_catches_jumps(self):
        detector = SafetyEnvelopeDetector(training_samples=60, margin=0.5)
        alarms = stream(detector, attack_start=150, offset=30.0)
        # The value stays physically plausible, but the +30 one-step
        # jump violates the learned rate bound.
        assert alarms
        assert alarms[0] == 150

    def test_quiet_on_clean_data(self):
        detector = SafetyEnvelopeDetector(training_samples=60)
        alarms = stream(detector, attack_start=None)
        assert alarms == []

    def test_bounds_exposed(self):
        detector = SafetyEnvelopeDetector(training_samples=10)
        stream(detector, n=20)
        rate_lo, rate_hi = detector.bounds
        assert rate_lo < rate_hi

    def test_value_bounds_validation(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            SafetyEnvelopeDetector(value_bounds=(10.0, 5.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            SafetyEnvelopeDetector(training_samples=1)
        with pytest.raises(ValueError):
            SafetyEnvelopeDetector(margin=-0.1)
