"""Sensitivity to the paper's trusted-ego-speed assumption.

The paper assumes "the sensor measuring velocity of the follower
vehicle is trusted" (§6).  These tests quantify what a *miscalibrated*
(not attacked) ego-speed sensor does to the dead-reckoning defense:

* a constant bias cancels **exactly** — it enters the leader-velocity
  observations during training (v̂_L = Δv + v_F + b) and subtracts back
  out during forecasting (Δv̂ = v̂_L − (v_F + b));
* a gain error g scales Δv̂ by ≈ g, so the anchor error is bounded by
  (g−1)·|Δd over the attack| — a few meters for a 10 % miscalibration,
  absorbed by the safety margin.
"""

import numpy as np
import pytest

from repro import fig2_scenario, run


def defended(bias=0.0, gain=1.0, seed=2017):
    scenario = fig2_scenario(
        "dos", ego_speed_bias=bias, ego_speed_gain=gain, sensor_seed=seed
    )
    return run(scenario, defended=True)


class TestBiasInvariance:
    def test_constant_bias_cancels(self):
        # Cancellation is exact except at two benign points: the RLS
        # convergence transient (the w0 = 0 prior makes the first few
        # fitted values bias-dependent) and the leader-standstill clamp
        # (max(0, v̂_L) trips at a bias-shifted instant).  Both stay in
        # the centimeter range.
        reference = defended()
        for bias in (0.5, 2.0, -1.0):
            biased = defended(bias=bias)
            assert np.allclose(
                biased.array("safe_distance"),
                reference.array("safe_distance"),
                atol=0.1,
            )
            assert np.allclose(
                biased.array("follower_velocity"),
                reference.array("follower_velocity"),
                atol=0.1,
            )

    def test_detection_unaffected(self):
        assert defended(bias=3.0).detection_times == [182.0]


class TestGainRobustness:
    @pytest.mark.parametrize("gain", [0.9, 0.95, 1.05, 1.1])
    def test_gain_error_stays_safe(self, gain):
        result = defended(gain=gain)
        assert not result.collided
        assert result.detection_times == [182.0]

    def test_gain_error_effect_is_bounded(self):
        reference = defended()
        skewed = defended(gain=1.1)
        # A 10% ego-speed miscalibration changes the achieved gap by at
        # most a few meters over the whole run.
        deviation = np.max(
            np.abs(
                skewed.array("true_distance") - reference.array("true_distance")
            )
        )
        assert deviation < 5.0

    def test_gain_robustness_across_seeds(self):
        for seed in (7, 23):
            result = defended(gain=1.1, seed=seed)
            assert not result.collided
