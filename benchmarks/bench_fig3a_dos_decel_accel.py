"""Figure 3a — DoS attack, leader decelerates (-0.1082) then accelerates
(+0.012 m/s²) at t = 150 s.

Same DoS shape as Figure 2a but with the phase-switching leader; the
bench additionally checks that the leader profile actually switches and
that the defended follower survives the full horizon.
"""

import numpy as np

from conftest import (
    assert_figure_shape,
    emit,
    figure_ascii,
    figure_series_table,
    figure_summary,
    figure_velocity_table,
)


def bench_fig3a(benchmark, figure_data):
    data = benchmark.pedantic(figure_data, args=("fig3a",), rounds=1, iterations=1)

    assert_figure_shape(data, attacked_should_collide=True)

    # Leader phase switch: decelerating before 150 s, accelerating after.
    vL = data.baseline.array("leader_velocity")
    times = data.baseline.times
    assert vL[times == 140.0][0] < vL[times == 100.0][0]
    assert vL[times == 250.0][0] > vL[times == 160.0][0]

    corrupted = data.attacked.array("measured_distance")[times > 182.0]
    assert np.max(corrupted) > 150.0

    emit(
        "fig3a_dos_decel_accel",
        "\n\n".join(
            [
                "Figure 3a: DoS attack, leader decelerates then accelerates "
                "(switch at t = 150 s)",
                figure_ascii(data, "distance series (clipped to 260 m)"),
                "Distance series:\n" + figure_series_table(data),
                "Relative-velocity series:\n" + figure_velocity_table(data),
                "Run summaries:\n" + figure_summary(data),
                f"Detection time: k = {data.detection_time():.0f} s "
                "(paper: 182 s)",
            ]
        ),
    )
