"""FMCW receiver: presence detection, beat extraction, Eqns 7-8 inversion.

The receiving unit of the radar sees the dechirped complex baseband for
the up-sweep and down-sweep segments.  It first decides whether *any*
signal is present (an energy detector against the thermal noise floor —
this is the primitive the CRA check builds on: at a challenge instant an
honest environment is *absent*), then extracts one beat frequency per
segment with root-MUSIC and inverts them to distance and relative
velocity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpectralEstimationError
from repro.radar.cfar import SpectralPresenceDetector
from repro.radar.equations import invert_beat_frequencies
from repro.radar.music import estimate_single_tone, root_music
from repro.radar.params import FMCWParameters
from repro.radar.signal_synth import signal_power

__all__ = [
    "ReceiverOutput",
    "RadarReceiver",
    "TargetDetection",
    "MultiTargetResolver",
]


@dataclass(frozen=True)
class ReceiverOutput:
    """What the receiving unit reports for one sample instant.

    ``present`` is False when the received energy is indistinguishable
    from the thermal floor, in which case every derived quantity is 0.
    """

    present: bool
    power: float
    beat_freq_up: float
    beat_freq_down: float
    distance: float
    relative_velocity: float


class RadarReceiver:
    """Energy detection + root-MUSIC beat extraction + Eqns 7-8.

    Parameters
    ----------
    params:
        Radar parameter set (supplies noise floor, sample rate, and the
        sweep constants for the inversion).
    detection_threshold_factor:
        The energy detector declares a signal present when the measured
        per-sample power exceeds ``factor * noise_floor``.  The factor
        trades missed echoes (too high) against noise-triggered false
        presence (too low); 4x (≈6 dB) keeps both negligible for the
        LRR2 SNR envelope.
    covariance_order:
        Forwarded to :func:`repro.radar.music.root_music`.
    presence:
        ``"energy"`` (fixed threshold against the known thermal floor;
        default) or ``"cfar"`` (cell-averaging CFAR over the beat
        spectrum — adapts to a drifting interference floor; see
        :mod:`repro.radar.cfar`).
    """

    def __init__(
        self,
        params: FMCWParameters,
        detection_threshold_factor: float = 4.0,
        covariance_order: int = 24,
        presence: str = "energy",
    ):
        if detection_threshold_factor <= 1.0:
            raise ValueError(
                "detection_threshold_factor must exceed 1 (the noise floor), "
                f"got {detection_threshold_factor}"
            )
        if presence not in ("energy", "cfar"):
            raise ValueError(
                f"presence must be 'energy' or 'cfar', got {presence!r}"
            )
        self.params = params
        self.detection_threshold_factor = detection_threshold_factor
        self.covariance_order = covariance_order
        self.presence = presence
        # Strict Pfa: with ~2*256 cells examined per instant, 1e-6 keeps
        # the per-instant false-presence rate (which would be a CRA
        # false positive at challenge instants) around 5e-4.
        self._cfar = (
            SpectralPresenceDetector(probability_false_alarm=1e-6)
            if presence == "cfar"
            else None
        )

    @property
    def detection_threshold(self) -> float:
        """Absolute presence threshold in watts."""
        return self.detection_threshold_factor * self.params.noise_floor

    def _extract_frequency(self, segment: np.ndarray) -> float:
        """Beat frequency of one segment, root-MUSIC with FFT fallback."""
        try:
            freqs = root_music(
                segment,
                n_sources=1,
                sample_rate=self.params.sample_rate,
                covariance_order=min(self.covariance_order, len(segment) // 3),
            )
            return float(freqs[0])
        except SpectralEstimationError:
            return estimate_single_tone(segment, self.params.sample_rate)

    def process(self, up_segment: np.ndarray, down_segment: np.ndarray) -> ReceiverOutput:
        """Process one pair of dechirped sweep segments.

        Returns a :class:`ReceiverOutput`; when no energy above the
        presence threshold is found the receiver reports a zero output
        (the behaviour the CRA detector checks at challenge instants).
        """
        up = np.asarray(up_segment, dtype=complex)
        down = np.asarray(down_segment, dtype=complex)
        power = 0.5 * (signal_power(up) + signal_power(down))
        if self._cfar is not None:
            absent = not (
                self._cfar.detect(up).present or self._cfar.detect(down).present
            )
        else:
            absent = power < self.detection_threshold
        if absent:
            return ReceiverOutput(
                present=False,
                power=power,
                beat_freq_up=0.0,
                beat_freq_down=0.0,
                distance=0.0,
                relative_velocity=0.0,
            )
        f_up = self._extract_frequency(up)
        f_down = self._extract_frequency(down)
        distance, relative_velocity = invert_beat_frequencies(self.params, f_up, f_down)
        return ReceiverOutput(
            present=True,
            power=power,
            beat_freq_up=f_up,
            beat_freq_down=f_down,
            distance=distance,
            relative_velocity=relative_velocity,
        )

    def process_multi(
        self,
        up_segment: np.ndarray,
        down_segment: np.ndarray,
        n_targets: int,
    ) -> "list[TargetDetection]":
        """Resolve ``n_targets`` targets from one pair of segments.

        Extracts ``n_targets`` beat frequencies per sweep direction with
        root-MUSIC and resolves the up/down association with
        :class:`MultiTargetResolver` (ghost pairings are implausible and
        score poorly).  Returns targets sorted by distance; an empty
        list when nothing clears the presence threshold.
        """
        if n_targets < 1:
            raise ValueError(f"n_targets must be >= 1, got {n_targets}")
        up = np.asarray(up_segment, dtype=complex)
        down = np.asarray(down_segment, dtype=complex)
        power = 0.5 * (signal_power(up) + signal_power(down))
        if self._cfar is not None:
            absent = not (
                self._cfar.detect(up).present or self._cfar.detect(down).present
            )
        else:
            absent = power < self.detection_threshold
        if absent:
            return []
        ups = root_music(
            up, n_targets, self.params.sample_rate,
            covariance_order=min(self.covariance_order, len(up) // 3),
        )
        downs = root_music(
            down, n_targets, self.params.sample_rate,
            covariance_order=min(self.covariance_order, len(down) // 3),
        )
        return MultiTargetResolver(self.params).pair(ups, downs)


@dataclass(frozen=True)
class TargetDetection:
    """One resolved target of a multi-target scene."""

    distance: float
    relative_velocity: float
    beat_freq_up: float
    beat_freq_down: float


def _pairing_penalty(
    params: FMCWParameters,
    distance: float,
    velocity: float,
    max_speed: float,
) -> float:
    """Implausibility score of one candidate (distance, velocity)."""
    penalty = 0.0
    if distance < params.min_range:
        penalty += (params.min_range - distance) ** 2
    if distance > params.max_range:
        penalty += (distance - params.max_range) ** 2
    if abs(velocity) > max_speed:
        penalty += (abs(velocity) - max_speed) ** 2 * 100.0
    # Prefer modest speeds among plausible pairings (ghosts typically
    # invert to extreme velocities).
    penalty += (velocity / max_speed) ** 2
    return penalty


class MultiTargetResolver:
    """Pair up-sweep and down-sweep beat frequencies for N targets.

    A triangular FMCW waveform measures each target twice — once per
    sweep direction — but the association between up-beats and
    down-beats is not observed.  Wrong associations create *ghost
    targets* whose inverted (distance, velocity) are typically
    physically implausible; the resolver scores every permutation of
    the pairing (N is small) and keeps the most plausible one.

    Parameters
    ----------
    params:
        Radar configuration (range envelope for the plausibility score).
    max_speed:
        Largest plausible |relative velocity|, m/s.
    """

    def __init__(self, params: FMCWParameters, max_speed: float = 70.0):
        if max_speed <= 0.0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        self.params = params
        self.max_speed = float(max_speed)

    def pair(
        self, up_frequencies: np.ndarray, down_frequencies: np.ndarray
    ) -> "list[TargetDetection]":
        """Resolve the best pairing of the two beat-frequency sets."""
        from itertools import permutations

        ups = np.asarray(up_frequencies, dtype=float)
        downs = np.asarray(down_frequencies, dtype=float)
        if ups.size != downs.size:
            raise ValueError(
                f"need equally many up and down beats, got {ups.size} "
                f"and {downs.size}"
            )
        if ups.size == 0:
            return []
        best_score = None
        best: "list[TargetDetection]" = []
        for order in permutations(range(downs.size)):
            candidates = []
            score = 0.0
            for i, j in enumerate(order):
                distance, velocity = invert_beat_frequencies(
                    self.params, float(ups[i]), float(downs[j])
                )
                score += _pairing_penalty(
                    self.params, distance, velocity, self.max_speed
                )
                candidates.append(
                    TargetDetection(
                        distance=distance,
                        relative_velocity=velocity,
                        beat_freq_up=float(ups[i]),
                        beat_freq_down=float(downs[j]),
                    )
                )
            if best_score is None or score < best_score:
                best_score = score
                best = candidates
        return sorted(best, key=lambda t: t.distance)
