#!/usr/bin/env python
"""Tour of the FMCW radar substrate (paper §4.1).

Walks the whole sensing chain for a single target, entirely from the
public API:

* beat-frequency geometry (Eqns 5-8),
* the radar range equation and SNR budget (Eqn 9),
* dechirped baseband synthesis and root-MUSIC extraction,
* the CRA binary modulation and what the receiver hears at a
  challenge instant.
"""

import numpy as np

from repro import (
    BOSCH_LRR2,
    FMCWRadarSensor,
    beat_frequencies,
    invert_beat_frequencies,
    received_power,
    root_music,
)
from repro.analysis import render_table
from repro.radar.link_budget import beat_snr
from repro.radar.signal_synth import synthesize_beat_signal


def show_geometry() -> None:
    rows = []
    for distance, velocity in [(10.0, 0.0), (35.0, -2.0), (100.0, -0.9), (200.0, 5.0)]:
        f_up, f_down = beat_frequencies(BOSCH_LRR2, distance, velocity)
        d, dv = invert_beat_frequencies(BOSCH_LRR2, f_up, f_down)
        rows.append(
            {
                "d_m": distance,
                "dv_mps": velocity,
                "f_beat_up_Hz": round(f_up, 1),
                "f_beat_down_Hz": round(f_down, 1),
                "snr_dB": round(10 * np.log10(beat_snr(BOSCH_LRR2, distance)), 1),
                "roundtrip_d": round(d, 3),
                "roundtrip_dv": round(dv, 3),
            }
        )
    print(render_table(rows, title="Eqns 5-8 beat geometry (Bosch LRR2 waveform)"))
    print()


def show_music_extraction() -> None:
    rng = np.random.default_rng(2017)
    distance, velocity = 80.0, -3.0
    f_up, f_down = beat_frequencies(BOSCH_LRR2, distance, velocity)
    power = received_power(BOSCH_LRR2, distance)
    print(f"Target at {distance} m, {velocity} m/s: echo power {power:.3e} W")
    up = synthesize_beat_signal(
        f_up, power, BOSCH_LRR2.samples_per_segment, BOSCH_LRR2.sample_rate,
        rng=rng, noise_power=BOSCH_LRR2.noise_floor,
    )
    down = synthesize_beat_signal(
        f_down, power, BOSCH_LRR2.samples_per_segment, BOSCH_LRR2.sample_rate,
        rng=rng, noise_power=BOSCH_LRR2.noise_floor,
    )
    est_up = root_music(up, 1, BOSCH_LRR2.sample_rate)[0]
    est_down = root_music(down, 1, BOSCH_LRR2.sample_rate)[0]
    d, dv = invert_beat_frequencies(BOSCH_LRR2, est_up, est_down)
    print(f"root-MUSIC: f_up {est_up:.1f} Hz (true {f_up:.1f}), "
          f"f_down {est_down:.1f} Hz (true {f_down:.1f})")
    print(f"recovered scene: d = {d:.2f} m, dv = {dv:.2f} m/s")
    print()


def show_cra_modulation() -> None:
    sensor = FMCWRadarSensor(fidelity="signal", seed=42)
    normal = sensor.measure(0.0, 80.0, -3.0, transmit=True)
    challenge = sensor.measure(1.0, 80.0, -3.0, transmit=False)
    print("CRA modulation (paper §5.2):")
    print(f"  m(k)=1 (probe sent)      -> d = {normal.distance:7.2f} m")
    print(f"  m(k)=0 (challenge, quiet)-> d = {challenge.distance:7.2f} m "
          f"(receiver hears only the thermal floor)")


def main() -> None:
    show_geometry()
    show_music_extraction()
    show_cra_modulation()


if __name__ == "__main__":
    main()
