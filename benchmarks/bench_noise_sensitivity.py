"""Extension bench — sensor-noise sensitivity of the defense.

Sweeps the radar measurement noise (range and Doppler std together,
scaled from the LRR2-accuracy defaults) on the Figure 2a DoS scenario.
Two effects compound: noisier training data degrades the RLS leader
model, and the uncertainty-aware safety margin grows with the residual
variance — so the defense degrades *gracefully into conservatism*
rather than into collisions.

All (scale, seed, defended/baseline) runs are independent, so the
sweep executes as one batch through :mod:`repro.simulation.batch`.
"""

import numpy as np

from conftest import bench_workers, emit
from repro import fig2_scenario
from repro.analysis import estimation_rmse, render_table
from repro.simulation import RunSpec, run_many

SEEDS = (2017, 7, 23)
BASE_DISTANCE_STD = 0.25
BASE_VELOCITY_STD = 0.12
SCALES = (0.5, 1.0, 2.0, 4.0)


def _specs():
    """One defended + one attack-free baseline run per (scale, seed)."""
    specs = []
    for scale in SCALES:
        for seed in SEEDS:
            scenario = fig2_scenario(
                "dos",
                sensor_seed=seed,
                distance_noise_std=BASE_DISTANCE_STD * scale,
                velocity_noise_std=BASE_VELOCITY_STD * scale,
            )
            specs.append(
                RunSpec(scenario, defended=True, tag=f"{scale}:{seed}:defended")
            )
            specs.append(
                RunSpec(
                    scenario,
                    attack_enabled=False,
                    defended=False,
                    tag=f"{scale}:{seed}:baseline",
                )
            )
    return specs


def _row(scale: float, runs: dict):
    gaps, rmses, collisions, detections = [], [], 0, []
    for seed in SEEDS:
        defended = runs[f"{scale}:{seed}:defended"]
        baseline = runs[f"{scale}:{seed}:baseline"]
        gaps.append(defended.min_gap())
        collisions += int(defended.collided)
        detections.extend(defended.detection_times[:1])
        rmses.append(
            estimation_rmse(
                defended,
                baseline,
                trace="safe_distance",
                reference_trace="true_distance",
                window=(183.0, 300.0),
            )
        )
    return {
        "noise_scale": scale,
        "range_std_m": round(BASE_DISTANCE_STD * scale, 3),
        "doppler_std_mps": round(BASE_VELOCITY_STD * scale, 3),
        "detection_s": detections[0] if detections else None,
        "defended_min_gap_worst_m": round(min(gaps), 2),
        "collisions": f"{collisions}/{len(SEEDS)}",
        "est_rmse_mean_m": round(float(np.mean(rmses)), 2),
    }


def bench_noise_sensitivity(benchmark):
    def sweep():
        specs = _specs()
        results = run_many(specs, workers=bench_workers())
        runs = {spec.tag: result for spec, result in zip(specs, results)}
        return [_row(scale, runs) for scale in SCALES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape claims: detection is noise-independent (the CRA check is on
    # exact zero outputs); the defense stays collision-free up to 4x the
    # spec noise; the estimate error grows with noise.
    assert all(row["detection_s"] == 182.0 for row in rows)
    assert all(row["collisions"] == f"0/{len(SEEDS)}" for row in rows)
    rmses = [row["est_rmse_mean_m"] for row in rows]
    assert rmses[-1] > rmses[0]

    emit(
        "noise_sensitivity",
        render_table(
            rows,
            title="Sensor-noise sensitivity (Figure 2a DoS, 3 seeds; "
            "1.0 = LRR2 accuracy spec)",
        ),
    )
