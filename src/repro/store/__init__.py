"""Content-addressed experiment store (persistent run memoization).

Every run in this library is bit-deterministic in its
:class:`~repro.simulation.batch.RunSpec` (PR 1's contract), which makes
results memoizable across processes and sessions:

* :mod:`repro.store.fingerprint` — canonical-JSON + SHA-256 content
  addresses of runs, salted with a schema version;
* :mod:`repro.store.runstore` — the SQLite (WAL) store holding run
  metadata, headline summaries, and compressed trace payloads, with
  ``get`` / ``put`` / ``stats`` / ``evict`` / ``export`` APIs;
* :mod:`repro.store.sharded` — the same store partitioned across N
  SQLite shards by fingerprint prefix, safe for concurrent
  multi-process writers, with ``merge`` between geometries;
* :mod:`repro.store.cache` — policy resolution for the ``cache=``
  argument threaded through :func:`repro.run`,
  :func:`~repro.simulation.batch.execute_batch`, ``run_monte_carlo``
  and ``build_report``.

Quick use:

>>> import repro
>>> repro.run(repro.fig2_scenario("dos"), mode="figure",
...           cache="readwrite")   # cold: computes + stores  # doctest: +SKIP
>>> repro.run(repro.fig2_scenario("dos"), mode="figure",
...           cache="readwrite")   # warm: served from the store  # doctest: +SKIP

The CLI mirror is ``python -m repro cache {stats,clear,export,path}``
plus ``--cache`` on ``run`` / ``run-custom`` / ``report``.
"""

from repro.store.cache import CACHE_MODES, CacheBinding, resolve_cache
from repro.store.fingerprint import (
    STORE_SCHEMA_VERSION,
    canonical_json,
    fingerprint_payload,
    run_fingerprint,
)
from repro.store.runstore import (
    RunStore,
    ShardStats,
    StoreContentionError,
    StoreStats,
    default_store_path,
)
from repro.store.sharded import (
    DEFAULT_SHARDS,
    ShardedRunStore,
    default_sharded_store_path,
    merge_stores,
    shard_index,
)

__all__ = [
    "CACHE_MODES",
    "CacheBinding",
    "resolve_cache",
    "STORE_SCHEMA_VERSION",
    "canonical_json",
    "fingerprint_payload",
    "run_fingerprint",
    "RunStore",
    "ShardStats",
    "StoreContentionError",
    "StoreStats",
    "default_store_path",
    "DEFAULT_SHARDS",
    "ShardedRunStore",
    "default_sharded_store_path",
    "merge_stores",
    "shard_index",
]
