"""Sharded run store: the content-addressed store past one SQLite file.

A single WAL database serializes its writers — fine for one process
filling a cache, a bottleneck for a sweep fanning 10k runs over a
worker pool.  :class:`ShardedRunStore` partitions the store across N
independent SQLite/WAL shard files by **fingerprint prefix**:

* the shard of a run is ``int(fingerprint[:8], 16) % n_shards``
  (:func:`shard_index`) — a pure function of the content address, so
  every process routes every fingerprint identically with no
  coordination;
* each shard is an ordinary :class:`~repro.store.runstore.RunStore`
  opened lazily, so a batch worker that only ever writes runs landing
  in shard 3 opens exactly one database file — concurrent
  multi-process writers never contend across shards, and within a
  shard the WAL busy-timeout + bounded-retry machinery of
  :class:`RunStore` applies;
* the directory carries a ``shards.json`` manifest pinning the shard
  count and routing layout, so a store can never be reopened with the
  wrong geometry and silently miss its own entries.

The class presents the full :class:`RunStore` interface (``get`` /
``put`` / ``stats`` / ``evict`` / ``export`` / iteration), replays
stored runs bit-identically (payload blobs are routed, never
re-encoded), and adds :meth:`merge_from` — row-level bulk transfer
from any other store, sharded or single-file — with
:func:`merge_stores` as the symmetric module-level helper (it also
merges *into* a single-file store, which is how a sweep's shards are
collapsed for archival).

On-disk layout::

    <dir>/
        shards.json        # {"layout": "fingerprint-prefix-v1", "shards": N}
        shard-0000.sqlite
        shard-0001.sqlite
        ...

The default location is ``$REPRO_CACHE_DIR/runstore-shards`` when that
variable is set (next to the single-file default), else
``$XDG_CACHE_HOME/repro/runstore-shards``, else
``~/.cache/repro/runstore-shards``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro import telemetry as _telemetry
from repro.exceptions import ConfigurationError
from repro.simulation.results import SimulationResult
from repro.store.runstore import (
    RunStore,
    ShardStats,
    StoreStats,
    default_store_path,
)

__all__ = [
    "ShardedRunStore",
    "merge_stores",
    "shard_index",
    "default_sharded_store_path",
    "SHARD_LAYOUT",
    "MANIFEST_NAME",
    "DEFAULT_SHARDS",
    "MAX_SHARDS",
]

PathLike = Union[str, Path]

#: Routing-layout identifier written to the manifest.  Bump if the
#: fingerprint→shard function ever changes; a mismatched layout is
#: refused instead of silently routing reads to the wrong shard.
SHARD_LAYOUT = "fingerprint-prefix-v1"

#: Manifest file pinning the store geometry inside the shard directory.
MANIFEST_NAME = "shards.json"

#: Shard count used when creating a store without an explicit count.
DEFAULT_SHARDS = 8

#: Upper bound on the shard count — far past any useful fan-out, it
#: only guards against typos creating 10^6 database files.
MAX_SHARDS = 4096


def default_sharded_store_path() -> Path:
    """Default on-disk directory of the sharded store.

    Lives next to :func:`~repro.store.runstore.default_store_path`
    (``runstore.sqlite`` → ``runstore-shards/``), honoring the same
    ``REPRO_CACHE_DIR`` / ``XDG_CACHE_HOME`` overrides.
    """
    return default_store_path().parent / "runstore-shards"


def shard_index(fingerprint: str, n_shards: int) -> int:
    """Route a fingerprint to its shard: ``int(fp[:8], 16) % n_shards``.

    The fingerprint is a SHA-256 hex digest, so its leading 32 bits are
    uniformly distributed and the modulo spreads entries evenly across
    any shard count.  Deterministic and coordination-free: every
    process, on every host, routes identically.
    """
    return int(fingerprint[:8], 16) % n_shards


def _shard_filename(index: int) -> str:
    return f"shard-{index:04d}.sqlite"


def _validate_shards(shards: int) -> int:
    if not isinstance(shards, int) or isinstance(shards, bool):
        raise ConfigurationError(
            f"shards must be an integer >= 1, got {shards!r} "
            f"({type(shards).__name__})"
        )
    if not 1 <= shards <= MAX_SHARDS:
        raise ConfigurationError(
            f"shards must be between 1 and {MAX_SHARDS}, got {shards}"
        )
    return shards


class ShardedRunStore:
    """Content-addressed run store partitioned across N SQLite shards.

    Drop-in for :class:`~repro.store.runstore.RunStore` everywhere a
    ``cache=`` argument is accepted (``repro.run()``,
    ``execute_batch``, the CLI's ``--store-shards``, the service's
    ``--store-shards``); replays are bit-identical because routing
    never touches payloads.

    ``shards`` may be omitted when opening an existing store (the
    manifest pins the geometry); when both are present they must
    agree.  Shard connections open lazily — a reader or writer that
    touches one shard opens one file.
    """

    #: Batch workers may write their own shards directly: distinct
    #: shards never contend, and same-shard writers are serialized by
    #: the WAL busy-timeout + bounded retry in :class:`RunStore`.
    concurrent_writers = True

    def __init__(
        self,
        path: Optional[PathLike] = None,
        *,
        shards: Optional[int] = None,
    ) -> None:
        self._path = (
            Path(path) if path is not None else default_sharded_store_path()
        )
        manifest = self._read_manifest()
        if manifest is not None:
            if shards is not None and shards != manifest:
                raise ConfigurationError(
                    f"store at {self._path} is laid out as {manifest} shards; "
                    f"cannot reopen it with shards={shards} (merge into a "
                    f"fresh store to change the geometry)"
                )
            self._shards = manifest
        else:
            self._shards = _validate_shards(
                shards if shards is not None else DEFAULT_SHARDS
            )
        self._stores: Dict[int, RunStore] = {}

    # -- geometry ------------------------------------------------------

    @property
    def path(self) -> Path:
        """The shard directory."""
        return self._path

    @property
    def shards(self) -> int:
        """Number of shards the store is partitioned into."""
        return self._shards

    def _manifest_path(self) -> Path:
        return self._path / MANIFEST_NAME

    def _read_manifest(self) -> Optional[int]:
        manifest_path = self._manifest_path()
        try:
            text = manifest_path.read_text()
        except (FileNotFoundError, NotADirectoryError):
            text = None
        if text is None:
            if self._path.exists() and any(
                p.name.startswith("shard-") for p in self._path.iterdir()
            ):
                # prepare() always lands the manifest *before* any shard
                # file is written, so seeing shard files here means a
                # concurrent writer's manifest arrived between our two
                # checks — re-read before refusing the directory.
                try:
                    text = manifest_path.read_text()
                except (FileNotFoundError, NotADirectoryError):
                    raise ConfigurationError(
                        f"{self._path} contains shard files but no "
                        f"{MANIFEST_NAME} manifest; refusing to guess the "
                        f"geometry"
                    ) from None
            else:
                return None
        try:
            manifest = json.loads(text)
            layout = manifest["layout"]
            count = manifest["shards"]
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"unreadable shard manifest {manifest_path}: {exc}"
            ) from exc
        if layout != SHARD_LAYOUT:
            raise ConfigurationError(
                f"store at {self._path} uses unknown shard layout "
                f"{layout!r} (this build understands {SHARD_LAYOUT!r})"
            )
        return _validate_shards(count)

    def prepare(self) -> "ShardedRunStore":
        """Create the directory and manifest (idempotent, race-safe).

        Writers call this before fanning out so every worker process
        finds a pinned geometry; an atomic rename makes concurrent
        creation by several processes converge on one manifest.
        """
        manifest_path = self._manifest_path()
        if manifest_path.exists():
            return self
        self._path.mkdir(parents=True, exist_ok=True)
        tmp = manifest_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(
                {"layout": SHARD_LAYOUT, "shards": self._shards}, indent=2
            )
            + "\n"
        )
        try:
            os.replace(tmp, manifest_path)
        finally:
            if tmp.exists():  # pragma: no cover - lost the rename race
                tmp.unlink()
        return self

    def shard_for(self, fingerprint: str) -> RunStore:
        """The (lazily opened) :class:`RunStore` owning a fingerprint."""
        index = shard_index(fingerprint, self._shards)
        _telemetry.incr("store.shard_routes")
        return self._shard(index)

    def _shard(self, index: int) -> RunStore:
        store = self._stores.get(index)
        if store is None:
            store = RunStore(self._path / _shard_filename(index))
            self._stores[index] = store
        return store

    def _shard_paths(self) -> List[Tuple[int, Path]]:
        return [
            (index, self._path / _shard_filename(index))
            for index in range(self._shards)
        ]

    def _existing_shards(self) -> Iterator[Tuple[int, RunStore]]:
        """Open only the shards whose files exist (reads create none)."""
        for index, path in self._shard_paths():
            if path.exists():
                yield index, self._shard(index)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release every open shard connection."""
        for store in self._stores.values():
            store.close()

    def __enter__(self) -> "ShardedRunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- core API (mirrors RunStore) -----------------------------------

    def put(
        self,
        fingerprint: str,
        result: SimulationResult,
        **metadata,
    ) -> bool:
        """Insert one run into its shard (immutable, like the base put)."""
        self.prepare()
        return self.shard_for(fingerprint).put(fingerprint, result, **metadata)

    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        """Fetch a run from its shard (``None`` on miss)."""
        return self.shard_for(fingerprint).get(fingerprint)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.shard_for(fingerprint)

    def __len__(self) -> int:
        return sum(len(store) for _, store in self._existing_shards())

    def fingerprints(self) -> List[str]:
        """All stored fingerprints across every shard, sorted."""
        merged: List[str] = []
        for _, store in self._existing_shards():
            merged.extend(store.fingerprints())
        return sorted(merged)

    def iter_rows(self) -> Iterator[dict]:
        """Every raw row across every shard, in fingerprint order
        within each shard (shard-major order overall)."""
        for _, store in self._existing_shards():
            for row in store.iter_rows():
                yield row

    def put_row(self, row: dict) -> bool:
        """Insert one raw row into its shard (merge substrate)."""
        self.prepare()
        return self.shard_for(row["fingerprint"]).put_row(row)

    # -- maintenance ---------------------------------------------------

    def stats(self) -> StoreStats:
        """Aggregate counts plus the per-shard breakdown."""
        entries = 0
        payload_bytes = 0
        db_bytes = 0
        by_scenario: Dict[str, int] = {}
        shard_stats: List[ShardStats] = []
        for index, path in self._shard_paths():
            if not path.exists():
                shard_stats.append(
                    ShardStats(
                        shard=_shard_filename(index),
                        entries=0,
                        payload_bytes=0,
                        db_bytes=0,
                    )
                )
                continue
            stats = self._shard(index).stats()
            entries += stats.entries
            payload_bytes += stats.payload_bytes
            db_bytes += stats.db_bytes
            for name, count in stats.by_scenario:
                by_scenario[name] = by_scenario.get(name, 0) + count
            shard_stats.append(
                ShardStats(
                    shard=_shard_filename(index),
                    entries=stats.entries,
                    payload_bytes=stats.payload_bytes,
                    db_bytes=stats.db_bytes,
                )
            )
        return StoreStats(
            path=str(self._path),
            entries=entries,
            payload_bytes=payload_bytes,
            db_bytes=db_bytes,
            by_scenario=tuple(sorted(by_scenario.items())),
            shards=tuple(shard_stats),
        )

    def scenario_counts(self) -> Dict[str, int]:
        """Stored-run count per scenario name, across all shards."""
        return dict(self.stats().by_scenario)

    def evict(
        self,
        fingerprints: Optional[Iterable[str]] = None,
        *,
        before: Optional[float] = None,
    ) -> int:
        """Delete selected entries; returns the number removed.

        With explicit ``fingerprints``, each key is routed to its own
        shard; the ``before`` filter (and no-filter eviction) touch
        every existing shard.
        """
        if fingerprints is not None:
            keys = list(fingerprints)
            if not keys:
                return 0
            removed = 0
            per_shard: Dict[int, List[str]] = {}
            for key in keys:
                per_shard.setdefault(
                    shard_index(key, self._shards), []
                ).append(key)
            for index, shard_keys in sorted(per_shard.items()):
                if (self._path / _shard_filename(index)).exists():
                    removed += self._shard(index).evict(
                        shard_keys, before=before
                    )
            return removed
        return sum(
            store.evict(before=before)
            for _, store in self._existing_shards()
        )

    def clear(self) -> int:
        """Evict every entry in every shard and compact the files."""
        return sum(store.clear() for _, store in self._existing_shards())

    def export(self, path: PathLike) -> Path:
        """Write the merged metadata inventory (no payloads) as JSON.

        Same document shape as :meth:`RunStore.export` plus the shard
        geometry, with all entries merged and sorted by fingerprint.
        """
        entries: List[dict] = []
        for _, store in self._existing_shards():
            entries.extend(_export_entry(row) for row in store.iter_rows())
        entries.sort(key=lambda entry: entry["fingerprint"])
        out = Path(path)
        out.write_text(
            json.dumps(
                {
                    "store": str(self._path),
                    "layout": SHARD_LAYOUT,
                    "shards": self._shards,
                    "entries": entries,
                },
                indent=2,
            )
        )
        return out

    # -- merge ---------------------------------------------------------

    def merge_from(self, source: "StoreLike") -> int:
        """Copy every run of ``source`` into this store's shards.

        Row-level and payload-preserving (no decode/encode), immutable
        on conflict — a fingerprint already present keeps its original
        row.  Returns the number of rows actually written.
        """
        return merge_stores(source, self)


#: Anything quacking like a run store: ``RunStore``, ``ShardedRunStore``.
StoreLike = Union[RunStore, ShardedRunStore]


def _export_entry(row: dict) -> dict:
    """One raw row rendered in the export-inventory shape."""
    return {
        "fingerprint": row["fingerprint"],
        "schema_version": row["schema_version"],
        "name": row["name"],
        "attack_enabled": bool(row["attack_enabled"]),
        "defended": bool(row["defended"]),
        "sensor_seed": row["sensor_seed"],
        "horizon": row["horizon"],
        "spec": json.loads(row["spec_json"]),
        "summary": json.loads(row["summary_json"]),
        "payload_bytes": row["payload_bytes"],
        "created_at": row["created_at"],
    }


def merge_stores(source: StoreLike, dest: StoreLike) -> int:
    """Copy every run of ``source`` into ``dest``; returns rows written.

    Works across geometries — sharded → single-file collapses a
    sweep's shards into one archive, single-file → sharded re-shards a
    legacy store, sharded → sharded re-routes between shard counts.
    Transfers raw rows (payload blobs untouched), so a merged entry
    replays bit-identically to its origin; fingerprints already in
    ``dest`` are skipped (immutable-insert semantics).
    """
    written = 0
    with _telemetry.span(
        "store.merge",
        source=str(getattr(source, "path", source)),
        dest=str(getattr(dest, "path", dest)),
    ) as span:
        for row in source.iter_rows():
            if dest.put_row(row):
                written += 1
            _telemetry.incr("store.merge_rows")
        span.set(written=written)
    _telemetry.incr("store.merges")
    return written
