"""Ablation — challenge rate vs detection latency.

CRA can only detect at challenge instants, so the structural bound on
detection latency is the gap from attack onset to the next challenge.
This bench sweeps PRBS challenge rates, measures the realized latency
on the Figure 2a scenario (averaged over LFSR seeds), and confirms the
latency tracks the structural bound while false positives stay at zero
regardless of rate — the trade is latency vs probe duty-cycle, not
latency vs accuracy.
"""

import numpy as np

from conftest import emit
from repro import ChallengeSchedule, fig2_scenario, run
from repro.analysis import detection_confusion, detection_latency, render_table


SEEDS = (0xACE1, 0xBEEF, 0x1234)


def _evaluate(rate: float):
    latencies, bounds, fps, fns = [], [], [], []
    for seed in SEEDS:
        schedule = ChallengeSchedule.random(
            horizon=300.0, rate=rate, seed=seed, min_gap=2.0, exclude_start=10.0
        )
        scenario = fig2_scenario("dos", challenge_times=tuple(schedule.times))
        result = run(scenario, defended=True)
        attack = scenario.attack
        latency = detection_latency(result, attack)
        next_challenge = schedule.next_challenge_at_or_after(attack.window.start)
        confusion = detection_confusion(result.detection_events, attack)
        fps.append(confusion.false_positives)
        fns.append(confusion.false_negatives)
        if latency is not None and next_challenge is not None:
            latencies.append(latency)
            bounds.append(next_challenge - attack.window.start)
    return {
        "rate": rate,
        "challenges": len(
            ChallengeSchedule.random(
                horizon=300.0, rate=rate, seed=SEEDS[0], min_gap=2.0,
                exclude_start=10.0,
            )
        ),
        "mean_latency_s": round(float(np.mean(latencies)), 2) if latencies else None,
        "mean_bound_s": round(float(np.mean(bounds)), 2) if bounds else None,
        "detected": f"{len(latencies)}/{len(SEEDS)}",
        "false_positives": sum(fps),
        "false_negatives": sum(fns),
    }


def bench_ablation_challenge_rate(benchmark):
    def sweep():
        return [_evaluate(rate) for rate in (0.02, 0.05, 0.10, 0.20)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape claims: latency shrinks as the rate grows; zero FP/FN at
    # every rate; latency equals the structural bound when detected.
    detected_rows = [r for r in rows if r["mean_latency_s"] is not None]
    assert len(detected_rows) >= 3
    latencies = [r["mean_latency_s"] for r in detected_rows]
    assert latencies[-1] <= latencies[0]
    assert all(r["false_positives"] == 0 for r in rows)
    for row in detected_rows:
        assert row["mean_latency_s"] == row["mean_bound_s"]

    emit(
        "ablation_challenge_rate",
        render_table(
            rows,
            title="Challenge-rate ablation (PRBS schedules, 3 LFSR seeds, "
            "Figure 2a DoS): latency = time to next challenge, FP/FN stay 0",
        ),
    )
