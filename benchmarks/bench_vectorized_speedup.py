"""Extension bench — throughput of the vectorized batch engine.

Times the same 64-run homogeneous Monte-Carlo sweep (Figure 2a DoS,
defended, 64 derived sensor seeds) on the serial scalar engine and on
``backend="vectorized"``, asserting both halves of the engine's
contract: the vectorized payloads are *bit-identical* to scalar
(``==`` on every serialized trace, no tolerance), and the lock-step
loop completes the sweep >= 10x faster.

Unlike the process-pool bench this floor holds on a single core — the
win comes from replacing 64 python step loops with one numpy pass per
step, not from parallel hardware.
"""

import time

from conftest import emit
from repro import fig2_scenario
from repro.analysis import render_table
from repro.simulation import RunSpec, derive_seeds, execute_batch
from repro.simulation.io import result_to_dict

N_RUNS = 64
SPEEDUP_FLOOR = 10.0


def _sweep_specs():
    scenario = fig2_scenario("dos")
    return [
        RunSpec(scenario.with_overrides(sensor_seed=seed), tag=str(i))
        for i, seed in enumerate(derive_seeds(scenario.sensor_seed, N_RUNS))
    ]


def bench_vectorized_speedup(benchmark):
    def timed(backend, repeats):
        # Best-of-N wall time: a single sample of either backend is
        # noisy enough on a loaded container to wobble across the
        # asserted floor.
        best = float("inf")
        for _ in range(repeats):
            specs = _sweep_specs()
            start = time.perf_counter()
            batch = execute_batch(specs, backend=backend)
            best = min(best, time.perf_counter() - start)
            batch.raise_on_error()
        return batch, best

    def sweep():
        scalar, t_scalar = timed("scalar", repeats=2)
        vector, t_vector = timed("vectorized", repeats=3)
        return scalar, vector, t_scalar, t_vector

    scalar, vector, t_scalar, t_vector = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    # Bit-identical reproduction — the contract that makes the backend
    # a pure performance knob.
    assert [result_to_dict(r.payload) for r in scalar.records] == [
        result_to_dict(r.payload) for r in vector.records
    ]
    assert all(r.backend_used == "vectorized" for r in vector.records)

    speedup = t_scalar / t_vector if t_vector > 0 else float("inf")
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR}x speedup from the vectorized engine "
        f"on a {N_RUNS}-run homogeneous sweep, measured {speedup:.2f}x"
    )

    emit(
        "vectorized_speedup",
        render_table(
            [
                {
                    "configuration": f"backend={b}",
                    "runs": N_RUNS,
                    "wall_s": round(t, 3),
                    "runs_per_s": round(N_RUNS / t, 1) if t > 0 else None,
                }
                for b, t in (("scalar", t_scalar), ("vectorized", t_vector))
            ]
            + [
                {
                    "configuration": "speedup",
                    "runs": N_RUNS,
                    "wall_s": None,
                    "runs_per_s": round(speedup, 2),
                }
            ],
            title=f"Vectorized engine: {N_RUNS}-run Monte-Carlo sweep, "
            "scalar vs lock-step (bit-identical payloads asserted)",
        ),
    )
