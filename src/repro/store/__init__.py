"""Content-addressed experiment store (persistent run memoization).

Every run in this library is bit-deterministic in its
:class:`~repro.simulation.batch.RunSpec` (PR 1's contract), which makes
results memoizable across processes and sessions:

* :mod:`repro.store.fingerprint` — canonical-JSON + SHA-256 content
  addresses of runs, salted with a schema version;
* :mod:`repro.store.runstore` — the SQLite (WAL) store holding run
  metadata, headline summaries, and compressed trace payloads, with
  ``get`` / ``put`` / ``stats`` / ``evict`` / ``export`` APIs;
* :mod:`repro.store.cache` — policy resolution for the ``cache=``
  argument threaded through :func:`repro.run`,
  :func:`~repro.simulation.batch.execute_batch`, ``run_monte_carlo``
  and ``build_report``.

Quick use:

>>> import repro
>>> repro.run(repro.fig2_scenario("dos"), mode="figure",
...           cache="readwrite")   # cold: computes + stores  # doctest: +SKIP
>>> repro.run(repro.fig2_scenario("dos"), mode="figure",
...           cache="readwrite")   # warm: served from the store  # doctest: +SKIP

The CLI mirror is ``python -m repro cache {stats,clear,export,path}``
plus ``--cache`` on ``run`` / ``run-custom`` / ``report``.
"""

from repro.store.cache import CACHE_MODES, CacheBinding, resolve_cache
from repro.store.fingerprint import (
    STORE_SCHEMA_VERSION,
    canonical_json,
    fingerprint_payload,
    run_fingerprint,
)
from repro.store.runstore import RunStore, StoreStats, default_store_path

__all__ = [
    "CACHE_MODES",
    "CacheBinding",
    "resolve_cache",
    "STORE_SCHEMA_VERSION",
    "canonical_json",
    "fingerprint_payload",
    "run_fingerprint",
    "RunStore",
    "StoreStats",
    "default_store_path",
]
