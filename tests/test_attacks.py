"""Attack models (repro.attacks)."""

import math

import pytest

from repro.attacks import (
    AttackSchedule,
    AttackWindow,
    DelayInjectionAttack,
    DoSJammingAttack,
    NoAttack,
)
from repro.radar import FMCWParameters, JammerParameters
from repro.radar.link_budget import jammer_received_power
from repro.types import AttackLabel


class TestAttackWindow:
    def test_contains(self):
        w = AttackWindow(start=182.0, end=300.0)
        assert not w.contains(181.9)
        assert w.contains(182.0)
        assert w.contains(250.0)
        assert w.contains(300.0)
        assert not w.contains(300.1)

    def test_open_ended(self):
        w = AttackWindow(start=10.0)
        assert w.contains(1e9)
        assert w.duration == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackWindow(start=-1.0)
        with pytest.raises(ValueError):
            AttackWindow(start=10.0, end=5.0)


class TestDoSJammingAttack:
    def make(self):
        return DoSJammingAttack(AttackWindow(182.0, 300.0))

    def test_label(self):
        assert self.make().label is AttackLabel.DOS

    def test_dormant_outside_window(self):
        attack = self.make()
        assert attack.effect_at(100.0, 50.0) is None
        assert not attack.is_active(100.0)

    def test_active_effect_is_jamming(self):
        attack = self.make()
        effect = attack.effect_at(200.0, 50.0)
        assert effect is not None
        assert effect.is_jamming
        assert not effect.is_spoofing

    def test_power_follows_link_budget(self):
        attack = self.make()
        params = FMCWParameters()
        effect = attack.effect_at(200.0, 80.0)
        expected = jammer_received_power(params, JammerParameters(), 80.0)
        assert effect.jammer_noise_power == pytest.approx(expected)

    def test_power_grows_as_gap_closes(self):
        attack = self.make()
        near = attack.effect_at(200.0, 20.0).jammer_noise_power
        far = attack.effect_at(200.0, 120.0).jammer_noise_power
        assert near > far

    def test_minimum_distance_floor(self):
        attack = DoSJammingAttack(AttackWindow(0.0), minimum_distance=5.0)
        at_zero = attack.effect_at(1.0, 0.01).jammer_noise_power
        at_floor = attack.effect_at(1.0, 5.0).jammer_noise_power
        assert at_zero == pytest.approx(at_floor)

    def test_validation(self):
        with pytest.raises(ValueError):
            DoSJammingAttack(AttackWindow(0.0), minimum_distance=0.0)


class TestDelayInjectionAttack:
    def make(self, offset=6.0):
        return DelayInjectionAttack(AttackWindow(180.0, 300.0), distance_offset=offset)

    def test_label(self):
        assert self.make().label is AttackLabel.DELAY

    def test_effect_spoofs_paper_offset(self):
        effect = self.make().effect_at(200.0, 50.0)
        assert effect.spoof_distance_offset == 6.0
        assert effect.replace_echo
        assert effect.is_spoofing

    def test_injected_delay(self):
        # 6 m spoof = 40 ns of delay.
        assert self.make().injected_delay == pytest.approx(4.003e-8, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(offset=-1.0)
        with pytest.raises(ValueError):
            DelayInjectionAttack(AttackWindow(0.0), counterfeit_power_gain=0.5)


class TestNoAttack:
    def test_never_active(self):
        attack = NoAttack()
        assert attack.label is AttackLabel.NONE
        assert attack.effect_at(0.0, 10.0) is None
        assert not attack.is_active(0.0)


class TestAttackSchedule:
    def test_empty(self):
        schedule = AttackSchedule()
        assert schedule.effect_at(0.0, 50.0) is None
        assert not schedule.is_active(0.0)
        assert schedule.earliest_onset() is None

    def test_single_attack_passthrough(self):
        attack = DelayInjectionAttack(AttackWindow(10.0, 20.0))
        schedule = AttackSchedule([attack])
        assert schedule.effect_at(15.0, 50.0) == attack.effect_at(15.0, 50.0)
        assert schedule.earliest_onset() == 10.0

    def test_disjoint_attacks(self):
        schedule = AttackSchedule(
            [
                DoSJammingAttack(AttackWindow(10.0, 20.0)),
                DelayInjectionAttack(AttackWindow(30.0, 40.0)),
            ]
        )
        assert schedule.effect_at(15.0, 50.0).is_jamming
        assert schedule.effect_at(35.0, 50.0).is_spoofing
        assert schedule.effect_at(25.0, 50.0) is None
        assert schedule.active_labels(15.0) == [AttackLabel.DOS]

    def test_overlapping_attacks_compose(self):
        schedule = AttackSchedule(
            [
                DoSJammingAttack(AttackWindow(10.0, 40.0)),
                DoSJammingAttack(AttackWindow(30.0, 50.0)),
                DelayInjectionAttack(AttackWindow(35.0, 60.0)),
            ]
        )
        effect = schedule.effect_at(36.0, 50.0)
        single = DoSJammingAttack(AttackWindow(0.0)).effect_at(1.0, 50.0)
        # Jamming powers add; the spoof rides on top.
        assert effect.jammer_noise_power == pytest.approx(
            2.0 * single.jammer_noise_power
        )
        assert effect.is_spoofing

    def test_add_chains(self):
        schedule = AttackSchedule().add(NoAttack()).add(NoAttack())
        assert len(schedule.attacks) == 2
