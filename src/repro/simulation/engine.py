"""The closed-loop car-following step loop (paper Figure 1).

Each discrete step ``k``:

1. compute the true scene geometry (gap, relative velocity);
2. apply the CRA modulation decision ``m(k)`` (the radar always carries
   the modified modulator — the challenge "spikes to zero" appear in
   every run, exactly as in the paper's figures);
3. resolve the active attack's injection and produce the raw radar
   measurement;
4. feed the measurement to the defense pipeline (when defended) or to a
   simple coasting tracker (when not) to obtain what the controller
   sees;
5. run the ACC hierarchy and advance both vehicles' kinematics.

A collision (gap reaching zero) is recorded at its first occurrence;
the run continues with the radar geometry floored at a small positive
gap so that full-horizon traces remain comparable across runs (the
paper's plots likewise continue past the unsafe approach; see
DESIGN.md §7).

With an active :mod:`repro.telemetry` session the loop accumulates
per-stage wall-clock (``engine.sense`` / ``engine.estimate`` /
``engine.control``, one span per stage per run); with telemetry off
the instrumentation reduces to local ``None`` checks.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Tuple

from repro import telemetry as _telemetry
from repro.attacks.base import Attack
from repro.core.adaptive_cra import AdaptiveChallengePolicy
from repro.core.cra import ChallengeSchedule
from repro.core.detector import CRADetector
from repro.core.dead_reckoning import DeadReckoningEstimator
from repro.core.pipeline import SafeMeasurementPipeline
from repro.core.predictor import (
    ChannelPredictor,
    MeasurementEstimator,
    RadarChannelEstimator,
)
from repro.defense.estimator import SecureReconstructionEstimator
from repro.defense.safety_filter import SafetyFilter
from repro.radar.sensor import FMCWRadarSensor
from repro.radar.tracker import AlphaBetaTracker
from repro.simulation.results import SimulationResult
from repro.simulation.scenario import Scenario
from repro.types import RadarMeasurement
from repro.vehicle.acc import ACCSystem
from repro.vehicle.idm import IDMFollowerController
from repro.vehicle.kinematics import advance_state
from repro.vehicle.state import VehicleState
from repro.vehicle.upper_controller import ControlMode

__all__ = ["CarFollowingSimulation", "build_defense_pipeline"]

#: Floor applied to the radar-visible gap after a collision so that the
#: sensing chain stays defined for the remainder of the run.
_POST_COLLISION_GAP_FLOOR = 0.5


def build_defense_pipeline(
    scenario: Scenario, schedule=None
) -> SafeMeasurementPipeline:
    """Construct the CRA + RLS pipeline a scenario's defense describes.

    ``schedule`` overrides the scenario's static schedule — used to
    share an :class:`AdaptiveChallengePolicy` between the radar
    modulator and the detector.
    """
    defense = scenario.defense
    detector = CRADetector(
        schedule=schedule if schedule is not None else scenario.schedule(),
        zero_tolerance=defense.zero_tolerance,
    )

    def make_channel() -> ChannelPredictor:
        return ChannelPredictor(
            basis=defense.make_basis(),
            forgetting=defense.forgetting,
            delta=defense.delta,
            time_scale=defense.time_scale,
            sample_period=scenario.sample_period,
            min_training_samples=defense.min_training_samples,
            adaptive_forgetting=defense.adaptive_forgetting,
            min_forgetting=defense.min_forgetting,
        )

    estimator: MeasurementEstimator
    if defense.uses_secure_reconstruction:
        estimator = SecureReconstructionEstimator(
            sample_period=scenario.sample_period,
            window=defense.secure_window,
            sparsity=defense.secure_sparsity,
            residual_threshold=defense.secure_residual_threshold,
            margin_gain=defense.margin_gain,
        )
    elif defense.estimator_kind == "dead_reckoning":
        estimator = DeadReckoningEstimator(
            leader_velocity_predictor=make_channel(),
            sample_period=scenario.sample_period,
            margin_gain=defense.margin_gain,
        )
    else:
        estimator = RadarChannelEstimator(
            distance_predictor=make_channel(),
            velocity_predictor=make_channel(),
        )
    return SafeMeasurementPipeline(
        detector=detector,
        estimator=estimator,
        rollback_on_detection=defense.rollback_on_detection,
    )


class CarFollowingSimulation:
    """One configured closed-loop run.

    Parameters
    ----------
    scenario:
        The experiment description.
    attack_enabled:
        When False the scenario's attack is ignored (baseline run).
    defended:
        When True the Algorithm 2 pipeline is inserted between radar and
        controller; when False the controller consumes raw measurements
        through a coasting tracker (hold-last on zero outputs).
    name:
        Label for the result; derived from the configuration if omitted.
    """

    def __init__(
        self,
        scenario: Scenario,
        attack_enabled: bool = True,
        defended: bool = True,
        name: Optional[str] = None,
    ):
        self.scenario = scenario
        self.attack: Optional[Attack] = scenario.attack if attack_enabled else None
        self.defended = defended
        # Adaptive challenge policy (optional): modulator and detector
        # must share the same decision record.
        self.challenge_policy = (
            AdaptiveChallengePolicy(
                scenario.schedule(), scenario.adaptive_challenge_period
            )
            if defended and scenario.adaptive_challenge_period is not None
            else None
        )
        self.pipeline = (
            build_defense_pipeline(scenario, schedule=self.challenge_policy)
            if defended
            else None
        )
        # Actuation-layer defense (strategy "safety_filter"/"combined"):
        # clamps the commanded acceleration to the certified-gap CBF
        # bound, independent of whether detection ever fires.
        self.safety_filter = (
            SafetyFilter(
                sample_period=scenario.sample_period,
                headway=scenario.defense.filter_headway,
                minimum_gap=scenario.defense.filter_minimum_gap,
                gamma=scenario.defense.filter_gamma,
                leader_accel_bound=scenario.defense.filter_leader_accel_bound,
                min_acceleration=scenario.acc_params.min_acceleration,
            )
            if defended and scenario.defense.uses_safety_filter
            else None
        )
        # The undefended stack is a conventional radar tracker that
        # coasts through empty returns (challenge instants look like
        # ordinary missed detections to it).
        self.tracker = (
            None
            if defended
            else AlphaBetaTracker(sample_period=scenario.sample_period)
        )
        if name is None:
            mode = "defended" if defended else "undefended"
            attack_tag = self.attack.label.value if self.attack else "clean"
            name = f"{scenario.name}/{attack_tag}/{mode}"
        self.name = name

    # ------------------------------------------------------------------

    def _controller_view(
        self,
        measurement: RadarMeasurement,
        follower_speed: float,
    ) -> Tuple[Optional[Tuple[float, float]], bool, bool]:
        """Resolve what the ACC sees for this sample.

        Returns ``(view, estimated, attack_active)``.
        """
        if self.pipeline is not None:
            safe = self.pipeline.process(measurement, follower_speed=follower_speed)
            return (
                (safe.distance, safe.relative_velocity),
                safe.estimated,
                safe.attack_active,
            )
        # Undefended: the alpha-beta tracker smooths detections and
        # coasts through empty returns (a challenge instant looks like
        # an ordinary missed detection to it).
        coasting = measurement.is_zero_output(1e-9)
        detection = (
            None
            if coasting
            else (measurement.distance, measurement.relative_velocity)
        )
        track = self.tracker.update(detection)
        return track, coasting and track is not None, False

    def _make_accel_filter(
        self, view: Tuple[float, float], sensed_ego_speed: float
    ):
        """Bind this step's view into the safety filter's clamp.

        The filter certifies whatever the controller is about to act on
        (the defense-visible quantities, including the ego-speed bias
        stress knob), so its guarantee does not depend on the pipeline
        having substituted anything.
        """
        safety_filter = self.safety_filter
        gap, relative_velocity = view

        def accel_filter(desired: float) -> float:
            return safety_filter.clamp(
                desired, sensed_ego_speed, gap, relative_velocity
            )

        return accel_filter

    def run(self) -> SimulationResult:
        """Execute the full run and return its traces."""
        scenario = self.scenario
        schedule: ChallengeSchedule = scenario.schedule()
        sensor = FMCWRadarSensor(
            params=scenario.radar_params,
            fidelity=scenario.fidelity,
            seed=scenario.sensor_seed,
            **scenario.sensor_noise_overrides(),
        )
        if scenario.follower_policy == "idm":
            acc = IDMFollowerController(
                params=scenario.idm_params, acc_params=scenario.acc_params
            )
        else:
            acc = ACCSystem(scenario.acc_params)
        leader = VehicleState(
            position=scenario.initial_distance,
            velocity=scenario.leader_initial_speed,
        )
        follower = VehicleState(position=0.0, velocity=scenario.follower_initial_speed)

        result = SimulationResult.empty(
            self.name,
            attack_name=self.attack.label.value if self.attack else "none",
            defended=self.defended,
        )
        # Per-stage timing is gated on an active telemetry session: when
        # `tele` is None the loop pays one local None-check per stage
        # and nothing else (bench_telemetry_overhead asserts the bound).
        tele = _telemetry.current()
        sense_s = estimate_s = control_s = 0.0
        n_steps = 0
        for time in scenario.times():
            if tele is not None:
                n_steps += 1
                t0 = perf_counter()
            true_gap = leader.position - follower.position
            if true_gap <= 0.0 and result.collision_time is None:
                result.collision_time = time
            radar_gap = max(true_gap, _POST_COLLISION_GAP_FLOOR)
            true_relative_velocity = leader.velocity - follower.velocity

            if self.challenge_policy is not None:
                transmit = not self.challenge_policy.decide(
                    time, self.pipeline.attack_active
                )
            else:
                transmit = not schedule.is_challenge(time)
            effect = (
                self.attack.effect_at(time, radar_gap, true_relative_velocity)
                if self.attack is not None
                else None
            )
            measurement = sensor.measure(
                time,
                radar_gap,
                true_relative_velocity,
                transmit=transmit,
                effect=effect,
            )
            # The paper assumes the ego-speed sensor is trusted; the
            # ego_speed_bias knob stresses that assumption (the defense
            # sees the biased value, the physics uses the true one).
            sensed_ego_speed = (
                scenario.ego_speed_gain * follower.velocity
                + scenario.ego_speed_bias
            )
            if tele is not None:
                t1 = perf_counter()
                sense_s += t1 - t0
            view, estimated, attack_active = self._controller_view(
                measurement, sensed_ego_speed
            )
            if tele is not None:
                t2 = perf_counter()
                estimate_s += t2 - t1
            if self.safety_filter is not None and view is not None:
                accel_filter = self._make_accel_filter(view, sensed_ego_speed)
            else:
                accel_filter = None
            step = acc.step(follower.velocity, view, accel_filter=accel_filter)

            result.record(
                time,
                leader_position=leader.position,
                leader_velocity=leader.velocity,
                follower_position=follower.position,
                follower_velocity=follower.velocity,
                follower_acceleration=step.actual_acceleration,
                true_distance=true_gap,
                true_relative_velocity=true_relative_velocity,
                measured_distance=measurement.distance,
                measured_relative_velocity=measurement.relative_velocity,
                safe_distance=view[0] if view is not None else 0.0,
                safe_relative_velocity=view[1] if view is not None else 0.0,
                desired_distance=step.upper.desired_distance,
                desired_acceleration=step.desired_acceleration,
                pedal_acceleration=step.actuation.pedal_acceleration,
                brake_pressure=step.actuation.brake_pressure,
                spacing_mode=1.0 if step.mode is ControlMode.SPACING else 0.0,
                estimated_flag=1.0 if estimated else 0.0,
                attack_active_flag=1.0 if attack_active else 0.0,
            )

            leader_acceleration = scenario.leader_profile.acceleration(time)
            leader = advance_state(leader, leader_acceleration, scenario.sample_period)
            follower = advance_state(
                follower, step.actual_acceleration, scenario.sample_period
            )
            if tele is not None:
                control_s += perf_counter() - t2

        if tele is not None:
            # One span per stage per run: the radar + attack resolution
            # ("sense"), the defense pipeline / coasting tracker
            # ("estimate"), and the ACC + trace recording + kinematics
            # ("control").
            attrs = {"run": self.name, "steps": n_steps}
            tele.emit("engine.sense", sense_s, attrs=dict(attrs))
            tele.emit("engine.estimate", estimate_s, attrs=dict(attrs))
            tele.emit("engine.control", control_s, attrs=dict(attrs))
            tele.incr("engine.runs")
            tele.incr("engine.steps", n_steps)

        if self.pipeline is not None:
            result.detection_events = self.pipeline.detection_events
            estimator = self.pipeline.estimator
            if isinstance(estimator, SecureReconstructionEstimator):
                result.defense_stats = estimator.search_stats()
        return result
