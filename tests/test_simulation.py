"""Simulation engine, scenarios, results (repro.simulation)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation import (
    CarFollowingSimulation,
    DefenseConfig,
    Scenario,
    fig2_scenario,
    fig3_scenario,
    paper_challenge_times,
    run_single,
)
from repro.simulation.results import TRACE_NAMES, SimulationResult
from repro.units import mph_to_mps
from repro.vehicle import ConstantAccelerationProfile


class TestScenarioFactories:
    def test_fig2_paper_parameters(self):
        sc = fig2_scenario("dos")
        assert sc.horizon == 300.0
        assert sc.initial_distance == 100.0
        assert sc.leader_initial_speed == pytest.approx(mph_to_mps(65.0))
        assert sc.follower_initial_speed == pytest.approx(mph_to_mps(67.0))
        assert sc.attack.window.start == 182.0

    def test_fig2_delay_starts_at_180(self):
        sc = fig2_scenario("delay")
        assert sc.attack.window.start == 180.0
        assert sc.attack.distance_offset == 6.0

    def test_fig3_leader_switches_phase(self):
        sc = fig3_scenario("dos")
        assert sc.leader_profile.acceleration(100.0) == pytest.approx(-0.1082)
        assert sc.leader_profile.acceleration(200.0) == pytest.approx(0.012)

    def test_unknown_attack_kind(self):
        with pytest.raises(ConfigurationError):
            fig2_scenario("emp")

    def test_challenge_times_include_paper_instants(self):
        times = paper_challenge_times()
        for t in (15.0, 50.0, 175.0, 182.0):
            assert t in times

    def test_overrides(self):
        sc = fig2_scenario("dos", sensor_seed=7, horizon=250.0)
        assert sc.sensor_seed == 7
        assert sc.horizon == 250.0
        assert sc.attack.window.end == 250.0

    def test_times_grid(self):
        sc = fig2_scenario("dos", horizon=10.0)
        assert list(sc.times()) == [float(k) for k in range(11)]

    def test_scenario_validation(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="x", leader_profile=ConstantAccelerationProfile(0.0), horizon=0.0)
        with pytest.raises(ConfigurationError):
            Scenario(
                name="x",
                leader_profile=ConstantAccelerationProfile(0.0),
                initial_distance=-5.0,
            )

    def test_defense_config_validation(self):
        with pytest.raises(ConfigurationError):
            DefenseConfig(basis_kind="fourier")
        with pytest.raises(ConfigurationError):
            DefenseConfig(estimator_kind="oracle")


class TestSimulationRuns:
    def test_baseline_run_traces(self):
        result = run_single(fig2_scenario("dos"), attack_enabled=False, defended=False)
        assert set(result.traces) == set(TRACE_NAMES)
        assert len(result.times) == 301
        assert not result.collided
        assert result.attack_name == "none"

    def test_baseline_follower_tracks_leader(self):
        result = run_single(fig2_scenario("dos"), attack_enabled=False, defended=False)
        vF = result.array("follower_velocity")
        vL = result.array("leader_velocity")
        # After the transient the follower matches the leader closely.
        assert np.all(np.abs(vF[100:250] - vL[100:250]) < 2.0)

    def test_gap_respects_desired_distance_when_clean(self):
        result = run_single(fig2_scenario("dos"), attack_enabled=False, defended=False)
        gap = result.array("true_distance")
        d_des = result.array("desired_distance")
        # Stays near the CTH target through the tracking phase.
        assert np.all(gap[100:250] > 0.5 * d_des[100:250])

    def test_challenge_zeros_visible_in_measured_trace(self):
        # The paper's "spikes going to zero" at k = 15, 50, 175...
        result = run_single(fig2_scenario("dos"), attack_enabled=False, defended=False)
        measured = result.series("measured_distance")
        assert measured.value_at(15.0) == 0.0
        assert measured.value_at(50.0) == 0.0
        assert measured.value_at(175.0) == 0.0
        assert measured.value_at(100.0) > 0.0

    def test_dos_attack_corrupts_measured_trace(self):
        result = run_single(fig2_scenario("dos"), defended=False)
        measured = result.array("measured_distance")
        true = result.array("true_distance")
        errors = np.abs(measured[183:] - true[183:])
        assert np.median(errors) > 20.0

    def test_undefended_dos_collides(self):
        result = run_single(fig2_scenario("dos"), defended=False)
        assert result.collided
        assert result.collision_time is not None
        assert result.collision_time > 182.0

    def test_defended_dos_survives(self):
        result = run_single(fig2_scenario("dos"), defended=True)
        assert not result.collided
        assert result.detection_times == [182.0]

    def test_defended_run_estimates_during_attack(self):
        result = run_single(fig2_scenario("dos"), defended=True)
        estimated = result.array("estimated_flag")
        times = result.times
        attack_samples = estimated[(times >= 183.0) & (times <= 299.0)]
        assert np.all(attack_samples == 1.0)

    def test_run_is_deterministic(self):
        a = run_single(fig2_scenario("dos"), defended=True)
        b = run_single(fig2_scenario("dos"), defended=True)
        assert np.array_equal(
            a.array("follower_velocity"), b.array("follower_velocity")
        )

    def test_named_run(self):
        sim = CarFollowingSimulation(fig2_scenario("dos"), name="custom")
        assert sim.run().name == "custom"

    def test_default_name_encodes_configuration(self):
        sim = CarFollowingSimulation(fig2_scenario("dos"), defended=False)
        assert "undefended" in sim.name
        assert "dos" in sim.name


class TestSimulationResult:
    def test_record_rejects_unknown_trace(self):
        result = SimulationResult.empty("x")
        with pytest.raises(KeyError):
            result.record(0.0, bogus=1.0)

    def test_min_gap_and_summary(self):
        result = SimulationResult.empty("x")
        for k, gap in enumerate([10.0, 5.0, 7.0]):
            values = {name: 0.0 for name in TRACE_NAMES}
            values["true_distance"] = gap
            result.record(float(k), **values)
        assert result.min_gap() == 5.0
        summary = result.summary()
        assert summary.min_gap == 5.0
        assert summary.final_gap == 7.0
        assert not summary.collided

    def test_detection_times_from_events(self):
        from repro.types import DetectionEvent

        result = SimulationResult.empty("x")
        result.detection_events = [
            DetectionEvent(15.0, False, 0.0),
            DetectionEvent(182.0, True, 40.0),
            DetectionEvent(195.0, True, 41.0),
            DetectionEvent(209.0, False, 0.0),
            DetectionEvent(222.0, True, 39.0),
        ]
        assert result.detection_times == [182.0, 222.0]

    def test_summary_as_dict(self):
        result = SimulationResult.empty("x")
        values = {name: 0.0 for name in TRACE_NAMES}
        values["true_distance"] = 10.0
        result.record(0.0, **values)
        row = result.summary().as_dict()
        assert row["name"] == "x"
        assert row["collided"] is False
