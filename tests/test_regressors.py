"""Measurement-matrix bases (repro.core.regressors)."""

import numpy as np
import pytest

from repro.core import ARBasis, PolynomialBasis


class TestPolynomialBasis:
    def test_degree_zero_is_constant(self):
        basis = PolynomialBasis(degree=0)
        assert basis.n_params == 1
        assert np.allclose(basis.regressor(3.7, []), [1.0])

    def test_linear(self):
        basis = PolynomialBasis(degree=1)
        assert np.allclose(basis.regressor(2.0, []), [1.0, 2.0])

    def test_quadratic(self):
        basis = PolynomialBasis(degree=2)
        assert np.allclose(basis.regressor(3.0, []), [1.0, 3.0, 9.0])

    def test_ignores_history(self):
        basis = PolynomialBasis(degree=1)
        assert not basis.uses_history
        with_history = basis.regressor(1.0, [(0.0, 99.0)])
        without = basis.regressor(1.0, [])
        assert np.allclose(with_history, without)

    def test_rejects_negative_degree(self):
        with pytest.raises(ValueError):
            PolynomialBasis(degree=-1)

    def test_repr(self):
        assert "degree=2" in repr(PolynomialBasis(2))


class TestARBasis:
    def test_needs_enough_history(self):
        basis = ARBasis(order=3)
        assert basis.uses_history
        assert basis.regressor(0.0, []) is None
        assert basis.regressor(0.0, [(0.0, 1.0), (1.0, 2.0)]) is None

    def test_most_recent_first(self):
        basis = ARBasis(order=3)
        history = [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]
        assert np.allclose(basis.regressor(3.0, history), [30.0, 20.0, 10.0])

    def test_uses_only_last_order_values(self):
        basis = ARBasis(order=2)
        history = [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]
        assert np.allclose(basis.regressor(4.0, history), [4.0, 3.0])

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            ARBasis(order=0)

    def test_n_params(self):
        assert ARBasis(order=5).n_params == 5

    def test_repr(self):
        assert "order=4" in repr(ARBasis(4))
