"""End-to-end radar sensor (repro.radar.sensor), both fidelity modes."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.radar import AttackEffect, FMCWParameters, FMCWRadarSensor
from repro.radar.link_budget import JammerParameters, jammer_received_power
from repro.types import SensorStatus

PARAMS = FMCWParameters()


def dos_effect(distance=100.0):
    power = jammer_received_power(PARAMS, JammerParameters(), distance)
    return AttackEffect(jammer_noise_power=power)


DELAY_EFFECT = AttackEffect(
    spoof_distance_offset=6.0, replace_echo=True, counterfeit_power_gain=4.0
)


class TestConstruction:
    def test_rejects_unknown_fidelity(self):
        with pytest.raises(ConfigurationError):
            FMCWRadarSensor(fidelity="magic")

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            FMCWRadarSensor(distance_noise_std=-1.0)

    def test_envelope(self):
        sensor = FMCWRadarSensor(seed=0)
        assert sensor.target_in_envelope(100.0)
        assert not sensor.target_in_envelope(1.0)
        assert not sensor.target_in_envelope(250.0)


@pytest.mark.parametrize("fidelity", ["equation", "signal"])
class TestNominalOperation:
    def test_measures_scene(self, fidelity):
        sensor = FMCWRadarSensor(fidelity=fidelity, seed=1)
        m = sensor.measure(0.0, 100.0, -0.9)
        assert m.distance == pytest.approx(100.0, abs=1.0)
        assert m.relative_velocity == pytest.approx(-0.9, abs=0.5)
        assert m.status is SensorStatus.NOMINAL

    def test_challenge_without_attack_is_zero(self, fidelity):
        sensor = FMCWRadarSensor(fidelity=fidelity, seed=1)
        m = sensor.measure(15.0, 100.0, -0.9, transmit=False)
        assert m.is_zero_output(1e-9)
        assert m.status is SensorStatus.CHALLENGE

    def test_out_of_range_target_invisible(self, fidelity):
        sensor = FMCWRadarSensor(fidelity=fidelity, seed=1)
        m = sensor.measure(0.0, 300.0, 0.0)
        assert m.is_zero_output(1e-9)

    def test_challenge_under_dos_attack_nonzero(self, fidelity):
        # The CRA detection signal: jamming energy arrives even though
        # the radar transmitted nothing.
        sensor = FMCWRadarSensor(fidelity=fidelity, seed=1)
        m = sensor.measure(182.0, 100.0, -0.9, transmit=False, effect=dos_effect())
        assert not m.is_zero_output(1e-6)

    def test_challenge_under_delay_attack_nonzero(self, fidelity):
        # The replayed counterfeit cannot stop in time at a challenge.
        sensor = FMCWRadarSensor(fidelity=fidelity, seed=1)
        m = sensor.measure(182.0, 100.0, -0.9, transmit=False, effect=DELAY_EFFECT)
        assert not m.is_zero_output(1e-6)

    def test_delay_attack_spoofs_distance(self, fidelity):
        sensor = FMCWRadarSensor(fidelity=fidelity, seed=1)
        m = sensor.measure(182.0, 100.0, -0.9, effect=DELAY_EFFECT)
        assert m.distance == pytest.approx(106.0, abs=1.0)

    def test_determinism(self, fidelity):
        a = FMCWRadarSensor(fidelity=fidelity, seed=7).measure(0.0, 80.0, -2.0)
        b = FMCWRadarSensor(fidelity=fidelity, seed=7).measure(0.0, 80.0, -2.0)
        assert a.distance == b.distance
        assert a.relative_velocity == b.relative_velocity


class TestDoSCorruption:
    def test_equation_mode_spurious_measurements(self):
        sensor = FMCWRadarSensor(fidelity="equation", seed=3)
        readings = [
            sensor.measure(float(k), 100.0, -0.9, effect=dos_effect()).distance
            for k in range(50)
        ]
        # Spurious readings are erratic and frequently far from the truth.
        errors = [abs(r - 100.0) for r in readings]
        assert np.median(errors) > 20.0
        assert np.std(readings) > 20.0

    def test_signal_mode_corrupts_measurement(self):
        sensor = FMCWRadarSensor(fidelity="signal", seed=3)
        errors = [
            abs(sensor.measure(float(k), 100.0, -0.9, effect=dos_effect()).distance - 100.0)
            for k in range(10)
        ]
        assert np.median(errors) > 20.0

    def test_weak_jammer_does_not_corrupt_equation_mode(self):
        sensor = FMCWRadarSensor(fidelity="equation", seed=3)
        weak = AttackEffect(jammer_noise_power=1e-18)  # below echo power
        m = sensor.measure(0.0, 100.0, -0.9, effect=weak)
        assert m.distance == pytest.approx(100.0, abs=1.0)


class TestMeasurementMetadata:
    def test_received_power_recorded(self):
        sensor = FMCWRadarSensor(fidelity="equation", seed=0)
        m = sensor.measure(0.0, 100.0, 0.0)
        assert m.received_power > 0.0

    def test_beat_frequencies_recorded(self):
        sensor = FMCWRadarSensor(fidelity="equation", seed=0)
        m = sensor.measure(0.0, 100.0, 0.0)
        assert m.beat_freq_up > 0.0
        assert m.beat_freq_down > 0.0


class TestAttackEffect:
    def test_jamming_flag(self):
        assert dos_effect().is_jamming
        assert not dos_effect().is_spoofing

    def test_spoofing_flag(self):
        assert DELAY_EFFECT.is_spoofing
        assert not DELAY_EFFECT.is_jamming

    def test_velocity_only_spoof_is_spoofing(self):
        assert AttackEffect(spoof_velocity_offset=1.0).is_spoofing
