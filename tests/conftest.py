"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar.params import FMCWParameters
from repro.radar.link_budget import JammerParameters
from repro.vehicle.params import ACCParameters


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def radar_params() -> FMCWParameters:
    """The paper's Bosch LRR2 radar parameters."""
    return FMCWParameters()


@pytest.fixture
def jammer() -> JammerParameters:
    """The paper's §6.2 self-screening jammer."""
    return JammerParameters()


@pytest.fixture
def acc_params() -> ACCParameters:
    """The paper's ACC controller parameters."""
    return ACCParameters()
