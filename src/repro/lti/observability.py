"""Observability and controllability analysis for LTI systems.

Related work cited by the paper (Chong et al. [1], Fawzi et al. [3])
characterizes when secure state estimation is possible via observability
under attack.  These helpers let tests and examples verify that the
car-following plant used in the case study is observable from the radar
measurement, which is the structural condition the RLS recovery relies
on.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

import numpy as np

__all__ = [
    "observability_matrix",
    "controllability_matrix",
    "is_observable",
    "is_controllable",
    "unobservable_subspace_dimension",
    "sparse_observability_failures",
    "is_sparse_observable",
]


def observability_matrix(A, C) -> np.ndarray:
    """Build the Kalman observability matrix ``[C; CA; ...; CA^{n-1}]``."""
    A = np.atleast_2d(np.asarray(A, dtype=float))
    C = np.atleast_2d(np.asarray(C, dtype=float))
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError(f"A must be square, got {A.shape}")
    if C.shape[1] != n:
        raise ValueError(f"C must have {n} columns, got {C.shape}")
    blocks = [C]
    current = C
    for _ in range(n - 1):
        current = current @ A
        blocks.append(current)
    return np.vstack(blocks)


def controllability_matrix(A, B) -> np.ndarray:
    """Build the Kalman controllability matrix ``[B, AB, ..., A^{n-1}B]``."""
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError(f"A must be square, got {A.shape}")
    if B.shape[0] != n:
        raise ValueError(f"B must have {n} rows, got {B.shape}")
    blocks = [B]
    current = B
    for _ in range(n - 1):
        current = A @ current
        blocks.append(current)
    return np.hstack(blocks)


def is_observable(A, C, tolerance: float = 1e-10) -> bool:
    """Return True when ``(A, C)`` is observable (full-rank test)."""
    obs = observability_matrix(A, C)
    n = np.atleast_2d(np.asarray(A)).shape[0]
    return int(np.linalg.matrix_rank(obs, tol=tolerance)) == n


def is_controllable(A, B, tolerance: float = 1e-10) -> bool:
    """Return True when ``(A, B)`` is controllable (full-rank test)."""
    ctrl = controllability_matrix(A, B)
    n = np.atleast_2d(np.asarray(A)).shape[0]
    return int(np.linalg.matrix_rank(ctrl, tol=tolerance)) == n


def unobservable_subspace_dimension(A, C, tolerance: float = 1e-10) -> int:
    """Dimension of the unobservable subspace of ``(A, C)``."""
    obs = observability_matrix(A, C)
    n = np.atleast_2d(np.asarray(A)).shape[0]
    return n - int(np.linalg.matrix_rank(obs, tol=tolerance))


def sparse_observability_failures(
    A, C, s: int, tolerance: float = 1e-10
) -> List[Tuple[int, ...]]:
    """Sensor-removal sets of size ``s`` that destroy observability.

    ``(A, C)`` is *s-sparse observable* when the system stays observable
    after removing **any** ``s`` of the ``p`` sensor rows of ``C``
    (Chong et al. / Fawzi et al.; the structural condition for secure
    state reconstruction under sparse sensor attacks).  This returns
    every removal set that breaks the condition — empty means the
    system is s-sparse observable; a non-empty list names exactly which
    sensor losses the reconstruction cannot tolerate.
    """
    if s < 0:
        raise ValueError(f"sparsity s must be >= 0, got {s}")
    C = np.atleast_2d(np.asarray(C, dtype=float))
    p = C.shape[0]
    if s >= p:
        # Removing every sensor (or more) always kills observability of
        # a non-trivial state.
        return [tuple(range(p))]
    failures: List[Tuple[int, ...]] = []
    for removed in itertools.combinations(range(p), s):
        kept = [i for i in range(p) if i not in removed]
        if not is_observable(A, C[kept, :], tolerance=tolerance):
            failures.append(removed)
    return failures


def is_sparse_observable(A, C, s: int, tolerance: float = 1e-10) -> bool:
    """True when ``(A, C)`` stays observable after removing any ``s`` sensors.

    ``is_sparse_observable(A, C, 2 * s)`` is the recovery guarantee of
    :class:`repro.defense.SecureStateReconstruct`: with at most ``s``
    attacked sensors and 2s-sparse observability, the attacked-sensor
    set is identifiable and the state is exactly recoverable.
    """
    return not sparse_observability_failures(A, C, s, tolerance=tolerance)
