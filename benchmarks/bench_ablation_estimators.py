"""Ablation — recovery estimator choice.

DESIGN.md's key estimation design call: the paper's literal per-channel
RLS runs open loop during the attack (level errors integrate into real
gap drift), while the default dead-reckoning estimator closes the loop
through the trusted ego speed.  This bench compares both against the
hold-last-value and Kalman baselines on safety and estimate fidelity,
across several noise seeds.
"""

import numpy as np

from conftest import emit
from repro import (
    CarFollowingSimulation,
    HoldLastValuePredictor,
    KalmanChannelPredictor,
    RadarChannelEstimator,
    fig2_scenario,
    run,
)
from repro.analysis import estimation_rmse, render_table
from repro.simulation.scenario import DefenseConfig

SEEDS = (2017, 7, 23, 99)


def _run(scenario, estimator=None):
    sim = CarFollowingSimulation(scenario, defended=True)
    if estimator is not None:
        sim.pipeline.estimator = estimator
    return sim.run()


def _evaluate(name, make_result):
    gaps, rmses, collisions = [], [], 0
    for seed in SEEDS:
        scenario = fig2_scenario("dos", sensor_seed=seed)
        result = make_result(seed)
        baseline = run(scenario, attack_enabled=False, defended=False)
        gaps.append(result.min_gap())
        collisions += int(result.collided)
        rmses.append(
            estimation_rmse(
                result,
                baseline,
                trace="safe_distance",
                reference_trace="true_distance",
                window=(183.0, 300.0),
            )
        )
    return {
        "estimator": name,
        "min_gap_worst_m": round(min(gaps), 2),
        "min_gap_mean_m": round(float(np.mean(gaps)), 2),
        "collisions": f"{collisions}/{len(SEEDS)}",
        "est_rmse_mean_m": round(float(np.mean(rmses)), 2),
    }


def bench_ablation_estimators(benchmark):
    def sweep():
        return [
            _evaluate(
                "dead_reckoning (default)",
                lambda seed: _run(fig2_scenario("dos", sensor_seed=seed)),
            ),
            _evaluate(
                "per_channel (paper literal)",
                lambda seed: _run(
                    fig2_scenario(
                        "dos",
                        sensor_seed=seed,
                        defense=DefenseConfig(estimator_kind="per_channel"),
                    )
                ),
            ),
            _evaluate(
                "hold_last_value",
                lambda seed: _run(
                    fig2_scenario("dos", sensor_seed=seed),
                    RadarChannelEstimator(
                        HoldLastValuePredictor(), HoldLastValuePredictor()
                    ),
                ),
            ),
            _evaluate(
                "kalman_per_channel",
                lambda seed: _run(
                    fig2_scenario("dos", sensor_seed=seed),
                    RadarChannelEstimator(
                        KalmanChannelPredictor(), KalmanChannelPredictor()
                    ),
                ),
            ),
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_name = {row["estimator"]: row for row in rows}
    # Shape claims: the default never collides; hold-last-value is the
    # worst recovery (it freezes the gap while the leader keeps braking).
    assert by_name["dead_reckoning (default)"]["collisions"] == f"0/{len(SEEDS)}"
    assert (
        by_name["hold_last_value"]["min_gap_worst_m"]
        < by_name["dead_reckoning (default)"]["min_gap_worst_m"]
    )

    emit(
        "ablation_estimators",
        render_table(
            rows,
            title="Recovery-estimator ablation (Figure 2a DoS, 4 sensor seeds)",
        ),
    )
