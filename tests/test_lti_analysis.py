"""Observability/controllability and discretization (repro.lti)."""

import numpy as np
import pytest

from repro.lti import (
    controllability_matrix,
    double_integrator_discrete,
    first_order_lag_discrete,
    is_controllable,
    is_observable,
    observability_matrix,
    zoh_discretize,
)
from repro.lti.observability import (
    is_sparse_observable,
    sparse_observability_failures,
    unobservable_subspace_dimension,
)


class TestObservability:
    def test_double_integrator_position_output_is_observable(self):
        A = [[1.0, 1.0], [0.0, 1.0]]
        assert is_observable(A, [[1.0, 0.0]])

    def test_velocity_only_output_is_not_observable(self):
        # Position cannot be reconstructed from velocity alone.
        A = [[1.0, 1.0], [0.0, 1.0]]
        assert not is_observable(A, [[0.0, 1.0]])
        assert unobservable_subspace_dimension(A, [[0.0, 1.0]]) == 1

    def test_matrix_shape(self):
        A = np.eye(3)
        C = np.ones((2, 3))
        assert observability_matrix(A, C).shape == (6, 3)

    def test_car_following_plant_observable_from_radar(self):
        # State [gap, relative velocity], radar measures both: trivially
        # observable — the structural condition the recovery relies on.
        A = [[1.0, 1.0], [0.0, 1.0]]
        C = [[1.0, 0.0], [0.0, 1.0]]
        assert is_observable(A, C)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            observability_matrix([[1.0, 0.0]], [[1.0]])
        with pytest.raises(ValueError):
            observability_matrix(np.eye(2), [[1.0]])


class TestSparseObservability:
    """s-sparse observability — the secure-reconstruction guarantee."""

    A = np.array([[1.0, 1.0], [0.0, 1.0]])  # double integrator
    #: Three redundant position sensors + one velocity sensor.
    C4 = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])

    def test_redundant_sensors_2sparse_observable(self):
        assert is_sparse_observable(self.A, self.C4, 2)
        assert sparse_observability_failures(self.A, self.C4, 2) == []

    def test_s_zero_degenerates_to_plain_observability(self):
        C = np.array([[1.0, 0.0]])
        assert is_sparse_observable(self.A, C, 0)
        C_vel = np.array([[0.0, 1.0]])
        assert not is_sparse_observable(self.A, C_vel, 0)

    def test_failures_name_the_offending_removals(self):
        # Two sensors, position + velocity: removing the position
        # sensor (index 0) leaves velocity-only, which cannot observe
        # position; removing velocity keeps observability.
        C = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert sparse_observability_failures(self.A, C, 1) == [(0,)]
        assert not is_sparse_observable(self.A, C, 1)

    def test_removing_all_sensors_always_fails(self):
        C = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert sparse_observability_failures(self.A, C, 2) == [(0, 1)]
        assert sparse_observability_failures(self.A, C, 5) == [(0, 1)]

    def test_rank_deficient_C_never_sparse_observable(self):
        # A zero row contributes nothing; removing the informative row
        # is fatal.
        C = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert not is_sparse_observable(self.A, C, 1)

    def test_rejects_negative_sparsity(self):
        with pytest.raises(ValueError, match=">= 0"):
            sparse_observability_failures(self.A, self.C4, -1)

    def test_tolerance_controls_rank_decision(self):
        # A nearly-unobservable pair: the velocity row sees position
        # only through an epsilon coupling.  A loose tolerance treats
        # it as rank-deficient, the default tolerance as observable.
        eps = 1e-8
        C = np.array([[eps, 0.0], [0.0, 1.0]])
        assert is_observable(self.A, C, tolerance=1e-12)
        assert not is_observable(self.A, C, tolerance=1e-3)
        assert not is_sparse_observable(self.A, C, 0, tolerance=1e-3)


class TestControllability:
    def test_double_integrator_controllable(self):
        A = [[1.0, 1.0], [0.0, 1.0]]
        B = [[0.5], [1.0]]
        assert is_controllable(A, B)

    def test_decoupled_state_not_controllable(self):
        A = [[1.0, 0.0], [0.0, 0.5]]
        B = [[1.0], [0.0]]
        assert not is_controllable(A, B)

    def test_matrix_shape(self):
        assert controllability_matrix(np.eye(3), np.ones((3, 2))).shape == (3, 6)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            controllability_matrix([[1.0, 0.0]], [[1.0]])
        with pytest.raises(ValueError):
            controllability_matrix(np.eye(2), [[1.0]])


class TestZOHDiscretize:
    def test_integrator(self):
        # x' = u over dt: A_d = 1, B_d = dt.
        A_d, B_d = zoh_discretize([[0.0]], [[1.0]], dt=0.5)
        assert A_d[0, 0] == pytest.approx(1.0)
        assert B_d[0, 0] == pytest.approx(0.5)

    def test_double_integrator_matches_closed_form(self):
        A_c = [[0.0, 1.0], [0.0, 0.0]]
        B_c = [[0.0], [1.0]]
        A_d, B_d = zoh_discretize(A_c, B_c, dt=2.0)
        A_expected, B_expected = double_integrator_discrete(2.0)
        assert np.allclose(A_d, A_expected)
        assert np.allclose(B_d, B_expected)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            zoh_discretize([[0.0]], [[1.0]], dt=0.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            zoh_discretize([[0.0, 1.0]], [[1.0]], dt=1.0)
        with pytest.raises(ValueError):
            zoh_discretize([[0.0]], [[1.0], [1.0]], dt=1.0)


class TestFirstOrderLag:
    def test_paper_eqn14_coefficients(self):
        # K_L = 1.0, T_L = 1.008 (paper §6.1), dt = 1 s.
        alpha, beta = first_order_lag_discrete(1.0, 1.008, 1.0)
        assert alpha == pytest.approx(np.exp(-1.0 / 1.008))
        assert beta == pytest.approx(1.0 - alpha)

    def test_dc_gain_preserved(self):
        gain = 1.7
        alpha, beta = first_order_lag_discrete(gain, 0.8, 0.1)
        # Steady state of a[k+1] = alpha a[k] + beta u is a = gain * u.
        assert beta / (1.0 - alpha) == pytest.approx(gain)

    def test_converges_to_command(self):
        alpha, beta = first_order_lag_discrete(1.0, 1.008, 1.0)
        a = 0.0
        for _ in range(60):
            a = alpha * a + beta * (-2.0)
        assert a == pytest.approx(-2.0, abs=1e-6)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            first_order_lag_discrete(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            first_order_lag_discrete(1.0, 1.0, -1.0)

    def test_double_integrator_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            double_integrator_discrete(0.0)
