"""Quantitative metrics for the reproduction (paper §6.2 "Results").

The paper's quantitative claims are: detection at k = 182 s for both
attacks, zero false positives and zero false negatives, and safe
operation (no collision) with the estimated measurements.  These
functions compute exactly those quantities from simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.simulation.results import SimulationResult
from repro.types import DetectionEvent

__all__ = [
    "detection_latency",
    "DetectionConfusion",
    "detection_confusion",
    "estimation_rmse",
    "series_rmse",
    "SafetyMetrics",
    "safety_metrics",
]


def detection_latency(result: SimulationResult, attack: Attack) -> Optional[float]:
    """Seconds from attack onset to the first detection, or None.

    The structural lower bound is the gap from the onset to the next
    challenge instant; CRA should achieve exactly that bound.
    """
    detections = [t for t in result.detection_times if t >= attack.window.start]
    if not detections:
        return None
    return detections[0] - attack.window.start


@dataclass(frozen=True)
class DetectionConfusion:
    """Confusion counts of the CRA detector over challenge instants."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        """Number of challenge verdicts counted."""
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def perfect(self) -> bool:
        """The paper's claim: zero false positives and zero false negatives."""
        return self.false_positives == 0 and self.false_negatives == 0


def detection_confusion(
    events: Sequence[DetectionEvent], attack: Optional[Attack]
) -> DetectionConfusion:
    """Score each challenge verdict against the attack's ground truth."""
    tp = fp = tn = fn = 0
    for event in events:
        truly_attacked = attack is not None and attack.is_active(event.time)
        if event.attack_detected and truly_attacked:
            tp += 1
        elif event.attack_detected and not truly_attacked:
            fp += 1
        elif not event.attack_detected and truly_attacked:
            fn += 1
        else:
            tn += 1
    return DetectionConfusion(
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
    )


def series_rmse(
    reference_times: np.ndarray,
    reference_values: np.ndarray,
    times: np.ndarray,
    values: np.ndarray,
    window: Optional["tuple[float, float]"] = None,
) -> float:
    """RMSE between two sampled series over a common (optional) window.

    Series are aligned on exactly matching sample instants (all
    simulation traces share the same grid).
    """
    reference_times = np.asarray(reference_times, dtype=float)
    times = np.asarray(times, dtype=float)
    common, ref_idx, val_idx = np.intersect1d(
        reference_times, times, return_indices=True
    )
    if window is not None:
        mask = (common >= window[0]) & (common <= window[1])
        ref_idx, val_idx = ref_idx[mask], val_idx[mask]
    if ref_idx.size == 0:
        raise ValueError("series share no sample instants in the window")
    diff = np.asarray(reference_values)[ref_idx] - np.asarray(values)[val_idx]
    return float(np.sqrt(np.mean(diff**2)))


def estimation_rmse(
    defended: SimulationResult,
    baseline: SimulationResult,
    trace: str = "safe_distance",
    reference_trace: str = "measured_distance",
    window: Optional["tuple[float, float]"] = None,
) -> float:
    """RMSE of the defended run's safe series against the clean baseline.

    By default compares the controller-visible distance of the defended
    run against the clean radar data of the no-attack baseline — i.e.
    how closely "Estimated Radar Data" tracks "RadarData-Without-Attack"
    in the paper's figures.
    """
    ref_t, ref_v = baseline.series(reference_trace).as_arrays()
    t, v = defended.series(trace).as_arrays()
    return series_rmse(ref_t, ref_v, t, v, window=window)


@dataclass(frozen=True)
class SafetyMetrics:
    """Safety outcome of one run."""

    min_gap: float
    collided: bool
    collision_time: Optional[float]
    time_gap_violated: float
    final_gap: float

    @property
    def safe(self) -> bool:
        """No collision over the run."""
        return not self.collided


def safety_metrics(
    result: SimulationResult, minimum_safe_gap: float = 2.0
) -> SafetyMetrics:
    """Compute the safety outcome of a run.

    ``time_gap_violated`` is the total time the true gap spent below
    ``minimum_safe_gap`` (seconds, assuming the uniform sample grid).
    """
    times = result.times
    gaps = result.array("true_distance")
    if times.size < 2:
        dt = 1.0
    else:
        dt = float(times[1] - times[0])
    violated = float(np.sum(gaps < minimum_safe_gap) * dt)
    return SafetyMetrics(
        min_gap=float(np.min(gaps)),
        collided=result.collided,
        collision_time=result.collision_time,
        time_gap_violated=violated,
        final_gap=float(gaps[-1]),
    )
