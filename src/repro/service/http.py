"""Minimal asyncio HTTP/1.1 plumbing for :mod:`repro.service`.

The service speaks a deliberately small slice of HTTP — enough for
JSON request/response exchanges over ``asyncio`` streams without
pulling in a web framework:

* :func:`read_request` parses one request (request line, headers,
  ``Content-Length``-delimited body) from a stream reader;
* :func:`write_json` renders a JSON response with correct framing and
  ``Connection: close`` semantics (one exchange per connection keeps
  the protocol state machine trivial);
* :func:`fetch_json` is the matching client coroutine, used by the
  service tests, the throughput bench and any asyncio caller that
  wants to talk to a running service without extra dependencies.

Anything malformed raises :class:`HTTPError`, which the connection
handler in :mod:`repro.service.app` converts into a 4xx response; the
parser never grows unbounded state (request line, header block and
body are all size-capped).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HTTPError",
    "Request",
    "read_request",
    "write_json",
    "fetch_json",
]

#: Upper bounds keeping a misbehaving client from ballooning memory.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """A request the server refuses; carries the response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON; :class:`HTTPError` 400 otherwise."""
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}")

    def flag(self, name: str) -> bool:
        """A boolean query parameter (``?wait=1`` / ``?trace=true``)."""
        return self.query.get(name, "").lower() in ("1", "true", "yes", "on")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from ``reader``; ``None`` on a clean EOF.

    Raises :class:`HTTPError` for malformed or oversized input —
    callers answer with the carried status and close the connection.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HTTPError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HTTPError(400, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HTTPError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].upper().startswith("HTTP/1."):
        raise HTTPError(400, f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            raw = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HTTPError(400, "truncated header block")
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HTTPError(400, "header block too large")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "invalid Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HTTPError(413, f"body of {length} bytes exceeds the limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HTTPError(400, "truncated request body")

    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    return Request(
        method=method, path=split.path, query=query, headers=headers, body=body
    )


async def write_json(
    writer: asyncio.StreamWriter, status: int, payload: Any
) -> None:
    """Send one JSON response and flush (the connection then closes)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


async def fetch_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Any = None,
    *,
    timeout: float = 60.0,
) -> Tuple[int, Any]:
    """One JSON exchange with a running service.

    Returns ``(status, decoded payload)``.  ``body`` (when given) is
    JSON-encoded into the request.  The whole exchange — connect,
    write, read the full response — is bounded by ``timeout``.
    """

    async def exchange() -> Tuple[int, Any]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = b""
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
            head = (
                f"{method.upper()} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + payload)
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        header_blob, _, rest = raw.partition(b"\r\n\r\n")
        status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
        status = int(status_line.split()[1])
        return status, json.loads(rest.decode("utf-8")) if rest else None

    return await asyncio.wait_for(exchange(), timeout)
