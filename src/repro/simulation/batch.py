"""Parallel batch execution of independent simulation runs.

Every sweep in the repository — Monte-Carlo seed robustness, the
(baseline / attacked / defended) figure triple, platoon comparisons,
noise-sensitivity grids — is a set of *independent* closed-loop runs.
This module is the one substrate they all fan out through:

* :class:`RunSpec` describes one run (a car-following
  :class:`~repro.simulation.scenario.Scenario` or a
  :class:`~repro.simulation.platoon.PlatoonScenario`, plus the
  attack/defense toggles);
* :func:`execute_batch` distributes a list of specs over a
  ``ProcessPoolExecutor`` in chunks and returns ordered, structured
  :class:`RunRecord` entries (payload, wall-clock, worker pid, error);
* :func:`run_many` is the convenience wrapper returning just the
  payloads.

Determinism is by construction: each spec carries its full
configuration (including ``sensor_seed``), so a run's result does not
depend on which worker executes it or in what order — ``workers=4``
output is bit-identical to ``workers=1``.  :func:`derive_seeds` offers
a deterministic way to expand one base seed into per-run seeds.

``workers=1`` (the default) executes serially in-process with zero
overhead.  If the platform cannot spawn or sustain a process pool
(restricted sandboxes, missing ``/dev/shm``, unpicklable payloads,
...) the batch degrades to the serial path — never silently: a
``RuntimeWarning`` is emitted and :attr:`BatchResult.degraded_reason`
records the triggering pool-infrastructure error (``OSError``,
``BrokenExecutor``, pickling failures).  Any *other* exception escaping
the pool is a genuine bug and propagates instead of being retried
serially.

With an active :mod:`repro.telemetry` session, every executed spec
emits one ``batch.run`` span (worker pid, queue wait, cache-hit flag,
error status) and the batch-scoped aggregate is attached as
:attr:`BatchResult.telemetry` (``None`` when telemetry is off).

Determinism also makes runs *memoizable*: with ``cache=`` set to
``"readonly"`` or ``"readwrite"`` (or an explicit
:class:`repro.store.RunStore`), each spec is fingerprinted via
:mod:`repro.store.fingerprint` and store hits skip simulation entirely
— the replayed payload is bit-identical to a fresh run.

The ``backend=`` knob selects the engine (see
:mod:`repro.simulation.knobs`): ``"scalar"`` is the per-run engine
described above; ``"vectorized"`` advances homogeneous groups of runs
in lock-step through :mod:`repro.simulation.vectorized` (bit-identical
results, one numpy pass per step instead of N python step loops);
``"auto"`` vectorizes the groups that qualify and runs the rest on the
scalar path, recording the choice per run in
:attr:`RunRecord.backend_used`.
"""

from __future__ import annotations

import operator
import os
import pickle
import time
import warnings
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.engine import CarFollowingSimulation
from repro.simulation.knobs import resolve_backend, validate_workers
from repro.simulation.results import SimulationResult
from repro.simulation.platoon import PlatoonScenario, PlatoonSimulation
from repro.simulation.scenario import Scenario
from repro.telemetry.summary import TelemetrySummary

__all__ = [
    "RunSpec",
    "RunRecord",
    "BatchResult",
    "execute_batch",
    "run_many",
    "derive_seeds",
]

#: A worker-side reducer applied to (spec, raw result) before the
#: payload travels back to the parent — must be a picklable callable
#: (module-level function) when ``workers > 1``.
Postprocess = Callable[["RunSpec", Any], Any]


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run.

    Attributes
    ----------
    scenario:
        A :class:`Scenario` (two-vehicle engine) or a
        :class:`PlatoonScenario` (N-follower engine).
    attack_enabled:
        Whether the scenario's attack is active.
    defended:
        Whether the CRA+RLS defense runs.  Platoon scenarios configure
        defense per-follower via ``defended_followers`` instead; the
        flag is ignored for them.
    tag:
        Caller-chosen label carried through to the :class:`RunRecord`
        (useful for regrouping sweep results).
    """

    scenario: Union[Scenario, PlatoonScenario]
    attack_enabled: bool = True
    defended: bool = True
    tag: str = ""


@dataclass(frozen=True)
class RunRecord:
    """Structured outcome of one executed :class:`RunSpec`.

    ``payload`` is the simulation result (or the postprocessed value)
    and is ``None`` when the run raised; ``error`` then holds the
    exception rendered as ``"ExcType: message"``.
    """

    index: int
    tag: str
    payload: Any
    elapsed: float
    worker_pid: int
    error: Optional[str] = None
    #: True when the payload was served from the run store
    #: (:mod:`repro.store`) instead of being simulated.
    cached: bool = False
    #: Seconds between batch submission and the run starting (pool
    #: scheduling latency; ~0 on the serial path and for cache hits).
    queue_wait: float = 0.0
    #: Which engine executed the run: ``"scalar"`` or ``"vectorized"``.
    #: ``None`` when nothing executed (the payload replayed from the
    #: run store).
    backend_used: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class BatchResult:
    """Ordered records of a batch plus execution metadata.

    ``workers`` is the worker count actually used; ``parallel`` tells
    whether a process pool ran the batch (``False`` for the serial
    path, including pool-unavailable fallback).

    ``degraded_reason`` is ``None`` for a batch that executed as
    requested; when the process pool could not be created or broke on a
    pool-infrastructure error, it holds that error rendered as
    ``"ExcType: message"`` and the batch was re-run serially (a
    ``RuntimeWarning`` is emitted at the same time, so the degradation
    is never silent).  Errors *inside* a run never set it — they are
    captured per-record — and non-infrastructure errors escaping the
    pool propagate instead of degrading.
    """

    records: Tuple[RunRecord, ...]
    workers: int
    parallel: bool
    elapsed: float
    #: Runs served from the run store instead of being simulated
    #: (always 0 when executed with ``cache`` off).
    cache_hits: int = 0
    #: Why the batch fell back to serial execution (``None`` if it
    #: did not) — see the class docstring.
    degraded_reason: Optional[str] = None
    #: Batch-scoped telemetry aggregate (``None`` unless a
    #: :mod:`repro.telemetry` session was active during execution).
    telemetry: Optional[TelemetrySummary] = None

    def payloads(self) -> List[Any]:
        """The per-run payloads, in submission order."""
        return [record.payload for record in self.records]

    def raise_on_error(self) -> "BatchResult":
        """Raise :class:`SimulationError` if any run failed."""
        failed = [record for record in self.records if not record.ok]
        if failed:
            first = failed[0]
            raise SimulationError(
                f"{len(failed)}/{len(self.records)} batch runs failed; "
                f"first failure (index {first.index}, tag {first.tag!r}): "
                f"{first.error}"
            )
        return self


def derive_seeds(base_seed: int, n: int) -> Tuple[int, ...]:
    """Expand one base seed into ``n`` decorrelated per-run seeds.

    Deterministic in ``(base_seed, n)`` and independent of execution
    order, so serial and parallel sweeps see the same seed list.  Built
    on :class:`numpy.random.SeedSequence`, whose spawn tree guarantees
    the derived streams are pairwise independent.

    Both arguments must be genuine integers (numpy integer scalars are
    fine); ``n`` must be non-negative (``n=0`` yields an empty tuple).
    Invalid inputs raise :class:`~repro.exceptions.ConfigurationError`
    up front rather than an opaque NumPy error from deep inside
    ``SeedSequence``.
    """
    try:
        base = operator.index(base_seed)
    except TypeError:
        raise ConfigurationError(
            f"base_seed must be an integer, got {base_seed!r} "
            f"({type(base_seed).__name__})"
        ) from None
    try:
        count = operator.index(n)
    except TypeError:
        raise ConfigurationError(
            f"n must be an integer, got {n!r} ({type(n).__name__})"
        ) from None
    if base < 0:
        raise ConfigurationError(f"base_seed must be >= 0, got {base}")
    if count < 0:
        raise ConfigurationError(f"n must be >= 0, got {count}")
    if count == 0:
        return ()
    state = np.random.SeedSequence(base).generate_state(count, np.uint32)
    return tuple(int(word) for word in state)


def _execute_spec(
    item: Tuple[int, RunSpec],
    postprocess: Optional[Postprocess] = None,
    submitted_at: Optional[float] = None,
) -> RunRecord:
    """Run one spec (in a worker or inline) and capture the outcome.

    ``submitted_at`` is the parent's ``time.time()`` at batch
    submission; the gap to the run actually starting is recorded as
    ``queue_wait`` (wall clocks are comparable across processes on one
    host, unlike ``perf_counter``).
    """
    index, spec = item
    queue_wait = (
        max(0.0, time.time() - submitted_at) if submitted_at is not None else 0.0
    )
    start = time.perf_counter()
    try:
        if isinstance(spec.scenario, PlatoonScenario):
            result: Any = PlatoonSimulation(
                spec.scenario, attack_enabled=spec.attack_enabled
            ).run()
        else:
            result = CarFollowingSimulation(
                spec.scenario,
                attack_enabled=spec.attack_enabled,
                defended=spec.defended,
            ).run()
        payload = result if postprocess is None else postprocess(spec, result)
        error = None
    except Exception as exc:  # captured into the record, re-raised by callers
        payload = None
        error = f"{type(exc).__name__}: {exc}"
    return RunRecord(
        index=index,
        tag=spec.tag,
        payload=payload,
        elapsed=time.perf_counter() - start,
        worker_pid=os.getpid(),
        error=error,
        queue_wait=queue_wait,
        backend_used="scalar",
    )


def _default_chunksize(n_specs: int, workers: int) -> int:
    """Chunk so each worker sees ~4 chunks (amortizes IPC, keeps the
    tail balanced when run times vary)."""
    return max(1, n_specs // (workers * 4))


def _run_serial(
    items: Sequence[Tuple[int, RunSpec]],
    postprocess: Optional[Postprocess],
    submitted_at: Optional[float] = None,
) -> List[RunRecord]:
    return [
        _execute_spec(item, postprocess, submitted_at=submitted_at)
        for item in items
    ]


#: Pool-infrastructure failures that justify re-running the batch
#: serially: the pool could not be created (sandboxed ``/dev/shm``,
#: fork limits, missing ``_multiprocessing``), broke mid-batch, or the
#: payloads could not cross the process boundary.  Everything else is
#: a real bug in the caller's code and must propagate.
_POOL_INFRA_ERRORS = (OSError, ImportError, BrokenExecutor, pickle.PicklingError)


def execute_batch(
    specs: Sequence[RunSpec],
    *,
    workers: int = 1,
    chunksize: Optional[int] = None,
    postprocess: Optional[Postprocess] = None,
    cache: Any = None,
    backend: Optional[str] = None,
) -> BatchResult:
    """Execute independent runs, fanning out over a process pool.

    Parameters
    ----------
    specs:
        The runs; results come back in the same order.
    workers:
        Process count for the scalar engine.  ``1`` (default) runs
        serially in-process; more than ``len(specs)`` is clamped.
        Vectorized groups always execute in the calling process.
    chunksize:
        Specs handed to a worker per dispatch; defaults to
        ``len(specs) // (workers * 4)`` (at least 1).
    postprocess:
        Optional reducer ``(spec, result) -> payload`` applied worker-
        side — use a module-level function so it pickles; lets sweeps
        return small summaries instead of full trace containers.
    cache:
        Run-store policy (see :mod:`repro.store.cache`): ``None`` /
        ``"off"`` (default) bypasses the store entirely;
        ``"readonly"`` serves fingerprint hits from the store;
        ``"readwrite"`` additionally stores computed misses.  A
        :class:`~repro.store.RunStore` or
        :class:`~repro.store.CacheBinding` selects an explicit store.
        Results are bit-identical in every mode; only wall-clock
        changes.  Uncacheable specs (platoons) always compute.
    backend:
        Engine selection (see :mod:`repro.simulation.knobs`):
        ``"scalar"``, ``"vectorized"``, ``"auto"``, or ``None``
        (default — reads :envvar:`REPRO_BACKEND`, else scalar).
        ``"vectorized"`` requires every spec to be vectorizable and
        raises :class:`~repro.exceptions.ConfigurationError` naming
        the blocking feature otherwise; ``"auto"`` silently runs
        non-qualifying specs on the scalar engine.  Results are
        bit-identical across backends; each record's
        :attr:`RunRecord.backend_used` says which engine ran it.

    Errors inside a run are captured per-record (``RunRecord.error``);
    call :meth:`BatchResult.raise_on_error` to surface them.  If the
    pool itself cannot be created or breaks on a pool-infrastructure
    error, the batch re-runs serially, warns, and records the cause in
    :attr:`BatchResult.degraded_reason`; other errors propagate.
    """
    workers = validate_workers(workers)
    backend = resolve_backend(backend)
    if not specs:
        return BatchResult(records=(), workers=workers, parallel=False, elapsed=0.0)

    tele = _telemetry.current()
    mark = tele.mark() if tele is not None else None

    binding = None
    if cache is not None and cache != "off":
        from repro.store.cache import resolve_cache

        binding = resolve_cache(cache)
    if binding is None:
        result = _execute_batch_plain(
            specs,
            workers=workers,
            chunksize=chunksize,
            postprocess=postprocess,
            backend=backend,
        )
    else:
        try:
            result = _execute_batch_cached(
                specs,
                binding,
                workers=workers,
                chunksize=chunksize,
                postprocess=postprocess,
                backend=backend,
            )
        finally:
            if binding.owns_store:
                binding.store.close()

    if tele is not None and mark is not None:
        _emit_batch_telemetry(tele, result)
        result = replace(result, telemetry=tele.summary_since(mark))
    return result


def _emit_batch_telemetry(tele: "_telemetry.Telemetry", result: BatchResult) -> None:
    """One ``batch.run`` span per executed spec, plus batch counters."""
    for record in result.records:
        tele.emit(
            "batch.run",
            record.elapsed,
            attrs={
                "index": record.index,
                "tag": record.tag,
                "worker_pid": record.worker_pid,
                "queue_wait": round(record.queue_wait, 6),
                "cached": record.cached,
                "ok": record.ok,
                "backend": record.backend_used,
            },
        )
    tele.incr("batch.batches")
    tele.incr("batch.runs", len(result.records))
    if result.cache_hits:
        tele.incr("batch.cache_hits", result.cache_hits)
    if result.degraded_reason is not None:
        tele.incr("batch.degraded")


def _execute_batch_plain(
    specs: Sequence[RunSpec],
    *,
    workers: int,
    chunksize: Optional[int],
    postprocess: Optional[Postprocess],
    backend: str = "scalar",
) -> BatchResult:
    """The store-free execution path (pre-cache behavior, unchanged)."""
    if backend != "scalar":
        return _execute_batch_vector(
            specs,
            workers=workers,
            chunksize=chunksize,
            postprocess=postprocess,
            backend=backend,
        )
    items = list(enumerate(specs))
    start = time.perf_counter()
    submitted_at = time.time()
    effective = min(workers, len(items))
    if effective == 1:
        records = _run_serial(items, postprocess, submitted_at=submitted_at)
        return BatchResult(
            records=tuple(records),
            workers=1,
            parallel=False,
            elapsed=time.perf_counter() - start,
        )

    degraded_reason: Optional[str] = None
    try:
        import functools
        from concurrent.futures import ProcessPoolExecutor

        call = functools.partial(
            _execute_spec, postprocess=postprocess, submitted_at=submitted_at
        )
        with ProcessPoolExecutor(max_workers=effective) as pool:
            records = list(
                pool.map(
                    call,
                    items,
                    chunksize=chunksize or _default_chunksize(len(items), effective),
                )
            )
        parallel = True
    except _POOL_INFRA_ERRORS as exc:
        # Pool unavailable or broken (sandboxed /dev/shm, fork limits,
        # unpicklable payloads, ...): degrade to the serial path, which
        # by construction produces identical results — but say so, and
        # record why.  Anything outside _POOL_INFRA_ERRORS is a real
        # bug and propagates rather than silently discarding the pool's
        # completed work.
        degraded_reason = f"{type(exc).__name__}: {exc}"
        warnings.warn(
            f"process pool unavailable or broken ({degraded_reason}); "
            f"re-running the {len(items)}-spec batch serially",
            RuntimeWarning,
            stacklevel=3,
        )
        records = _run_serial(items, postprocess, submitted_at=submitted_at)
        effective = 1
        parallel = False
    return BatchResult(
        records=tuple(records),
        workers=effective,
        parallel=parallel,
        elapsed=time.perf_counter() - start,
        degraded_reason=degraded_reason,
    )


def _run_vector_group(
    members: Sequence[Tuple[int, RunSpec]],
    postprocess: Optional[Postprocess],
) -> Optional[List[RunRecord]]:
    """Execute one homogeneous group on the vectorized engine.

    Returns the group's records (submission indices preserved), or
    ``None`` — after a ``RuntimeWarning`` — when the engine raised, so
    the caller re-runs the group on the scalar engine.  A vectorized
    group cannot attribute a mid-loop exception to a single run, while
    the scalar re-run captures errors per-record as usual (and, by the
    equivalence contract, produces the same payloads for the runs that
    succeed).
    """
    from repro.simulation.vectorized import run_group_vectorized

    start = time.perf_counter()
    try:
        results = run_group_vectorized([spec for _, spec in members])
    except Exception as exc:
        warnings.warn(
            f"vectorized group of {len(members)} runs failed "
            f"({type(exc).__name__}: {exc}); re-running the group on the "
            f"scalar engine",
            RuntimeWarning,
            stacklevel=5,
        )
        return None
    # One lock-step loop produced the whole group; attribute the group's
    # wall-clock evenly (per-run stage timing has no meaning here).
    per_run = (time.perf_counter() - start) / len(members)
    records: List[RunRecord] = []
    for (index, spec), result in zip(members, results):
        if postprocess is None:
            payload, error = result, None
        else:
            payload, error = _apply_postprocess(postprocess, spec, result)
        records.append(
            RunRecord(
                index=index,
                tag=spec.tag,
                payload=payload,
                elapsed=per_run,
                worker_pid=os.getpid(),
                error=error,
                backend_used="vectorized",
            )
        )
    return records


def _execute_batch_vector(
    specs: Sequence[RunSpec],
    *,
    workers: int,
    chunksize: Optional[int],
    postprocess: Optional[Postprocess],
    backend: str,
) -> BatchResult:
    """Dispatch a batch under ``backend='vectorized'`` or ``'auto'``.

    Specs are partitioned into homogeneous vector groups (same scenario
    up to ``sensor_seed``/``name``, same toggles — see
    :func:`repro.simulation.vectorized.group_key`) and a scalar
    remainder.  Strict ``"vectorized"`` refuses any remainder up front,
    naming the blocking feature; ``"auto"`` additionally leaves
    singleton groups on the scalar engine (no lock-step win for one
    run) and re-runs a group on the scalar engine if the vectorized
    engine raises.  The scalar remainder goes through the ordinary
    pool/serial machinery, so ``workers`` keeps its meaning there.
    """
    from repro.simulation.vectorized import group_key, vectorization_blocker

    start = time.perf_counter()
    items = list(enumerate(specs))
    groups: dict = {}
    scalar_items: List[Tuple[int, RunSpec]] = []
    for index, spec in items:
        blocker = vectorization_blocker(spec)
        if blocker is not None:
            if backend == "vectorized":
                tag = f" (tag {spec.tag!r})" if spec.tag else ""
                raise ConfigurationError(
                    f"backend='vectorized' cannot execute spec {index}{tag}: "
                    f"{blocker}; use backend='auto' to fall back to the "
                    f"scalar engine"
                )
            scalar_items.append((index, spec))
            continue
        groups.setdefault(group_key(spec), []).append((index, spec))
    if backend == "auto":
        # A singleton gains nothing from lock-step; keep it scalar.
        for key in [k for k, members in groups.items() if len(members) < 2]:
            scalar_items.extend(groups.pop(key))

    records: dict = {}
    for members in groups.values():
        group_records = _run_vector_group(members, postprocess)
        if group_records is None:
            scalar_items.extend(members)
        else:
            for record in group_records:
                records[record.index] = record

    parallel, degraded_reason, effective = False, None, 1
    if scalar_items:
        scalar_items.sort()
        inner = _execute_batch_plain(
            [spec for _, spec in scalar_items],
            workers=workers,
            chunksize=chunksize,
            postprocess=postprocess,
            backend="scalar",
        )
        parallel, degraded_reason = inner.parallel, inner.degraded_reason
        effective = inner.workers
        for (index, _), record in zip(scalar_items, inner.records):
            records[index] = replace(record, index=index)
    return BatchResult(
        records=tuple(records[index] for index, _ in items),
        workers=effective,
        parallel=parallel,
        elapsed=time.perf_counter() - start,
        degraded_reason=degraded_reason,
    )


def _apply_postprocess(
    postprocess: Postprocess, spec: RunSpec, result: Any
) -> Tuple[Any, Optional[str]]:
    """Run a reducer parent-side with worker-equivalent error capture."""
    try:
        return postprocess(spec, result), None
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}"


#: Per-worker-process cache of opened sharded stores, keyed by
#: (directory, shard count).  A pool worker re-used across chunks keeps
#: its shard connections open instead of reconnecting per run.
_WORKER_STORES: dict = {}


def _worker_store(path: str, shards: int) -> Any:
    key = (path, shards)
    store = _WORKER_STORES.get(key)
    if store is None:
        from repro.store.sharded import ShardedRunStore

        store = ShardedRunStore(path, shards=shards)
        _WORKER_STORES[key] = store
    return store


@dataclass(frozen=True)
class _StoreWritingPostprocess:
    """Worker-side store writer wrapped around the user's reducer.

    With a single-file store, cache-aware batches keep every write in
    the parent (one WAL file serializes its writers anyway) — which
    also forces raw :class:`SimulationResult` payloads across the
    process boundary.  A sharded store flips both costs: this wrapper
    runs inside the pool worker, writes the freshly computed result
    into the worker's own shard connection (fingerprint routing means
    distinct shards never contend), and only then applies the user's
    reducer — so the parent receives the reduced payload and performs
    no store writes at all.

    Picklable by construction (the store travels as its directory path
    + shard count and is reopened lazily per worker process via
    :data:`_WORKER_STORES`).  Under serial degradation the wrapper
    simply runs in the parent process and stays correct.  A store
    write failure fails the run (captured per-record like any other
    run error).
    """

    path: str
    shards: int
    postprocess: Optional[Postprocess] = None

    def __call__(self, spec: RunSpec, result: Any) -> Any:
        if isinstance(result, SimulationResult):
            from repro.simulation.spec import scenario_to_dict
            from repro.store.fingerprint import run_fingerprint

            fingerprint = run_fingerprint(spec)
            if fingerprint is not None:
                _worker_store(self.path, self.shards).put(
                    fingerprint,
                    result,
                    spec_dict=scenario_to_dict(spec.scenario),
                    attack_enabled=spec.attack_enabled,
                    defended=spec.defended,
                    sensor_seed=spec.scenario.sensor_seed,
                    horizon=spec.scenario.horizon,
                )
        if self.postprocess is None:
            return result
        return self.postprocess(spec, result)


def _execute_batch_cached(
    specs: Sequence[RunSpec],
    binding: Any,
    *,
    workers: int,
    chunksize: Optional[int],
    postprocess: Optional[Postprocess],
    backend: str = "scalar",
) -> BatchResult:
    """Serve fingerprint hits from the run store; compute the misses.

    With a single-file store the store is only ever touched from the
    calling process — workers never hold a SQLite connection, and in
    ``readwrite`` mode they return raw
    :class:`~repro.simulation.results.SimulationResult` payloads (any
    ``postprocess`` is applied parent-side after the store write).  A
    store advertising ``concurrent_writers`` (the sharded store)
    instead has each pool worker write its own shards directly via
    :class:`_StoreWritingPostprocess` — the reducer then runs
    worker-side and raw payloads never cross the process boundary.
    Either way a sweep's reducer sees the same values whether its
    input was computed or replayed.
    """
    from repro.store.fingerprint import run_fingerprint

    start = time.perf_counter()
    items = list(enumerate(specs))
    records: dict = {}
    misses: List[Tuple[int, RunSpec, Optional[str]]] = []
    for index, spec in items:
        lookup_start = time.perf_counter()
        fingerprint = run_fingerprint(spec)
        hit = binding.store.get(fingerprint) if fingerprint is not None else None
        if hit is None:
            misses.append((index, spec, fingerprint))
            continue
        if postprocess is None:
            payload, error = hit, None
        else:
            payload, error = _apply_postprocess(postprocess, spec, hit)
        records[index] = RunRecord(
            index=index,
            tag=spec.tag,
            payload=payload,
            elapsed=time.perf_counter() - lookup_start,
            worker_pid=os.getpid(),
            error=error,
            cached=True,
        )

    inner_workers, parallel = 1, False
    degraded_reason: Optional[str] = None
    if misses:
        # Stores that support concurrent multi-process writers (the
        # sharded store) let each worker write its own shards and ship
        # only the reduced payload back; single-file stores keep every
        # write in the parent, which also needs the raw result back.
        worker_writes = (
            binding.writes
            and workers > 1
            and backend == "scalar"
            and getattr(binding.store, "concurrent_writers", False)
        )
        if worker_writes:
            binding.store.prepare()
            worker_postprocess: Optional[Postprocess] = _StoreWritingPostprocess(
                path=str(binding.store.path),
                shards=binding.store.shards,
                postprocess=postprocess,
            )
        else:
            worker_postprocess = None if binding.writes else postprocess
        inner = _execute_batch_plain(
            [spec for _, spec, _ in misses],
            workers=workers,
            chunksize=chunksize,
            postprocess=worker_postprocess,
            backend=backend,
        )
        inner_workers, parallel = inner.workers, inner.parallel
        degraded_reason = inner.degraded_reason
        for (index, spec, fingerprint), record in zip(misses, inner.records):
            payload, error = record.payload, record.error
            if worker_writes:
                # The worker already stored the result and applied the
                # user's reducer; count the write parent-side (worker
                # processes have no telemetry session).
                if record.ok and fingerprint is not None:
                    _telemetry.incr("store.worker_writes")
            elif binding.writes and record.ok:
                if fingerprint is not None and isinstance(
                    payload, SimulationResult
                ):
                    from repro.simulation.spec import scenario_to_dict

                    binding.store.put(
                        fingerprint,
                        payload,
                        spec_dict=scenario_to_dict(spec.scenario),
                        attack_enabled=spec.attack_enabled,
                        defended=spec.defended,
                        sensor_seed=spec.scenario.sensor_seed,
                        horizon=spec.scenario.horizon,
                    )
                if postprocess is not None:
                    payload, error = _apply_postprocess(
                        postprocess, spec, payload
                    )
            records[index] = RunRecord(
                index=index,
                tag=spec.tag,
                payload=payload,
                elapsed=record.elapsed,
                worker_pid=record.worker_pid,
                error=error,
                queue_wait=record.queue_wait,
                backend_used=record.backend_used,
            )

    return BatchResult(
        records=tuple(records[index] for index, _ in items),
        workers=inner_workers,
        parallel=parallel,
        elapsed=time.perf_counter() - start,
        cache_hits=len(items) - len(misses),
        degraded_reason=degraded_reason,
    )


def run_many(
    specs: Sequence[RunSpec],
    *,
    workers: int = 1,
    chunksize: Optional[int] = None,
    postprocess: Optional[Postprocess] = None,
    cache: Any = None,
    backend: Optional[str] = None,
) -> List[Any]:
    """Execute a batch and return just the ordered payloads.

    Raises :class:`SimulationError` if any run failed.  ``cache``
    selects the run-store policy and ``backend`` the engine (see
    :func:`execute_batch` — both knobs have identical semantics here).
    """
    return (
        execute_batch(
            specs,
            workers=workers,
            chunksize=chunksize,
            postprocess=postprocess,
            cache=cache,
            backend=backend,
        )
        .raise_on_error()
        .payloads()
    )
