"""Span / counter primitives of the telemetry subsystem.

The whole API is gated on a module-level active :class:`Telemetry`
instance.  When none is installed (the default), every entry point —
:func:`span`, :func:`incr`, :func:`current` — reduces to one global
read plus a ``None`` check, so instrumented hot paths (the engine step
loop, the radar sensing path) pay effectively nothing; the measured
bound is asserted by ``benchmarks/bench_telemetry_overhead.py``.

When a session is active, finished spans are collected in memory (for
:meth:`Telemetry.summary`) and, if a trace path was given, appended to
a JSONL file — one JSON object per line, ``kind: "span"`` for timed
events and a final ``kind: "counters"`` record written on close.  The
file is only ever written by the process that opened it (forked pool
workers inherit the handle but are fenced off by a pid check).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "Telemetry",
    "Span",
    "current",
    "enabled",
    "enable",
    "disable",
    "session",
    "span",
    "incr",
]

PathLike = Union[str, "Path"]

#: Snapshot of a session's progress — pass to
#: :meth:`Telemetry.summary_since` to aggregate only what happened
#: after :meth:`Telemetry.mark`.
Mark = Tuple[int, Dict[str, float]]


class _NullSpan:
    """The disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: Shared singleton returned by :func:`span` when telemetry is off.
NULL_SPAN = _NullSpan()


class Span:
    """One timed region, opened by :meth:`Telemetry.span`.

    Use as a context manager; :meth:`set` attaches attributes that are
    only known mid-flight (e.g. whether a lookup hit the cache).
    """

    __slots__ = ("_telemetry", "name", "attrs", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        end = time.perf_counter()
        self._telemetry.emit(
            self.name,
            end - self._start,
            attrs=self.attrs,
            start=self._start - self._telemetry.origin,
        )

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self


class Telemetry:
    """One tracing/metrics session.

    Collects finished span events (flat dicts with reserved keys
    ``kind`` / ``name`` / ``t`` / ``dur``) and monotonic counters, and
    optionally mirrors both to a JSONL trace file.
    """

    def __init__(self, trace_path: Optional[PathLike] = None) -> None:
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self.origin = time.perf_counter()
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self._fh: Optional[IO[str]] = None
        self._pid = os.getpid()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a timed region (use as a context manager)."""
        return Span(self, name, attrs)

    def emit(
        self,
        name: str,
        duration: float,
        attrs: Optional[Dict[str, Any]] = None,
        start: Optional[float] = None,
    ) -> None:
        """Record one finished span event.

        ``start`` is the offset (seconds) from the session origin;
        pass ``None`` for events reconstructed after the fact (e.g.
        per-run batch spans assembled from worker records).
        """
        event: Dict[str, Any] = {"kind": "span", "name": name}
        if start is not None:
            event["t"] = round(start, 6)
        event["dur"] = duration
        if attrs:
            event.update(attrs)
        self.events.append(event)
        self._write(event)

    def incr(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the counter called ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- aggregation ---------------------------------------------------

    def mark(self) -> Mark:
        """Snapshot the session (see :meth:`summary_since`)."""
        return len(self.events), dict(self.counters)

    def summary(self):
        """Aggregate everything recorded so far."""
        from repro.telemetry.summary import summarize

        return summarize(self.events, self.counters)

    def summary_since(self, mark: Mark):
        """Aggregate only the events/counter deltas after ``mark``."""
        from repro.telemetry.summary import summarize

        n_events, counters_before = mark
        deltas = {
            name: value - counters_before.get(name, 0)
            for name, value in self.counters.items()
            if value != counters_before.get(name, 0)
        }
        return summarize(self.events[n_events:], deltas)

    # -- trace file ----------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        if self.trace_path is None or os.getpid() != self._pid:
            return
        if self._fh is None:
            self.trace_path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.trace_path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def close(self) -> None:
        """Flush the counters record and release the trace file."""
        if self.trace_path is not None and self.counters:
            self._write({"kind": "counters", "counters": dict(self.counters)})
        if self._fh is not None and os.getpid() == self._pid:
            self._fh.close()
        self._fh = None


# ----------------------------------------------------------------------
# module-level gate (the fast path every instrumented site goes through)
# ----------------------------------------------------------------------

_ACTIVE: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """The active session, or ``None`` when telemetry is off."""
    return _ACTIVE


def enabled() -> bool:
    """Whether a telemetry session is active."""
    return _ACTIVE is not None


def enable(trace_path: Optional[PathLike] = None) -> Telemetry:
    """Install (and return) a fresh session as the active one.

    Any previously active session is closed first.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = Telemetry(trace_path)
    return _ACTIVE


def disable() -> Optional[Telemetry]:
    """Deactivate and close the active session; returns it (events and
    counters stay readable in memory) or ``None`` if none was active."""
    global _ACTIVE
    active, _ACTIVE = _ACTIVE, None
    if active is not None:
        active.close()
    return active


@contextmanager
def session(trace_path: Optional[PathLike] = None):
    """Scoped telemetry: enable on entry, disable on exit.

    >>> from repro import telemetry
    >>> with telemetry.session() as tele:   # doctest: +SKIP
    ...     repro.run(...)
    ...     print(tele.summary().render())
    """
    tele = enable(trace_path)
    try:
        yield tele
    finally:
        global _ACTIVE
        if _ACTIVE is tele:
            disable()
        else:  # someone re-enabled mid-session; just close ours
            tele.close()


def span(name: str, **attrs: Any):
    """Open a span on the active session (no-op when telemetry is off)."""
    active = _ACTIVE
    if active is None:
        return NULL_SPAN
    return active.span(name, **attrs)


def incr(name: str, n: float = 1) -> None:
    """Bump a counter on the active session (no-op when telemetry is off)."""
    active = _ACTIVE
    if active is not None:
        active.incr(name, n)
