"""Extension bench — warm-vs-cold speedup of the run store.

Builds the full markdown report (4 panel triples plus two 8-seed
Monte-Carlo robustness sweeps — 28 closed-loop runs) three times
against a fresh temporary store: once with the cache off (the
pre-store baseline), once cold through a ``readwrite`` binding
(computes every run and persists it), and once warm (every run replays
from the store).  Asserts the tentpole contract of :mod:`repro.store`:

* all three report texts are **byte-identical** — caching changes
  wall-clock only, never output;
* the warm build is at least 10x faster than the cold one (28 SQLite
  lookups plus zlib decodes vs 28 simulated 300 s closed loops).
"""

import time

from conftest import emit
from repro.analysis import render_table
from repro.analysis.report import build_report
from repro.store import RunStore

SPEEDUP_FLOOR = 10.0
#: Robustness-section seeds: a heavier, more realistic report workload
#: (4 panel triples + two 8-seed Monte-Carlo sweeps = 28 runs).
SEEDS = tuple(range(8))


def bench_cache_speedup(benchmark, tmp_path_factory):
    store = RunStore(tmp_path_factory.mktemp("runstore") / "runstore.sqlite")

    def timed(cache):
        start = time.perf_counter()
        text = build_report(seeds=SEEDS, cache=cache)
        return text, time.perf_counter() - start

    def sweep():
        baseline, t_off = timed("off")
        cold, t_cold = timed(store)
        warm, t_warm = timed(store)
        return baseline, cold, warm, t_off, t_cold, t_warm

    baseline, cold, warm, t_off, t_cold, t_warm = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    # Caching must never change the report, only its cost.
    assert cold == baseline
    assert warm == baseline

    stats = store.stats()
    # 4 panel triples + 2 scenarios x 8 Monte-Carlo seeds.
    assert stats.entries == 12 + 2 * len(SEEDS)

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR}x warm speedup, measured {speedup:.1f}x "
        f"(cold {t_cold:.2f}s, warm {t_warm:.3f}s)"
    )

    emit(
        "cache_speedup",
        render_table(
            [
                {
                    "configuration": "cache off",
                    "wall_s": round(t_off, 3),
                    "stored_runs": 0,
                    "identical_report": True,
                },
                {
                    "configuration": "cold (compute + store)",
                    "wall_s": round(t_cold, 3),
                    "stored_runs": stats.entries,
                    "identical_report": cold == baseline,
                },
                {
                    "configuration": "warm (replay)",
                    "wall_s": round(t_warm, 3),
                    "stored_runs": stats.entries,
                    "identical_report": warm == baseline,
                },
                {
                    "configuration": f"warm speedup (floor {SPEEDUP_FLOOR:.0f}x)",
                    "wall_s": round(speedup, 1),
                    "stored_runs": None,
                    "identical_report": None,
                },
            ],
            title="Run store: full report build, cold vs warm "
            f"({stats.payload_bytes / 1024:.0f} KiB stored payload)",
        ),
    )
    store.close()
