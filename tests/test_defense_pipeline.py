"""Wiring of the defense strategies through spec, facade, CLI, backends.

The strategy knob travels a long path — DefenseConfig -> declarative
spec (version 2) -> store fingerprint -> facade run() -> CLI -> the
vectorized-backend blocker -> the defense-comparison table.  These
tests pin each hop, including determinism of the comparison across
backend selection and cache replay.
"""

import io
from dataclasses import replace

import pytest

import repro
from repro.analysis.defense_comparison import compare_defenses, defense_variants
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.simulation.batch import RunSpec, execute_batch
from repro.simulation.io import result_from_dict, result_to_dict
from repro.simulation.scenario import DEFENSE_STRATEGIES
from repro.simulation.spec import (
    READABLE_SPEC_VERSIONS,
    SPEC_VERSION,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.simulation.vectorized import vectorization_blocker
from repro.store import RunStore

#: Short-horizon scenario: no attack window, fast runs.
FAST = repro.fig2_scenario("dos", horizon=30.0)


def strategy_scenario(strategy, scenario=FAST):
    return scenario.with_overrides(
        defense=replace(scenario.defense, strategy=strategy)
    )


class TestSpecRoundTrip:
    def test_version_bumped_and_stamped(self):
        assert SPEC_VERSION == 2
        assert scenario_to_dict(FAST)["spec_version"] == 2

    def test_defense_fields_round_trip(self):
        scenario = FAST.with_overrides(
            defense=replace(
                FAST.defense,
                strategy="combined",
                secure_window=6,
                secure_sparsity=0,
                secure_residual_threshold=0.5,
                filter_headway=1.0,
                filter_minimum_gap=4.0,
                filter_gamma=0.25,
                filter_leader_accel_bound=3.0,
            )
        )
        restored = scenario_from_dict(scenario_to_dict(scenario))
        # Profile objects don't define __eq__; dict form is canonical.
        assert scenario_to_dict(restored) == scenario_to_dict(scenario)
        assert restored.defense == scenario.defense
        assert restored.defense.strategy == "combined"
        assert restored.defense.filter_gamma == 0.25

    def test_version_1_specs_still_read(self):
        spec = scenario_to_dict(FAST)
        spec["spec_version"] = 1
        # A v1 writer never emitted the strategy knobs.
        for key in list(spec["defense"]):
            if key.startswith(("secure_", "filter_")) or key == "strategy":
                del spec["defense"][key]
        restored = scenario_from_dict(spec)
        assert restored.defense.strategy == "rls"

    def test_unknown_version_rejected(self):
        spec = scenario_to_dict(FAST)
        spec["spec_version"] = max(READABLE_SPEC_VERSIONS) + 1
        with pytest.raises(ConfigurationError, match="spec_version"):
            scenario_from_dict(spec)

    def test_strategy_changes_fingerprint(self):
        # The strategy must fold into the store fingerprint or cached
        # rls runs would replay as secure-reconstruction runs.
        from repro.store.fingerprint import run_fingerprint

        plain = run_fingerprint(RunSpec(FAST, defended=True))
        secure = run_fingerprint(
            RunSpec(strategy_scenario("secure_reconstruction"), defended=True)
        )
        assert plain is not None and secure is not None
        assert plain != secure


class TestFacadeKnob:
    def test_defense_override_applies(self):
        result = repro.run(FAST, defense="safety_filter")
        baseline = repro.run(FAST)
        # Attack-free short horizon: the filter is transparent, so the
        # runs agree — the knob's effect is visible via the spec.
        assert result.min_gap() == pytest.approx(baseline.min_gap())

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="defense must be one of"):
            repro.run(FAST, defense="firewall")

    def test_platoon_rejected(self):
        from repro.simulation.platoon import PlatoonScenario
        from repro.vehicle import ConstantAccelerationProfile

        scenario = PlatoonScenario(
            leader_profile=ConstantAccelerationProfile(-0.05),
            n_followers=2,
            horizon=10.0,
        )
        with pytest.raises(ConfigurationError, match="platoon"):
            repro.run(scenario, defense="safety_filter")

    def test_all_strategies_run(self):
        for strategy in DEFENSE_STRATEGIES:
            result = repro.run(FAST, defense=strategy)
            assert not result.collided, strategy


class TestCLI:
    def run_cli(self, argv):
        out, err = io.StringIO(), io.StringIO()
        code = main(argv, out=out, err=err)
        return code, out.getvalue(), err.getvalue()

    def test_run_accepts_defense_flag(self):
        code, text, _ = self.run_cli(
            ["run", "fig2a", "--defense", "safety_filter", "--no-plot"]
        )
        assert code == 0
        assert "fig2a" in text

    def test_run_rejects_unknown_defense(self):
        with pytest.raises(SystemExit):
            self.run_cli(["run", "fig2a", "--defense", "firewall"])

    def test_serve_accepts_max_jobs_flag(self):
        # Parse-level check only (the service tests exercise runtime
        # behavior): an invalid value is rejected by argparse.
        with pytest.raises(SystemExit):
            self.run_cli(["serve", "--max-jobs", "0"])


class TestVectorizedBlocker:
    def test_stateful_strategies_block(self):
        for strategy in ("secure_reconstruction", "combined"):
            spec = RunSpec(strategy_scenario(strategy), defended=True)
            reason = vectorization_blocker(spec)
            assert reason is not None and strategy in reason

    def test_stateless_strategies_not_blocked(self):
        # The CBF clamp is a pure per-step function of the lock-step
        # state, so "safety_filter" vectorizes like "rls".
        for strategy in ("rls", "safety_filter"):
            spec = RunSpec(strategy_scenario(strategy), defended=True)
            reason = vectorization_blocker(spec)
            assert reason is None or "strategy" not in reason

    def test_undefended_never_blocked_by_strategy(self):
        spec = RunSpec(
            strategy_scenario("secure_reconstruction"), defended=False
        )
        reason = vectorization_blocker(spec)
        assert reason is None or "strategy" not in reason


class TestDefenseStats:
    """Subset-search counters flow estimator -> result -> io -> store."""

    def test_populated_for_secure_reconstruction(self):
        result = repro.run(strategy_scenario("secure_reconstruction"))
        stats = result.defense_stats
        assert stats is not None
        assert stats["windows_solved"] > 0
        assert stats["subsets_searched"] > stats["subsets_pruned"] >= 0
        assert stats["geometry_hits"] > 0  # incremental mode by default

    def test_none_without_reconstruction(self):
        assert repro.run(FAST).defense_stats is None
        assert (
            repro.run(strategy_scenario("safety_filter")).defense_stats is None
        )

    def test_round_trips_through_io(self):
        result = repro.run(strategy_scenario("combined"))
        restored = result_from_dict(result_to_dict(result))
        assert restored.defense_stats == result.defense_stats

    def test_round_trips_through_store(self, tmp_path):
        spec = RunSpec(strategy_scenario("secure_reconstruction"), defended=True)
        with RunStore(tmp_path / "runs.sqlite") as store:
            cold = execute_batch([spec], cache=store)
            warm = execute_batch([spec], cache=store)
        assert warm.records[0].cached
        assert cold.records[0].payload.defense_stats is not None
        assert (
            warm.records[0].payload.defense_stats
            == cold.records[0].payload.defense_stats
        )

    def test_comparison_rows_surface_subset_counts(self):
        rows = {row["defense"]: row for row in compare_defenses(FAST)}
        for label in ("secure_reconstruction", "combined"):
            assert rows[label]["subsets_searched"] > 0
            assert rows[label]["subsets_pruned"] >= 0
        for label in ("undefended", "rls", "safety_filter"):
            assert rows[label]["subsets_searched"] is None
            assert rows[label]["subsets_pruned"] is None


class TestComparisonDeterminism:
    def test_variant_labels_stable(self):
        labels = [label for label, _, _ in defense_variants(FAST)]
        assert labels == [
            "undefended",
            "rls",
            "dead_reckoning",
            "secure_reconstruction",
            "safety_filter",
            "safety_filter (detection off)",
            "combined",
        ]

    def test_backend_selection_invariant(self):
        # backend="auto" may vectorize the eligible variants (undefended,
        # rls); the table must not change.
        scalar = compare_defenses(FAST, backend="scalar")
        auto = compare_defenses(FAST, backend="auto")
        assert scalar == auto

    def test_vectorized_demand_downgraded(self):
        # A hard vectorized demand could never run the stateful
        # variants; compare_defenses downgrades it to auto.
        rows = compare_defenses(FAST, backend="vectorized")
        assert rows == compare_defenses(FAST, backend="auto")

    def test_cache_replay_identical(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        try:
            cold = compare_defenses(FAST, cache=store)
            warm = compare_defenses(FAST, cache=store)
            assert cold == warm == compare_defenses(FAST, cache="off")
        finally:
            store.close()
