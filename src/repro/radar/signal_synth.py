"""Complex baseband beat-signal synthesis.

This is the substitute for the MATLAB Phased Array System Toolbox used
by the paper (DESIGN.md §3).  After dechirping, a point target appears
in the receiver as a single complex sinusoid at the beat frequency with
amplitude set by the radar range equation; thermal noise and jamming
appear as complex AWGN.  Synthesizing exactly that is sufficient for
everything downstream (root-MUSIC extraction, Eqns 7-8 inversion,
presence detection and the CRA check) because those stages only observe
the dechirped baseband.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["synthesize_beat_signal", "complex_awgn", "signal_power", "combine_components"]


def complex_awgn(n_samples: int, power: float, rng: np.random.Generator) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with total power ``power``.

    Each sample has variance ``power`` split evenly between the real and
    imaginary parts.
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    if power < 0.0:
        raise ValueError(f"noise power must be >= 0, got {power}")
    scale = np.sqrt(power / 2.0)
    return scale * (
        rng.standard_normal(n_samples) + 1j * rng.standard_normal(n_samples)
    )


def synthesize_beat_signal(
    frequency: float,
    power: float,
    n_samples: int,
    sample_rate: float,
    rng: Optional[np.random.Generator] = None,
    noise_power: float = 0.0,
    phase: Optional[float] = None,
) -> np.ndarray:
    """Synthesize one dechirped echo: a complex sinusoid plus AWGN.

    Parameters
    ----------
    frequency:
        Beat frequency in hertz; may be negative (complex baseband).
        Must satisfy ``|frequency| < sample_rate / 2``.
    power:
        Sinusoid power (i.e. squared amplitude), watts.
    n_samples:
        Number of complex samples.
    sample_rate:
        Sample rate in hertz.
    rng:
        Random generator for the noise and the random initial phase;
        required when ``noise_power > 0`` or ``phase`` is None.
    noise_power:
        Total complex AWGN power to add, watts.
    phase:
        Initial phase in radians; drawn uniformly when None.
    """
    if sample_rate <= 0.0:
        raise ValueError(f"sample_rate must be positive, got {sample_rate}")
    if abs(frequency) >= sample_rate / 2.0:
        raise ValueError(
            f"beat frequency {frequency:.1f} Hz exceeds Nyquist "
            f"{sample_rate / 2.0:.1f} Hz"
        )
    if power < 0.0:
        raise ValueError(f"signal power must be >= 0, got {power}")
    needs_rng = noise_power > 0.0 or phase is None
    if needs_rng and rng is None:
        raise ValueError("an rng is required for noise or a random phase")
    if phase is None:
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
    t = np.arange(n_samples) / sample_rate
    signal = np.sqrt(power) * np.exp(1j * (2.0 * np.pi * frequency * t + phase))
    if noise_power > 0.0:
        signal = signal + complex_awgn(n_samples, noise_power, rng)
    return signal


def combine_components(components: Iterable[np.ndarray]) -> np.ndarray:
    """Sum an iterable of equal-length complex component signals.

    Returns an empty array when the iterable is empty.
    """
    parts: Sequence[np.ndarray] = [np.asarray(c, dtype=complex) for c in components]
    if not parts:
        return np.zeros(0, dtype=complex)
    length = len(parts[0])
    for part in parts:
        if len(part) != length:
            raise ValueError("all components must have the same length")
    return np.sum(parts, axis=0)


def signal_power(signal: np.ndarray) -> float:
    """Mean per-sample power of a complex signal."""
    signal = np.asarray(signal)
    if signal.size == 0:
        return 0.0
    return float(np.mean(np.abs(signal) ** 2))
