"""Discrete-time LTI system substrate (paper §3, Eqns 1-4).

The paper models the autonomous CPS as a discrete-time linear
time-invariant system without process noise:

    x[k+1] = A x[k] + B u[k]
    y[k]   = C x[k] + v[k],      v ~ N(0, R)

and, under attack (Eqns 3-4), with an additive corruption ``y_a`` on the
output.  This subpackage provides the plant model, measurement-noise
models, observability/controllability analysis, and the discretization
helpers used to turn the ACC lower-level transfer function (Eqn 14) into
state-space form.
"""

from repro.lti.system import LTISystem, simulate_lti
from repro.lti.noise import GaussianNoise, NoNoise, MeasurementNoise
from repro.lti.observability import (
    observability_matrix,
    controllability_matrix,
    is_observable,
    is_controllable,
    is_sparse_observable,
    sparse_observability_failures,
    unobservable_subspace_dimension,
)
from repro.lti.discretize import (
    first_order_lag_discrete,
    zoh_discretize,
    double_integrator_discrete,
)

__all__ = [
    "LTISystem",
    "simulate_lti",
    "GaussianNoise",
    "NoNoise",
    "MeasurementNoise",
    "observability_matrix",
    "controllability_matrix",
    "is_observable",
    "is_controllable",
    "is_sparse_observable",
    "sparse_observability_failures",
    "unobservable_subspace_dimension",
    "first_order_lag_discrete",
    "zoh_discretize",
    "double_integrator_discrete",
]
