"""Registry of every reproduced experiment (tables, figures, ablations).

The registry is the machine-readable version of DESIGN.md §5: one entry
per paper table/figure plus the extension studies, each mapping to the
benchmark file that regenerates it and the modules it exercises.  The
CLI (``python -m repro list``) and EXPERIMENTS.md are generated from it,
and a test asserts that every registered bench file actually exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.tables import render_table

__all__ = ["Experiment", "REGISTRY", "get_experiment", "experiments_table"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment.

    Attributes
    ----------
    identifier:
        Short id (``fig2a``, ``results-detection``, ...).
    title:
        What the paper (or extension) shows.
    paper_claim:
        The quantitative/qualitative claim being reproduced; empty for
        extension studies.
    workload:
        Scenario and parameters, in one line.
    bench:
        Benchmark file under ``benchmarks/`` that regenerates it.
    modules:
        Key library modules exercised.
    kind:
        ``"figure"``, ``"table"``, ``"ablation"`` or ``"extension"``.
    """

    identifier: str
    title: str
    paper_claim: str
    workload: str
    bench: str
    modules: Tuple[str, ...]
    kind: str = "figure"


REGISTRY: Tuple[Experiment, ...] = (
    Experiment(
        identifier="fig2a",
        title="DoS attack + detection/estimation, constant leader deceleration",
        paper_claim="Spurious high readings after k=182; detected at k=182; "
        "estimation keeps the follower safe",
        workload="v_L0=65 mph, v_set=67 mph, d0=100 m, leader -0.1082 m/s², "
        "jammer 100 mW/10 dBi/155 MHz on [182,300] s",
        bench="bench_fig2a_dos_constant_decel.py",
        modules=("radar", "attacks.dos", "core", "vehicle", "simulation"),
        kind="figure",
    ),
    Experiment(
        identifier="fig2b",
        title="Delay-injection attack + defense, constant leader deceleration",
        paper_claim="+6 m spoof from k=180 makes the follower under-brake; "
        "detected at k=182; estimation restores safe spacing",
        workload="Same scenario; delay attack +6 m on [180,300] s",
        bench="bench_fig2b_delay_constant_decel.py",
        modules=("radar", "attacks.delay", "core", "vehicle", "simulation"),
        kind="figure",
    ),
    Experiment(
        identifier="fig3a",
        title="DoS attack, leader decelerates then accelerates",
        paper_claim="Same DoS shape with the phase-switching leader",
        workload="Leader -0.1082 m/s² then +0.012 m/s² (switch at 150 s)",
        bench="bench_fig3a_dos_decel_accel.py",
        modules=("radar", "attacks.dos", "core", "vehicle", "simulation"),
        kind="figure",
    ),
    Experiment(
        identifier="fig3b",
        title="Delay attack, leader decelerates then accelerates",
        paper_claim="Follower's margin shrinks but CRA still detects at k=182",
        workload="Phase-switching leader; delay attack +6 m on [180,300] s",
        bench="bench_fig3b_delay_decel_accel.py",
        modules=("radar", "attacks.delay", "core", "vehicle", "simulation"),
        kind="figure",
    ),
    Experiment(
        identifier="results-detection",
        title="Detection times and confusion counts",
        paper_claim="Both attacks detected at k=182 s; zero false positives "
        "and zero false negatives",
        workload="All four figure scenarios + a stealthy 60 s spoof ramp; "
        "CRA vs a χ²-residual baseline",
        bench="bench_results_detection.py",
        modules=("core.detector", "core.baselines", "analysis.metrics"),
        kind="table",
    ),
    Experiment(
        identifier="results-rls-runtime",
        title="RLS run-time over one attack window",
        paper_claim="1.2e7 ns (jamming) / 1.3e7 ns (delay) in MATLAB; "
        "O(n²) per update",
        workload="182 trusted samples + 118 forecasts; parameter-count sweep",
        bench="bench_results_rls_runtime.py",
        modules=("core.rls", "core.predictor"),
        kind="table",
    ),
    Experiment(
        identifier="jammer-feasibility",
        title="Eqn 11 jamming-success criterion",
        paper_claim="Attack succeeds iff P_r/P_jammer < 1; the paper's "
        "jammer swamps the echo at the experiment distances",
        workload="Jammer power × distance sweep; burn-through crossover",
        bench="bench_jammer_feasibility.py",
        modules=("radar.link_budget", "attacks.dos"),
        kind="table",
    ),
    Experiment(
        identifier="ablation-forgetting",
        title="RLS forgetting factor λ and initialization δ",
        paper_claim="",
        workload="λ ∈ {0.85..1.0} × δ ∈ {1, 100} on the fig2a scenario",
        bench="bench_ablation_forgetting.py",
        modules=("core.rls", "core.predictor"),
        kind="ablation",
    ),
    Experiment(
        identifier="ablation-challenge-rate",
        title="Challenge rate vs detection latency",
        paper_claim="",
        workload="PRBS schedules at rates 0.02-0.2, 3 LFSR seeds",
        bench="bench_ablation_challenge_rate.py",
        modules=("core.cra", "core.detector"),
        kind="ablation",
    ),
    Experiment(
        identifier="ablation-estimators",
        title="Recovery estimator choice",
        paper_claim="",
        workload="dead-reckoning vs per-channel RLS vs hold-last vs Kalman, "
        "4 sensor seeds",
        bench="bench_ablation_estimators.py",
        modules=("core.dead_reckoning", "core.predictor", "core.baselines"),
        kind="ablation",
    ),
    Experiment(
        identifier="ablation-regressors",
        title="Regressor basis for the leader-velocity RLS",
        paper_claim="",
        workload="polynomial degree 0-2 and AR(2)/AR(4) bases",
        bench="bench_ablation_regressors.py",
        modules=("core.regressors", "core.dead_reckoning"),
        kind="ablation",
    ),
    Experiment(
        identifier="ablation-headway",
        title="CTH headway time τ_h",
        paper_claim="",
        workload="τ_h ∈ {1.5, 2, 3, 4} s on the fig2a scenario",
        bench="bench_ablation_headway.py",
        modules=("vehicle.params", "vehicle.upper_controller"),
        kind="ablation",
    ),
    Experiment(
        identifier="noise-sensitivity",
        title="Sensor-noise sensitivity of the defense",
        paper_claim="",
        workload="0.5-4x the LRR2 accuracy-spec noise, 3 seeds",
        bench="bench_noise_sensitivity.py",
        modules=("radar.sensor", "core.dead_reckoning"),
        kind="extension",
    ),
    Experiment(
        identifier="radar-accuracy",
        title="Signal-chain accuracy vs distance (substrate validation)",
        paper_claim="",
        workload="25 Monte-Carlo draws per distance over the 2-200 m "
        "envelope, full synthesis + root-MUSIC chain",
        bench="bench_radar_accuracy.py",
        modules=("radar.signal_synth", "radar.music", "radar.receiver"),
        kind="extension",
    ),
    Experiment(
        identifier="detection-baselines",
        title="Detector zoo vs attack stealth",
        paper_claim="",
        workload="Spoof ramp time 0-118 s; CRA vs χ² vs CUSUM vs safety "
        "envelope",
        bench="bench_detection_baselines.py",
        modules=("core.detector", "core.baselines", "attacks.delay"),
        kind="extension",
    ),
    Experiment(
        identifier="adaptive-cra",
        title="Adaptive challenge scheduling (recovery latency)",
        paper_claim="",
        workload="Finite DoS burst; static schedule vs alert-mode "
        "probing at 8/4/2 s",
        bench="bench_adaptive_cra.py",
        modules=("core.adaptive_cra", "core.detector"),
        kind="extension",
    ),
    Experiment(
        identifier="seed-robustness",
        title="Monte-Carlo robustness of the headline claims",
        paper_claim="",
        workload="16 sensor-noise seeds per fig2 configuration, "
        "defended and undefended, fanned out via the batch engine",
        bench="bench_seed_robustness.py",
        modules=("simulation.monte_carlo", "simulation.batch", "core.pipeline"),
        kind="extension",
    ),
    Experiment(
        identifier="batch-speedup",
        title="Parallel batch-execution engine throughput",
        paper_claim="",
        workload="16-seed fig2a Monte-Carlo sweep, 1 vs 4 workers; "
        "asserts bit-identical outcomes (and >=2x speedup on >=4 cores)",
        bench="bench_batch_speedup.py",
        modules=("simulation.batch", "simulation.monte_carlo"),
        kind="extension",
    ),
    Experiment(
        identifier="vectorized-speedup",
        title="Vectorized batch engine: lock-step vs scalar throughput",
        paper_claim="",
        workload="64-run fig2a Monte-Carlo sweep on backend='scalar' vs "
        "backend='vectorized'; asserts bit-identical payloads and "
        ">=10x speedup from the fused numpy step loop",
        bench="bench_vectorized_speedup.py",
        modules=("simulation.vectorized", "simulation.batch", "simulation.knobs"),
        kind="extension",
    ),
    Experiment(
        identifier="cache-speedup",
        title="Content-addressed run store: warm-vs-cold report build",
        paper_claim="",
        workload="Full 4-panel report built cold (computing + storing) "
        "and warm (replayed from the store); asserts byte-identical "
        "text and >=10x warm speedup",
        bench="bench_cache_speedup.py",
        modules=("store", "simulation.batch", "analysis.report"),
        kind="extension",
    ),
    Experiment(
        identifier="telemetry-overhead",
        title="Telemetry layer: disabled-path overhead and trace fidelity",
        paper_claim="",
        workload="Microbenchmark of the disabled span/counter gate "
        "projected over a 16-spec batch (asserts <2% overhead), plus a "
        "traced warm batch whose JSONL replays every run",
        bench="bench_telemetry_overhead.py",
        modules=("telemetry", "simulation.batch", "store"),
        kind="extension",
    ),
    Experiment(
        identifier="follower-policy",
        title="Follower policy: hierarchical ACC vs plain IDM",
        paper_claim="",
        workload="Both follower policies through the fig2 scenarios, "
        "clean/attacked/defended",
        bench="bench_follower_policy.py",
        modules=("vehicle.idm", "vehicle.acc", "core.pipeline"),
        kind="extension",
    ),
    Experiment(
        identifier="redundancy-comparison",
        title="CRA+RLS vs redundancy-based fusion",
        paper_claim="",
        workload="Median fusion over 3 radars vs single-sensor CRA+RLS, "
        "targeted spoof and broadcast jamming",
        bench="bench_redundancy_comparison.py",
        modules=("core.fusion", "core.pipeline"),
        kind="extension",
    ),
    Experiment(
        identifier="platoon-string-stability",
        title="Attack propagation through an ACC platoon",
        paper_claim="",
        workload="4 followers, DoS on follower 0, defense on the attacked "
        "vehicle only",
        bench="bench_platoon_string_stability.py",
        modules=("simulation.platoon", "vehicle", "core"),
        kind="extension",
    ),
    Experiment(
        identifier="sweep-scaling",
        title="Sharded store + adaptive sweep: scaling and savings",
        paper_claim="",
        workload="10,000-run heterogeneous sweep (20 cells x 500 seeds) "
        "through an 8-shard run store at 1 vs 4 workers; asserts "
        "bit-identical payloads/replay (and >=3x speedup on >=4 cores), "
        "plus >=20% fewer runs from the adaptive scheduler at the same "
        "confidence interval; writes timings to BENCH_sweep.json",
        bench="bench_sweep_scaling.py",
        modules=("simulation.sweep", "store.sharded", "simulation.batch"),
        kind="extension",
    ),
    Experiment(
        identifier="defense-comparison",
        title="Defense strategies head-to-head: RLS, secure state "
        "reconstruction, CBF safety filter",
        paper_claim="",
        workload="All four figure panels x 7 defense variants (undefended, "
        "per-channel RLS, dead reckoning, secure reconstruction, safety "
        "filter with and without detection, combined); asserts the full "
        "strategies are collision-free everywhere and the filter's "
        "detection-free DoS guarantee; writes BENCH_defense.json",
        bench="bench_defense_comparison.py",
        modules=("defense", "analysis.defense_comparison", "simulation"),
        kind="extension",
    ),
    Experiment(
        identifier="defense-runtime",
        title="Incremental secure-reconstruction solver: per-step runtime",
        paper_claim="",
        workload="400 trusted steps of a fig2a-shaped closed loop through "
        "the estimator in incremental vs from_scratch solver modes; "
        "asserts bit-identical candidates (incl. challenge-hole windows) "
        "and >=5x per-step speedup from the cached geometry kernels, plus "
        "a subset-search scaling table at p = 2/4/6 sensors; writes "
        "BENCH_defense_runtime.json",
        bench="bench_defense_runtime.py",
        modules=("defense.reconstruction", "defense.estimator", "telemetry"),
        kind="extension",
    ),
    Experiment(
        identifier="service-throughput",
        title="Simulation service: sustained req/s with single-flight",
        paper_claim="",
        workload="300+ HTTP requests at a 90% hit ratio over 15 unique "
        "specs against an in-process ServiceApp; asserts coalescing "
        "holds executed runs at the unique-spec count and a hit-path "
        "throughput floor; writes req/s to BENCH_service.json",
        bench="bench_service_throughput.py",
        modules=("service", "store", "telemetry"),
        kind="extension",
    ),
)

_BY_ID: Dict[str, Experiment] = {exp.identifier: exp for exp in REGISTRY}


def get_experiment(identifier: str) -> Experiment:
    """Look an experiment up by id; raises KeyError with suggestions."""
    try:
        return _BY_ID[identifier]
    except KeyError:
        known = ", ".join(sorted(_BY_ID))
        raise KeyError(
            f"unknown experiment {identifier!r}; known ids: {known}"
        ) from None


def experiments_table(kind: Optional[str] = None) -> str:
    """Render the registry (optionally filtered by kind) as a table."""
    rows = [
        {
            "id": exp.identifier,
            "kind": exp.kind,
            "title": exp.title,
            "bench": exp.bench,
        }
        for exp in REGISTRY
        if kind is None or exp.kind == kind
    ]
    return render_table(rows, title="Reproduced experiments")
