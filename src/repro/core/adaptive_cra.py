"""Adaptive challenge scheduling — probe faster while under attack.

With the paper's static schedule, *ending* an attack is only noticed at
the next scheduled challenge, so the system keeps flying on estimates
for up to a full challenge interval after the attacker stops.  An
adaptive policy removes that lag: while the alarm is raised, the radar
challenges every ``alert_period`` seconds (probe duty cycle is cheap
when measurements are being discarded anyway — the controller is
running on estimates), and returns to the quiet base schedule once a
clean challenge clears the alarm.

Security note: the *base* schedule stays pseudo-random and secret; the
accelerated challenges only occur after detection, when the attacker's
presence is already known, so the adaptation leaks nothing exploitable
before an attack.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.cra import ChallengeSchedule

__all__ = ["AdaptiveChallengePolicy"]


class AdaptiveChallengePolicy:
    """Stateful challenge decisions: base schedule + alert-mode probing.

    The engine calls :meth:`decide` exactly once per sample instant
    (before producing the measurement); the recorded decision is then
    served to the CRA detector through the schedule-compatible
    :meth:`is_challenge`, so modulator and detector always agree.

    Parameters
    ----------
    base_schedule:
        The quiet-time pseudo-random schedule (the secret).
    alert_period:
        Challenge spacing while the alarm is active, seconds.
    """

    def __init__(self, base_schedule: ChallengeSchedule, alert_period: float = 2.0):
        if alert_period <= 0.0:
            raise ValueError(f"alert_period must be positive, got {alert_period}")
        self.base_schedule = base_schedule
        self.alert_period = float(alert_period)
        self._decisions: Dict[float, bool] = {}
        self._last_alert_challenge: Optional[float] = None

    def decide(self, time: float, alarm_active: bool) -> bool:
        """Decide (and record) whether to challenge at ``time``."""
        challenge = self.base_schedule.is_challenge(time)
        if alarm_active:
            due = (
                self._last_alert_challenge is None
                or time - self._last_alert_challenge >= self.alert_period
            )
            challenge = challenge or due
        else:
            self._last_alert_challenge = None
        if challenge and alarm_active:
            self._last_alert_challenge = time
        self._decisions[time] = challenge
        return challenge

    def is_challenge(self, time: float, tolerance: float = 1e-9) -> bool:
        """Schedule-compatible view of the recorded decisions.

        Falls back to the base schedule for instants never decided
        (e.g. detector queries outside the simulated horizon).
        """
        if time in self._decisions:
            return self._decisions[time]
        return self.base_schedule.is_challenge(time, tolerance)

    def next_challenge_at_or_after(self, time: float) -> Optional[float]:
        """Forwarded to the base schedule (the static latency bound)."""
        return self.base_schedule.next_challenge_at_or_after(time)

    @property
    def times(self):
        """Challenge instants decided so far plus the base schedule."""
        decided = {t for t, is_c in self._decisions.items() if is_c}
        return tuple(sorted(decided | set(self.base_schedule.times)))

    def __len__(self) -> int:
        return len(self.times)
