"""Recursive least squares — the paper's Algorithm 1 (repro.core.rls)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RLSEstimator, rls_estimate


class TestConstruction:
    def test_initial_state_matches_algorithm1(self):
        # Line 3: w0 = 0, P0 = δ I.
        rls = RLSEstimator(n_params=3, delta=2.0)
        assert np.allclose(rls.weights, np.zeros(3))
        assert np.allclose(rls.correlation, 2.0 * np.eye(3))
        assert rls.n_updates == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RLSEstimator(n_params=0)
        with pytest.raises(ValueError):
            RLSEstimator(n_params=1, forgetting=0.0)
        with pytest.raises(ValueError):
            RLSEstimator(n_params=1, forgetting=1.5)
        with pytest.raises(ValueError):
            RLSEstimator(n_params=1, delta=0.0)

    def test_forgetting_one_is_allowed(self):
        RLSEstimator(n_params=1, forgetting=1.0)


class TestIdentification:
    def test_identifies_static_map(self, rng):
        true_w = np.array([2.0, -3.0, 0.5])
        rls = RLSEstimator(n_params=3, forgetting=1.0, delta=1e6)
        for _ in range(100):
            h = rng.standard_normal(3)
            rls.update(h, float(true_w @ h))
        assert np.allclose(rls.weights, true_w, atol=1e-8)

    def test_identifies_with_noise(self, rng):
        true_w = np.array([1.5, -0.7])
        rls = RLSEstimator(n_params=2, forgetting=1.0)
        for _ in range(3000):
            h = rng.standard_normal(2)
            rls.update(h, float(true_w @ h) + rng.normal(0.0, 0.1))
        assert np.allclose(rls.weights, true_w, atol=0.02)

    def test_tracks_time_varying_map_with_forgetting(self, rng):
        # λ < 1 tracks a weight jump; λ = 1 averages over both regimes.
        def run(lam):
            rls = RLSEstimator(n_params=1, forgetting=lam)
            for k in range(400):
                w = 1.0 if k < 200 else 5.0
                h = np.array([1.0 + rng.normal(0, 0.1)])
                rls.update(h, w * h[0])
            return rls.weights[0]

        assert abs(run(0.9) - 5.0) < 0.05
        assert abs(run(1.0) - 5.0) > 0.5

    def test_prediction_error_decreases(self, rng):
        true_w = np.array([1.0, 2.0, 3.0, 4.0])
        rls = RLSEstimator(n_params=4, forgetting=1.0, delta=1e6)
        errors = []
        for _ in range(60):
            h = rng.standard_normal(4)
            errors.append(abs(rls.update(h, float(true_w @ h)).error))
        assert np.mean(errors[40:]) < np.mean(errors[:10]) * 1e-3


class TestUpdateDiagnostics:
    def test_conversion_factor_at_least_lambda(self, rng):
        rls = RLSEstimator(n_params=2, forgetting=0.9)
        for _ in range(20):
            step = rls.update(rng.standard_normal(2), 1.0)
            assert step.conversion_factor >= 0.9

    def test_a_priori_prediction_uses_old_weights(self):
        rls = RLSEstimator(n_params=1, forgetting=1.0)
        first = rls.update([1.0], 10.0)
        assert first.prediction == 0.0  # w0 = 0
        assert first.error == 10.0

    def test_correlation_stays_symmetric(self, rng):
        rls = RLSEstimator(n_params=3, forgetting=0.95)
        for _ in range(500):
            rls.update(rng.standard_normal(3), rng.normal())
        P = rls.correlation
        assert np.allclose(P, P.T)

    def test_reset(self, rng):
        rls = RLSEstimator(n_params=2)
        rls.update(rng.standard_normal(2), 1.0)
        rls.reset()
        assert np.allclose(rls.weights, 0.0)
        assert rls.n_updates == 0


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-10.0, max_value=10.0), min_size=2, max_size=2
        ),
        st.integers(min_value=0, max_value=100),
    )
    def test_property_exact_interpolation_noiseless(self, w, seed):
        """With enough noiseless data RLS recovers any linear map."""
        rng = np.random.default_rng(seed)
        true_w = np.asarray(w)
        rls = RLSEstimator(n_params=2, forgetting=1.0, delta=1e6)
        for _ in range(50):
            h = rng.standard_normal(2)
            rls.update(h, float(true_w @ h))
        assert np.allclose(rls.weights, true_w, atol=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.5, max_value=1.0))
    def test_property_weights_bounded_for_bounded_data(self, lam):
        rng = np.random.default_rng(0)
        rls = RLSEstimator(n_params=2, forgetting=lam)
        for _ in range(200):
            h = rng.uniform(-1.0, 1.0, size=2)
            rls.update(h, rng.uniform(-1.0, 1.0))
        assert np.all(np.isfinite(rls.weights))
        assert np.linalg.norm(rls.weights) < 1e3


class TestBatchWrapper:
    def test_returns_a_priori_predictions(self, rng):
        H = rng.standard_normal((50, 2))
        w = np.array([3.0, -1.0])
        y = H @ w
        predictions, weights = rls_estimate(H, y, forgetting=1.0, delta=1e6)
        assert predictions.shape == (50,)
        assert predictions[0] == 0.0  # w0 = 0
        assert np.allclose(weights, w, atol=1e-5)
        assert np.allclose(predictions[10:], y[10:], atol=1e-3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            rls_estimate([[1.0], [2.0]], [1.0])

    def test_complexity_is_n_squared_per_step(self, rng):
        # Structural check: one update touches only n×n matrices.
        rls = RLSEstimator(n_params=8)
        step = rls.update(rng.standard_normal(8), 1.0)
        assert step.gain.shape == (8,)
        assert rls.correlation.shape == (8, 8)
