"""Markdown report generation (repro.analysis.report) + CLI flag."""

import io

import pytest

from repro.analysis import build_report
from repro.cli import main


@pytest.fixture(scope="module")
def report():
    return build_report()


class TestBuildReport:
    def test_contains_all_panels(self, report):
        for panel in ("fig2a", "fig2b", "fig3a", "fig3b"):
            assert panel in report

    def test_reports_detection_and_safety(self, report):
        assert "182.00" in report
        assert "| 0 | 0 |" in report  # zero FP / FN columns
        # Attacked runs collide, defended do not.
        assert "| yes |" in report
        assert "| no |" in report

    def test_is_valid_markdown_tables(self, report):
        # The report holds several tables (panels, defense comparison);
        # within each contiguous table block every row must have the
        # same column count.
        blocks, current = [], []
        for line in report.splitlines():
            if line.startswith("|"):
                current.append(line)
            elif current:
                blocks.append(current)
                current = []
        if current:
            blocks.append(current)
        assert len(blocks) >= 2  # panel table + defense comparison
        for block in blocks:
            widths = {line.count("|") for line in block}
            assert len(widths) == 1, block[0]

    def test_defense_comparison_section(self, report):
        assert "## Defense comparison" in report
        for label in (
            "undefended",
            "secure_reconstruction",
            "safety_filter (detection off)",
            "combined",
        ):
            assert label in report

    def test_seed_section_optional(self, report):
        assert "Seed robustness" not in report
        with_seeds = build_report(seeds=[0, 1])
        assert "Seed robustness" in with_seeds
        assert "fig2a defended" in with_seeds

    def test_none_rendered_as_dash(self):
        from repro.analysis.report import _markdown_table

        assert "-" in _markdown_table([{"a": None}])
        assert "(no rows)" in _markdown_table([])


class TestCLIMarkdown:
    def test_writes_file(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "report.md"
        code = main(["report", "--markdown", str(path)], out=out)
        assert code == 0
        assert path.exists()
        assert "fig3b" in path.read_text()
        assert str(path) in out.getvalue()
